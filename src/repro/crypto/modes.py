"""Block-cipher modes of operation: CBC encryption and CBC-MAC.

Section 4.1 of the paper considers CBC-based MACs built from AES-128 and
Speck 64/128 as cheap alternatives to HMAC for authenticating attestation
requests ("Messages are assumed to fit into one block for each
cryptographic primitive").  This module supplies:

* :class:`CBC` -- classic CBC encryption/decryption with PKCS#7 padding,
  used by the secure code-update service (:mod:`repro.services.codeupdate`)
  for payload confidentiality;
* :func:`cbc_mac` -- the fixed-length CBC-MAC the paper implies: the tag is
  the last ciphertext block of a zero-IV CBC encryption.  Plain CBC-MAC is
  only secure for fixed-length messages, which holds here because
  attestation requests have a fixed wire format; the docstring notes the
  caveat for library users.
"""

from __future__ import annotations

from typing import Protocol

from ..errors import InvalidBlockError, PaddingError

__all__ = ["BlockCipher", "CBC", "cbc_mac", "pkcs7_pad", "pkcs7_unpad"]


class BlockCipher(Protocol):
    """Structural interface every block cipher in :mod:`repro.crypto` meets."""

    block_size: int

    def encrypt_block(self, block: bytes) -> bytes: ...

    def decrypt_block(self, block: bytes) -> bytes: ...


def pkcs7_pad(data: bytes, block_size: int) -> bytes:
    """Pad ``data`` to a multiple of ``block_size`` per PKCS#7."""
    if not 1 <= block_size <= 255:
        raise ValueError("block_size must be in 1..255")
    pad_len = block_size - (len(data) % block_size)
    return data + bytes([pad_len]) * pad_len


def pkcs7_unpad(data: bytes, block_size: int) -> bytes:
    """Strip PKCS#7 padding, raising :class:`PaddingError` when malformed."""
    if not data or len(data) % block_size != 0:
        raise PaddingError("padded data length is not a block multiple")
    pad_len = data[-1]
    if pad_len < 1 or pad_len > block_size:
        raise PaddingError(f"invalid padding length byte {pad_len}")
    if data[-pad_len:] != bytes([pad_len]) * pad_len:
        raise PaddingError("padding bytes are inconsistent")
    return data[:-pad_len]


def _xor_block(a: bytes, b: bytes) -> bytes:
    return bytes(x ^ y for x, y in zip(a, b))


class CBC:
    """Cipher Block Chaining over any :class:`BlockCipher`.

    >>> from repro.crypto.aes import AES128
    >>> mode = CBC(AES128(bytes(16)))
    >>> iv = bytes(16)
    >>> mode.decrypt(iv, mode.encrypt(iv, b"hello world")) == b"hello world"
    True
    """

    def __init__(self, cipher: BlockCipher):
        self._cipher = cipher
        self.block_size = cipher.block_size

    def encrypt(self, iv: bytes, plaintext: bytes) -> bytes:
        """CBC-encrypt ``plaintext`` (PKCS#7-padded) under ``iv``."""
        if len(iv) != self.block_size:
            raise InvalidBlockError(
                f"IV must be {self.block_size} bytes, got {len(iv)}")
        padded = pkcs7_pad(plaintext, self.block_size)
        out = bytearray()
        previous = iv
        for offset in range(0, len(padded), self.block_size):
            block = padded[offset:offset + self.block_size]
            encrypted = self._cipher.encrypt_block(_xor_block(block, previous))
            out.extend(encrypted)
            previous = encrypted
        return bytes(out)

    def decrypt(self, iv: bytes, ciphertext: bytes) -> bytes:
        """CBC-decrypt and unpad ``ciphertext``."""
        if len(iv) != self.block_size:
            raise InvalidBlockError(
                f"IV must be {self.block_size} bytes, got {len(iv)}")
        if len(ciphertext) % self.block_size != 0:
            raise InvalidBlockError("ciphertext is not a block multiple")
        out = bytearray()
        previous = iv
        for offset in range(0, len(ciphertext), self.block_size):
            block = ciphertext[offset:offset + self.block_size]
            out.extend(_xor_block(self._cipher.decrypt_block(block), previous))
            previous = block
        return pkcs7_unpad(bytes(out), self.block_size)


def cbc_mac(cipher: BlockCipher, message: bytes) -> bytes:
    """Compute the CBC-MAC tag of ``message`` (last ciphertext block, IV=0).

    The message is length-prefix encoded (8-byte big-endian length block
    first) and zero-padded to a block multiple, which makes plain CBC-MAC
    safe for variable-length inputs as well (the prefix-free encoding
    defeats the classic length-extension forgery).  Attestation requests in
    this library have fixed length anyway; the encoding is belt and braces.
    """
    block_size = cipher.block_size
    encoded = len(message).to_bytes(8, "big").rjust(block_size, b"\x00") + message
    if len(encoded) % block_size:
        encoded += b"\x00" * (block_size - len(encoded) % block_size)
    state = b"\x00" * block_size
    for offset in range(0, len(encoded), block_size):
        block = encoded[offset:offset + block_size]
        state = cipher.encrypt_block(_xor_block(state, block))
    return state
