"""Pure-Python SHA-1, implemented from the FIPS 180-4 specification.

The paper's prover computes a SHA1-HMAC over its entire writable memory
(Section 3.1), so SHA-1 is the workhorse primitive of the whole system.
This implementation is written from scratch (no ``hashlib``) so that the
simulated MCU genuinely executes the compression function; the test suite
cross-checks digests against ``hashlib.sha1``.

The incremental API mirrors ``hashlib``: :meth:`SHA1.update`,
:meth:`SHA1.digest`, :meth:`SHA1.hexdigest`, :meth:`SHA1.copy`.  The module
also tracks how many 64-byte blocks were compressed
(:attr:`SHA1.blocks_processed`), which the MCU cycle-cost model uses to
charge simulated time (Table 1: 0.092 ms per block + 0.340 ms fixed).
"""

from __future__ import annotations

import struct

__all__ = ["SHA1", "sha1", "BLOCK_SIZE", "DIGEST_SIZE"]

BLOCK_SIZE = 64
DIGEST_SIZE = 20

_MASK32 = 0xFFFFFFFF

# FIPS 180-4 section 5.3.1: initial hash value.
_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

# FIPS 180-4 section 4.2.1: round constants.
_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


def _rotl(value: int, amount: int) -> int:
    """Rotate a 32-bit ``value`` left by ``amount`` bits."""
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def _compress(state: tuple[int, int, int, int, int],
              block: bytes) -> tuple[int, int, int, int, int]:
    """Apply the SHA-1 compression function to one 64-byte ``block``."""
    w = list(struct.unpack(">16I", block))
    for t in range(16, 80):
        w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))

    a, b, c, d, e = state
    for t in range(80):
        if t < 20:
            f = (b & c) | (~b & d)
            k = _K[0]
        elif t < 40:
            f = b ^ c ^ d
            k = _K[1]
        elif t < 60:
            f = (b & c) | (b & d) | (c & d)
            k = _K[2]
        else:
            f = b ^ c ^ d
            k = _K[3]
        temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK32
        e = d
        d = c
        c = _rotl(b, 30)
        b = a
        a = temp

    return (
        (state[0] + a) & _MASK32,
        (state[1] + b) & _MASK32,
        (state[2] + c) & _MASK32,
        (state[3] + d) & _MASK32,
        (state[4] + e) & _MASK32,
    )


class SHA1:
    """Incremental SHA-1 hash object (API-compatible subset of ``hashlib``).

    >>> SHA1(b"abc").hexdigest()
    'a9993e364706816aba3e25717850c26c9cd0d89d'
    """

    name = "sha1"
    block_size = BLOCK_SIZE
    digest_size = DIGEST_SIZE

    def __init__(self, data: bytes = b""):
        self._state = _H0
        self._buffer = b""
        self._length = 0  # total message length in bytes
        self.blocks_processed = 0
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the hash state."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"expected bytes-like, got {type(data).__name__}")
        data = bytes(data)
        self._length += len(data)
        buf = self._buffer + data
        offset = 0
        while len(buf) - offset >= BLOCK_SIZE:
            self._state = _compress(self._state, buf[offset:offset + BLOCK_SIZE])
            self.blocks_processed += 1
            offset += BLOCK_SIZE
        self._buffer = buf[offset:]

    def copy(self) -> "SHA1":
        """Return an independent clone of the current hash state."""
        clone = SHA1()
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        clone.blocks_processed = self.blocks_processed
        return clone

    def digest(self) -> bytes:
        """Return the 20-byte digest of all data absorbed so far."""
        # Pad a copy so the object remains usable for further updates.
        state = self._state
        blocks = 0
        bit_length = self._length * 8
        padded = self._buffer + b"\x80"
        pad_len = (56 - len(padded)) % BLOCK_SIZE
        padded += b"\x00" * pad_len + struct.pack(">Q", bit_length)
        for offset in range(0, len(padded), BLOCK_SIZE):
            state = _compress(state, padded[offset:offset + BLOCK_SIZE])
            blocks += 1
        return struct.pack(">5I", *state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    @property
    def total_blocks_for_digest(self) -> int:
        """Number of compression-function calls a full digest of the current
        message requires, including padding blocks.

        Used by the cycle-cost model: the per-block cost in Table 1 applies
        to every compression, and padding may add one extra block.
        """
        remainder = self._length % BLOCK_SIZE
        # 1 byte of 0x80 plus 8 length bytes must fit after the remainder.
        tail_blocks = 1 if remainder < 56 else 2
        return self._length // BLOCK_SIZE + tail_blocks


def sha1(data: bytes = b"") -> SHA1:
    """Convenience constructor, mirroring ``hashlib.sha1``."""
    return SHA1(data)
