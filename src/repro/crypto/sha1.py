"""Pure-Python SHA-1, implemented from the FIPS 180-4 specification.

The paper's prover computes a SHA1-HMAC over its entire writable memory
(Section 3.1), so SHA-1 is the workhorse primitive of the whole system.
The compression function is written from scratch (no ``hashlib``) so that
the simulated MCU genuinely executes it; the test suite cross-checks
digests against ``hashlib.sha1``.

Because the simulator re-executes the 512 KB measurement for every
attestation in every flood / fleet / ablation scenario, the *host* cost
of this module dominates experiment wall-clock.  Three execution engines
are therefore provided (selected by :mod:`repro.fastpath`; all three are
digest- and accounting-identical):

``naive``
    The reference: one :func:`_compress` call per 64-byte block, with
    the seed's copying ``update``.
``pure``
    :func:`compress_blocks` -- an unrolled batch compression core
    (local-variable state, message schedule via ``struct.unpack_from``)
    fed zero-copy from ``memoryview`` input; only the unaligned tail is
    buffered.
``accel``
    Bulk compression delegated to ``hashlib.sha1`` (the same FIPS 180-4
    function at C speed).  The from-scratch core remains the reference
    implementation the accelerated digests are tested against.

The incremental API mirrors ``hashlib``: :meth:`SHA1.update`,
:meth:`SHA1.digest`, :meth:`SHA1.hexdigest`, :meth:`SHA1.copy`.  The
module also tracks how many 64-byte blocks were compressed
(:attr:`SHA1.blocks_processed`), which the MCU cycle-cost model uses to
charge simulated time (Table 1: 0.092 ms per block + 0.340 ms fixed);
that accounting is arithmetic over absorbed lengths and is identical
under every engine.
"""

from __future__ import annotations

import hashlib
import struct

from .. import fastpath

__all__ = ["SHA1", "sha1", "compress_blocks", "BLOCK_SIZE", "DIGEST_SIZE"]

BLOCK_SIZE = 64
DIGEST_SIZE = 20

_MASK32 = 0xFFFFFFFF

# FIPS 180-4 section 5.3.1: initial hash value.
_H0 = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)

# FIPS 180-4 section 4.2.1: round constants.
_K = (0x5A827999, 0x6ED9EBA1, 0x8F1BBCDC, 0xCA62C1D6)


def _rotl(value: int, amount: int) -> int:
    """Rotate a 32-bit ``value`` left by ``amount`` bits."""
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def _compress(state: tuple[int, int, int, int, int],
              block: bytes) -> tuple[int, int, int, int, int]:
    """Apply the SHA-1 compression function to one 64-byte ``block``.

    This is the reference implementation (straight off the FIPS 180-4
    pseudocode); :func:`compress_blocks` is the optimized batch core
    validated against it.
    """
    w = list(struct.unpack(">16I", block))
    for t in range(16, 80):
        w.append(_rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1))

    a, b, c, d, e = state
    for t in range(80):
        if t < 20:
            f = (b & c) | (~b & d)
            k = _K[0]
        elif t < 40:
            f = b ^ c ^ d
            k = _K[1]
        elif t < 60:
            f = (b & c) | (b & d) | (c & d)
            k = _K[2]
        else:
            f = b ^ c ^ d
            k = _K[3]
        temp = (_rotl(a, 5) + f + e + k + w[t]) & _MASK32
        e = d
        d = c
        c = _rotl(b, 30)
        b = a
        a = temp

    return (
        (state[0] + a) & _MASK32,
        (state[1] + b) & _MASK32,
        (state[2] + c) & _MASK32,
        (state[3] + d) & _MASK32,
        (state[4] + e) & _MASK32,
    )


def _build_pure_core():
    """Generate the unrolled batch compression core.

    The generated function keeps the whole working state in local
    variables, unpacks the message schedule with one ``struct`` call per
    block, and unrolls all 80 rounds with the role-rotation folded into
    variable renaming (no a/b/c/d/e shuffle assignments).  Code
    generation keeps the source of truth at round granularity instead of
    320 hand-maintained lines.
    """
    lines = []
    emit = lines.append
    emit("def _compress_blocks_pure(state, buf, offset, nblocks):")
    emit("    h0, h1, h2, h3, h4 = state")
    emit("    for _ in range(nblocks):")
    emit("        (w0, w1, w2, w3, w4, w5, w6, w7, w8, w9, w10, w11,"
         " w12, w13, w14, w15) = _unpack16(buf, offset)")
    emit("        offset += 64")
    for t in range(16, 80):
        emit(f"        _x = w{t - 3} ^ w{t - 8} ^ w{t - 14} ^ w{t - 16}")
        emit(f"        w{t} = ((_x << 1) | (_x >> 31)) & 0xFFFFFFFF")
    emit("        a, b, c, d, e = h0, h1, h2, h3, h4")
    names = ["a", "b", "c", "d", "e"]
    for t in range(80):
        va, vb, vc, vd, ve = names
        if t < 20:
            fk = f"(({vb} & {vc}) | (~{vb} & {vd})) + 0x5A827999"
        elif t < 40:
            fk = f"({vb} ^ {vc} ^ {vd}) + 0x6ED9EBA1"
        elif t < 60:
            fk = (f"(({vb} & {vc}) | ({vb} & {vd}) | ({vc} & {vd}))"
                  f" + 0x8F1BBCDC")
        else:
            fk = f"({vb} ^ {vc} ^ {vd}) + 0xCA62C1D6"
        emit(f"        {ve} = ({ve} + (({va} << 5) | ({va} >> 27))"
             f" + ({fk}) + w{t}) & 0xFFFFFFFF")
        emit(f"        {vb} = (({vb} << 30) | ({vb} >> 2)) & 0xFFFFFFFF")
        # Role rotation: next round's (a, b, c, d, e) are this round's
        # (temp, a, rotl30(b), c, d); after 80 rounds the names line up
        # with a/b/c/d/e again (80 % 5 == 0).
        names = [ve, va, vb, vc, vd]
    emit("        h0 = (h0 + a) & 0xFFFFFFFF")
    emit("        h1 = (h1 + b) & 0xFFFFFFFF")
    emit("        h2 = (h2 + c) & 0xFFFFFFFF")
    emit("        h3 = (h3 + d) & 0xFFFFFFFF")
    emit("        h4 = (h4 + e) & 0xFFFFFFFF")
    emit("    return (h0, h1, h2, h3, h4)")
    namespace = {"_unpack16": struct.Struct(">16I").unpack_from}
    exec("\n".join(lines), namespace)
    return namespace["_compress_blocks_pure"]


_compress_blocks_pure = _build_pure_core()


def compress_blocks(state: tuple[int, int, int, int, int],
                    buf, offset: int, nblocks: int
                    ) -> tuple[int, int, int, int, int]:
    """Compress ``nblocks`` consecutive 64-byte blocks of ``buf``.

    ``buf`` may be any bytes-like object (including a ``memoryview``
    straight onto device memory -- no copies are taken).  Under the
    ``naive`` engine this degrades to one reference :func:`_compress`
    call per block; otherwise the unrolled batch core runs.
    """
    if fastpath.engine() == "naive":
        for _ in range(nblocks):
            state = _compress(state, bytes(buf[offset:offset + BLOCK_SIZE]))
            offset += BLOCK_SIZE
        return state
    return _compress_blocks_pure(state, buf, offset, nblocks)


def _as_byte_view(data) -> memoryview:
    """A flat byte ``memoryview`` of ``data`` without copying."""
    view = data if isinstance(data, memoryview) else memoryview(data)
    if view.itemsize != 1 or view.ndim != 1:
        view = view.cast("B")
    return view


class SHA1:
    """Incremental SHA-1 hash object (API-compatible subset of ``hashlib``).

    >>> SHA1(b"abc").hexdigest()
    'a9993e364706816aba3e25717850c26c9cd0d89d'
    """

    name = "sha1"
    block_size = BLOCK_SIZE
    digest_size = DIGEST_SIZE

    def __init__(self, data: bytes = b""):
        self._engine = fastpath.engine()
        self._state = _H0
        self._buffer = b""
        self._length = 0  # total message length in bytes
        self.blocks_processed = 0
        self._hl = hashlib.sha1() if self._engine == "accel" else None
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb ``data`` into the hash state."""
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise TypeError(f"expected bytes-like, got {type(data).__name__}")
        if self._engine == "accel":
            view = _as_byte_view(data)
            self._length += view.nbytes
            self._hl.update(view)
            # Full blocks are compressed eagerly, the tail is buffered:
            # the running count is pure arithmetic over absorbed length.
            self.blocks_processed = self._length // BLOCK_SIZE
            return
        if self._engine == "pure":
            self._update_pure(_as_byte_view(data))
            return
        # naive: the seed implementation, kept verbatim as the baseline
        # the fast engines are benchmarked and equivalence-tested against.
        data = bytes(data)
        self._length += len(data)
        buf = self._buffer + data
        offset = 0
        while len(buf) - offset >= BLOCK_SIZE:
            self._state = _compress(self._state, buf[offset:offset + BLOCK_SIZE])
            self.blocks_processed += 1
            offset += BLOCK_SIZE
        self._buffer = buf[offset:]

    def _update_pure(self, view: memoryview) -> None:
        """Zero-copy absorb: batch-compress aligned input in place,
        buffering only the unaligned tail."""
        length = view.nbytes
        self._length += length
        position = 0
        if self._buffer:
            take = min(BLOCK_SIZE - len(self._buffer), length)
            self._buffer += bytes(view[:take])
            position = take
            if len(self._buffer) == BLOCK_SIZE:
                self._state = _compress_blocks_pure(
                    self._state, self._buffer, 0, 1)
                self.blocks_processed += 1
                self._buffer = b""
        nblocks = (length - position) // BLOCK_SIZE
        if nblocks:
            self._state = _compress_blocks_pure(
                self._state, view, position, nblocks)
            self.blocks_processed += nblocks
            position += nblocks * BLOCK_SIZE
        if position < length:
            self._buffer += bytes(view[position:])

    def copy(self) -> "SHA1":
        """Return an independent clone of the current hash state."""
        clone = SHA1.__new__(SHA1)
        clone._engine = self._engine
        clone._state = self._state
        clone._buffer = self._buffer
        clone._length = self._length
        clone.blocks_processed = self.blocks_processed
        clone._hl = self._hl.copy() if self._hl is not None else None
        return clone

    def digest(self) -> bytes:
        """Return the 20-byte digest of all data absorbed so far."""
        if self._engine == "accel":
            # hashlib finalises a copy internally; the object stays
            # usable for further updates, same as the pure paths below.
            return self._hl.digest()
        # Pad a copy so the object remains usable for further updates.
        state = self._state
        bit_length = self._length * 8
        padded = self._buffer + b"\x80"
        pad_len = (56 - len(padded)) % BLOCK_SIZE
        padded += b"\x00" * pad_len + struct.pack(">Q", bit_length)
        if self._engine == "pure":
            state = _compress_blocks_pure(state, padded, 0,
                                          len(padded) // BLOCK_SIZE)
        else:
            for offset in range(0, len(padded), BLOCK_SIZE):
                state = _compress(state, padded[offset:offset + BLOCK_SIZE])
        return struct.pack(">5I", *state)

    def hexdigest(self) -> str:
        """Return the digest as a lowercase hex string."""
        return self.digest().hex()

    @property
    def total_blocks_for_digest(self) -> int:
        """Number of compression-function calls a full digest of the current
        message requires, including padding blocks.

        Used by the cycle-cost model: the per-block cost in Table 1 applies
        to every compression, and padding may add one extra block.
        """
        remainder = self._length % BLOCK_SIZE
        # 1 byte of 0x80 plus 8 length bytes must fit after the remainder.
        tail_blocks = 1 if remainder < 56 else 2
        return self._length // BLOCK_SIZE + tail_blocks


def sha1(data: bytes = b"") -> SHA1:
    """Convenience constructor, mirroring ``hashlib.sha1``."""
    return SHA1(data)
