"""Elliptic-curve cryptography over secp160r1, with ECDSA (SHA-1).

Section 4.1 of the paper evaluates public-key authentication of attestation
requests and *rules it out*: on Siskiyou Peak at 24 MHz an ECC (secp160r1)
signature verification costs ~170 ms, so "a supposed way of preventing DoS
attacks can itself result in DoS" (Table 1: sign 183.464 ms, verify
170.907 ms).  We implement the curve anyway -- the benchmark harness needs
the baseline to demonstrate the paradox, and the verifier may legitimately
use ECDSA on its (powerful) side.

The implementation is textbook short-Weierstrass arithmetic in Jacobian
coordinates with double-and-add scalar multiplication, plus RFC 6979-style
deterministic nonces (via our HMAC-DRBG) so that signing is reproducible
and never leaks the key through nonce reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import InvalidKeyError, InvalidSignatureError
from .hmac import HmacSha1
from .sha1 import SHA1

__all__ = ["CurveParams", "SECP160R1", "EccPoint", "EcdsaKeyPair",
           "ecdsa_sign", "ecdsa_verify", "generate_keypair"]


@dataclass(frozen=True)
class CurveParams:
    """Domain parameters of a short-Weierstrass curve y^2 = x^3 + ax + b."""

    name: str
    p: int      # field prime
    a: int      # curve coefficient a
    b: int      # curve coefficient b
    gx: int     # base point x
    gy: int     # base point y
    n: int      # base point order
    h: int      # cofactor

    @property
    def key_bytes(self) -> int:
        """Bytes needed to serialise a scalar modulo ``n``."""
        return (self.n.bit_length() + 7) // 8


#: SEC 2 secp160r1, the curve the paper benchmarks (Table 1).
SECP160R1 = CurveParams(
    name="secp160r1",
    p=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFF,
    a=0xFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFFF7FFFFFFC,
    b=0x1C97BEFC54BD7A8B65ACF89F81D4D4ADC565FA45,
    gx=0x4A96B5688EF573284664698968C38BB913CBFC82,
    gy=0x23A628553168947D59DCC912042351377AC5FB32,
    n=0x0100000000000000000001F4C8F927AED3CA752257,
    h=1,
)


class EccPoint:
    """A point on a :class:`CurveParams` curve (affine representation).

    The identity (point at infinity) is represented by ``x is None``.
    """

    __slots__ = ("curve", "x", "y")

    def __init__(self, curve: CurveParams, x: int | None, y: int | None):
        self.curve = curve
        self.x = x
        self.y = y
        if x is not None and not self._on_curve():
            raise InvalidKeyError(f"point ({x:#x}, {y:#x}) is not on {curve.name}")

    @classmethod
    def infinity(cls, curve: CurveParams) -> "EccPoint":
        return cls(curve, None, None)

    @classmethod
    def generator(cls, curve: CurveParams) -> "EccPoint":
        return cls(curve, curve.gx, curve.gy)

    def _on_curve(self) -> bool:
        p, a, b = self.curve.p, self.curve.a, self.curve.b
        return (self.y * self.y - (self.x ** 3 + a * self.x + b)) % p == 0

    @property
    def is_infinity(self) -> bool:
        return self.x is None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EccPoint):
            return NotImplemented
        return (self.curve == other.curve and self.x == other.x
                and self.y == other.y)

    def __hash__(self) -> int:
        return hash((self.curve.name, self.x, self.y))

    def __repr__(self) -> str:
        if self.is_infinity:
            return f"EccPoint({self.curve.name}, infinity)"
        return f"EccPoint({self.curve.name}, x={self.x:#x}, y={self.y:#x})"

    # -- group law ---------------------------------------------------------

    def __neg__(self) -> "EccPoint":
        if self.is_infinity:
            return self
        return EccPoint(self.curve, self.x, (-self.y) % self.curve.p)

    def __add__(self, other: "EccPoint") -> "EccPoint":
        if not isinstance(other, EccPoint):
            return NotImplemented
        if self.curve != other.curve:
            raise ValueError("cannot add points on different curves")
        if self.is_infinity:
            return other
        if other.is_infinity:
            return self
        p = self.curve.p
        if self.x == other.x:
            if (self.y + other.y) % p == 0:
                return EccPoint.infinity(self.curve)
            # Doubling.
            slope = (3 * self.x * self.x + self.curve.a) * pow(2 * self.y, p - 2, p)
        else:
            slope = (other.y - self.y) * pow(other.x - self.x, p - 2, p)
        slope %= p
        x3 = (slope * slope - self.x - other.x) % p
        y3 = (slope * (self.x - x3) - self.y) % p
        result = EccPoint.__new__(EccPoint)
        result.curve, result.x, result.y = self.curve, x3, y3
        return result

    def __rmul__(self, scalar: int) -> "EccPoint":
        return self.__mul__(scalar)

    def __mul__(self, scalar: int) -> "EccPoint":
        """Double-and-add scalar multiplication."""
        if not isinstance(scalar, int):
            return NotImplemented
        scalar %= self.curve.n
        result = EccPoint.infinity(self.curve)
        addend = self
        while scalar:
            if scalar & 1:
                result = result + addend
            addend = addend + addend
            scalar >>= 1
        return result

    # -- serialisation -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Uncompressed SEC 1 encoding (0x04 || X || Y)."""
        if self.is_infinity:
            return b"\x00"
        size = (self.curve.p.bit_length() + 7) // 8
        return b"\x04" + self.x.to_bytes(size, "big") + self.y.to_bytes(size, "big")

    @classmethod
    def from_bytes(cls, curve: CurveParams, data: bytes) -> "EccPoint":
        """Decode a SEC 1 uncompressed point (validates curve membership)."""
        if data == b"\x00":
            return cls.infinity(curve)
        size = (curve.p.bit_length() + 7) // 8
        if len(data) != 1 + 2 * size or data[0] != 0x04:
            raise InvalidKeyError("malformed uncompressed point encoding")
        x = int.from_bytes(data[1:1 + size], "big")
        y = int.from_bytes(data[1 + size:], "big")
        return cls(curve, x, y)


@dataclass(frozen=True)
class EcdsaKeyPair:
    """An ECDSA private scalar and the matching public point."""

    curve: CurveParams
    private: int
    public: EccPoint

    def __post_init__(self):
        if not 1 <= self.private < self.curve.n:
            raise InvalidKeyError("private scalar out of range")


def generate_keypair(curve: CurveParams, rng) -> EcdsaKeyPair:
    """Generate a key pair using a :class:`~repro.crypto.rng.DeterministicRng`."""
    d = rng.randint(1, curve.n - 1)
    public = d * EccPoint.generator(curve)
    return EcdsaKeyPair(curve, d, public)


def _hash_to_int(message: bytes, curve: CurveParams) -> int:
    """SHA-1 the message and truncate to the bit length of ``n`` (SEC 1)."""
    digest = SHA1(message).digest()
    e = int.from_bytes(digest, "big")
    excess = 8 * len(digest) - curve.n.bit_length()
    if excess > 0:
        e >>= excess
    return e


def _deterministic_nonce(key: EcdsaKeyPair, message: bytes) -> int:
    """RFC 6979-flavoured deterministic nonce (HMAC-SHA1 based)."""
    size = key.curve.key_bytes
    priv = key.private.to_bytes(size, "big")
    h1 = SHA1(message).digest()
    v = b"\x01" * 20
    k = b"\x00" * 20
    k = HmacSha1(k, v + b"\x00" + priv + h1).digest()
    v = HmacSha1(k, v).digest()
    k = HmacSha1(k, v + b"\x01" + priv + h1).digest()
    v = HmacSha1(k, v).digest()
    while True:
        t = b""
        while len(t) < size:
            v = HmacSha1(k, v).digest()
            t += v
        candidate = int.from_bytes(t[:size], "big")
        excess = 8 * size - key.curve.n.bit_length()
        if excess > 0:
            candidate >>= excess
        if 1 <= candidate < key.curve.n:
            return candidate
        k = HmacSha1(k, v + b"\x00").digest()
        v = HmacSha1(k, v).digest()


def ecdsa_sign(key: EcdsaKeyPair, message: bytes) -> tuple[int, int]:
    """Produce an ECDSA signature (r, s) over ``message``."""
    curve = key.curve
    e = _hash_to_int(message, curve)
    while True:
        k = _deterministic_nonce(key, message)
        point = k * EccPoint.generator(curve)
        r = point.x % curve.n
        if r == 0:
            message = message + b"\x00"  # retry with perturbed input
            continue
        s = (pow(k, curve.n - 2, curve.n) * (e + r * key.private)) % curve.n
        if s == 0:
            message = message + b"\x00"
            continue
        return r, s


def ecdsa_verify(curve: CurveParams, public: EccPoint, message: bytes,
                 signature: tuple[int, int]) -> bool:
    """Check an ECDSA ``signature`` over ``message`` against ``public``.

    Structural violations (out-of-range r/s, identity public key) raise
    :class:`InvalidSignatureError`; a well-formed but wrong signature simply
    returns ``False``.
    """
    r, s = signature
    if public.is_infinity:
        raise InvalidSignatureError("public key is the identity point")
    if not (1 <= r < curve.n and 1 <= s < curve.n):
        raise InvalidSignatureError("signature component out of range")
    e = _hash_to_int(message, curve)
    w = pow(s, curve.n - 2, curve.n)
    u1 = (e * w) % curve.n
    u2 = (r * w) % curve.n
    point = u1 * EccPoint.generator(curve) + u2 * public
    if point.is_infinity:
        return False
    return point.x % curve.n == r
