"""HMAC-SHA1 per RFC 2104 (Krawczyk, Bellare, Canetti), from scratch.

This is the prover's attestation MAC in the paper: the response is a
SHA1-HMAC computed over the prover's entire writable memory (Section 3.1),
and the verifier's attestation *requests* may also be authenticated with
the same primitive (Section 4.1, "a SHA-1-based HMAC can be validated in
0.430 ms").

The implementation follows RFC 2104 exactly: ``H(K ^ opad || H(K ^ ipad
|| message))`` with 64-byte block size.  Keys longer than one block are
first hashed; shorter keys are zero-padded.

Host-side midstate cache
------------------------

Every HMAC under key ``K`` starts by absorbing the same two 64-byte
blocks, ``K ^ ipad`` and ``K ^ opad``.  Fleet and flood scenarios build
thousands of :class:`HmacSha1` objects per key, so under the fast-path
engines (:mod:`repro.fastpath`) the SHA-1 states *after* those pad
blocks are cached per key and cloned into each new object instead of
being recomputed.  The cache is LRU-bounded so a fleet of many distinct
device keys cannot grow it without limit, and it is host-side only: the
simulated cycle charges come from :mod:`repro.crypto.costmodel` and are
identical whether or not the cache hits.  (The cache maps raw key bytes
to key-derived hash states, which is fine for a simulator but would be
key-material handling in a real implementation.)
"""

from __future__ import annotations

from collections import OrderedDict

from .. import fastpath
from .sha1 import BLOCK_SIZE, DIGEST_SIZE, SHA1

__all__ = ["HmacSha1", "hmac_sha1", "constant_time_compare",
           "clear_hmac_midstate_cache", "hmac_midstate_cache_info",
           "pin_hmac_midstates", "unpin_hmac_midstates"]

_IPAD = 0x36
_OPAD = 0x5C

#: Upper bound on cached (engine, key) midstate pairs.
HMAC_MIDSTATE_CACHE_MAX = 128

#: key: (engine, padded key) -> (inner prototype, outer prototype); the
#: prototypes are SHA1 objects that have absorbed exactly the pad block,
#: cloned (never mutated) on every hit.
_midstate_cache: "OrderedDict[tuple[str, bytes], tuple[SHA1, SHA1]]" = \
    OrderedDict()
#: Pinned midstates, exempt from the LRU bound.  A fleet of N devices
#: holds N *distinct* keys; with N > HMAC_MIDSTATE_CACHE_MAX a sweep in
#: member order visits keys cyclically -- the worst case for an LRU,
#: which then evicts every entry just before it is needed again.
#: ``pin_hmac_midstates`` batch-primes all fleet keys in one pass and
#: parks them here, so per-member HMAC finalization never recomputes a
#: pad block.  Same host-only caveats as the LRU cache.
_pinned: dict[tuple[str, bytes], tuple[SHA1, SHA1]] = {}
_cache_hits = 0
_cache_misses = 0


def _prepare_key(key: bytes) -> bytes:
    """Normalise ``key`` to exactly one SHA-1 block (64 bytes)."""
    if len(key) > BLOCK_SIZE:
        key = SHA1(key).digest()
    return key.ljust(BLOCK_SIZE, b"\x00")


def _make_midstates(padded: bytes) -> tuple[SHA1, SHA1]:
    return (SHA1(bytes(b ^ _IPAD for b in padded)),
            SHA1(bytes(b ^ _OPAD for b in padded)))


def _pad_midstates(padded: bytes) -> tuple[SHA1, SHA1]:
    """Inner/outer SHA-1 prototypes for ``padded`` (64-byte key block):
    pinned entries first, then the per-(engine, key) LRU cache."""
    global _cache_hits, _cache_misses
    cache_key = (fastpath.engine(), padded)
    entry = _pinned.get(cache_key)
    if entry is not None:
        _cache_hits += 1
        return entry
    entry = _midstate_cache.get(cache_key)
    if entry is not None:
        _cache_hits += 1
        _midstate_cache.move_to_end(cache_key)
        return entry
    _cache_misses += 1
    entry = _make_midstates(padded)
    _midstate_cache[cache_key] = entry
    while len(_midstate_cache) > HMAC_MIDSTATE_CACHE_MAX:
        _midstate_cache.popitem(last=False)
    return entry


def pin_hmac_midstates(keys) -> int:
    """Batch-prime and pin the pad midstates for ``keys`` (an iterable
    of raw HMAC keys) under the current engine, in one pass.

    Pinned entries are exempt from the LRU bound, so a fleet sweep over
    more distinct keys than ``HMAC_MIDSTATE_CACHE_MAX`` finalizes every
    member's HMAC from a cloned midstate instead of thrashing the LRU.
    Idempotent -- already-pinned keys are skipped.  Returns the number
    of newly pinned keys.  Host-side only: simulated HMAC cycle charges
    are unchanged.
    """
    engine = fastpath.engine()
    pinned = 0
    for key in keys:
        cache_key = (engine, _prepare_key(bytes(key)))
        if cache_key in _pinned:
            continue
        _pinned[cache_key] = _make_midstates(cache_key[1])
        pinned += 1
    return pinned


def unpin_hmac_midstates() -> None:
    """Release all pinned midstates (the LRU cache is untouched)."""
    _pinned.clear()


def clear_hmac_midstate_cache() -> None:
    """Drop all cached *and pinned* midstates and reset the hit/miss
    counters (benchmarks rely on this making the next construction per
    key genuinely cold)."""
    global _cache_hits, _cache_misses
    _midstate_cache.clear()
    _pinned.clear()
    _cache_hits = 0
    _cache_misses = 0


def hmac_midstate_cache_info() -> dict:
    """Cache statistics (for the wall-clock benchmarks and tests)."""
    return {"size": len(_midstate_cache),
            "max_size": HMAC_MIDSTATE_CACHE_MAX,
            "pinned": len(_pinned),
            "hits": _cache_hits,
            "misses": _cache_misses}


class HmacSha1:
    """Incremental HMAC-SHA1 object.

    >>> HmacSha1(b"key", b"The quick brown fox jumps over the lazy dog"
    ...          ).hexdigest()
    'de7c9b85b8b78aa6bc8a7a36f70a90701c9db4d9'
    """

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE

    def __init__(self, key: bytes, data: bytes = b""):
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("HMAC key must be bytes")
        padded = _prepare_key(bytes(key))
        if fastpath.is_fast():
            inner_proto, outer_proto = _pad_midstates(padded)
            self._inner = inner_proto.copy()
            self._outer_proto: SHA1 | None = outer_proto
            self._outer_key: bytes | None = None
        else:
            self._inner = SHA1(bytes(b ^ _IPAD for b in padded))
            self._outer_proto = None
            self._outer_key = bytes(b ^ _OPAD for b in padded)
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb message ``data``."""
        self._inner.update(data)

    def copy(self) -> "HmacSha1":
        clone = HmacSha1.__new__(HmacSha1)
        clone._inner = self._inner.copy()
        clone._outer_proto = self._outer_proto
        clone._outer_key = self._outer_key
        return clone

    def digest(self) -> bytes:
        """Return the 20-byte HMAC tag."""
        if self._outer_proto is not None:
            outer = self._outer_proto.copy()
        else:
            outer = SHA1(self._outer_key)
        outer.update(self._inner.digest())
        return outer.digest()

    def hexdigest(self) -> str:
        return self.digest().hex()

    @property
    def blocks_processed(self) -> int:
        """Blocks absorbed by the inner hash so far (the ipad key block
        plus full message blocks; excludes finalise/outer blocks)."""
        return self._inner.blocks_processed

    @staticmethod
    def total_compressions(message_length: int) -> int:
        """Exact number of SHA-1 compression calls for a one-shot HMAC.

        Inner hash: 1 key block + the padded message blocks; outer hash:
        1 key block + 1 block holding the 20-byte inner digest.  For the
        paper's 512 KB example this yields 1 + 8193 + 2 = 8196 compressions,
        and 8196 * 0.092 ms = 754.032 ms -- exactly the figure in
        Section 3.1.  See :mod:`repro.crypto.costmodel`.

        This count is *simulated* work: the cost model charges it no
        matter which host engine ran the hash or whether the midstate
        cache hit.
        """
        if message_length < 0:
            raise ValueError("message_length must be non-negative")
        inner_payload = BLOCK_SIZE + message_length  # ipad block + message
        remainder = inner_payload % BLOCK_SIZE
        inner_blocks = inner_payload // BLOCK_SIZE + (1 if remainder < 56 else 2)
        outer_blocks = 2  # opad block + (20-byte digest + padding)
        return inner_blocks + outer_blocks


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """One-shot HMAC-SHA1 tag of ``message`` under ``key``."""
    return HmacSha1(key, message).digest()


def constant_time_compare(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on mismatch.

    Prevents timing side channels when the prover validates a request MAC.
    Length differences still return ``False``, but only after scanning the
    shorter input.
    """
    if not isinstance(a, (bytes, bytearray)) or not isinstance(b, (bytes, bytearray)):
        raise TypeError("constant_time_compare expects bytes")
    result = len(a) ^ len(b)
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
