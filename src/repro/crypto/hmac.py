"""HMAC-SHA1 per RFC 2104 (Krawczyk, Bellare, Canetti), from scratch.

This is the prover's attestation MAC in the paper: the response is a
SHA1-HMAC computed over the prover's entire writable memory (Section 3.1),
and the verifier's attestation *requests* may also be authenticated with
the same primitive (Section 4.1, "a SHA-1-based HMAC can be validated in
0.430 ms").

The implementation follows RFC 2104 exactly: ``H(K ^ opad || H(K ^ ipad
|| message))`` with 64-byte block size.  Keys longer than one block are
first hashed; shorter keys are zero-padded.
"""

from __future__ import annotations

from .sha1 import BLOCK_SIZE, DIGEST_SIZE, SHA1

__all__ = ["HmacSha1", "hmac_sha1", "constant_time_compare"]

_IPAD = 0x36
_OPAD = 0x5C


def _prepare_key(key: bytes) -> bytes:
    """Normalise ``key`` to exactly one SHA-1 block (64 bytes)."""
    if len(key) > BLOCK_SIZE:
        key = SHA1(key).digest()
    return key.ljust(BLOCK_SIZE, b"\x00")


class HmacSha1:
    """Incremental HMAC-SHA1 object.

    >>> HmacSha1(b"key", b"The quick brown fox jumps over the lazy dog"
    ...          ).hexdigest()
    'de7c9b85b8b78aa6bc8a7a36f70a90701c9db4d9'
    """

    digest_size = DIGEST_SIZE
    block_size = BLOCK_SIZE

    def __init__(self, key: bytes, data: bytes = b""):
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("HMAC key must be bytes")
        padded = _prepare_key(bytes(key))
        self._inner = SHA1(bytes(b ^ _IPAD for b in padded))
        self._outer_key = bytes(b ^ _OPAD for b in padded)
        if data:
            self.update(data)

    def update(self, data: bytes) -> None:
        """Absorb message ``data``."""
        self._inner.update(data)

    def copy(self) -> "HmacSha1":
        clone = HmacSha1.__new__(HmacSha1)
        clone._inner = self._inner.copy()
        clone._outer_key = self._outer_key
        return clone

    def digest(self) -> bytes:
        """Return the 20-byte HMAC tag."""
        outer = SHA1(self._outer_key)
        outer.update(self._inner.digest())
        return outer.digest()

    def hexdigest(self) -> str:
        return self.digest().hex()

    @property
    def blocks_processed(self) -> int:
        """Message blocks absorbed so far (excludes key/finalise blocks)."""
        return self._inner.blocks_processed

    @staticmethod
    def total_compressions(message_length: int) -> int:
        """Exact number of SHA-1 compression calls for a one-shot HMAC.

        Inner hash: 1 key block + the padded message blocks; outer hash:
        1 key block + 1 block holding the 20-byte inner digest.  For the
        paper's 512 KB example this yields 1 + 8193 + 2 = 8196 compressions,
        and 8196 * 0.092 ms = 754.032 ms -- exactly the figure in
        Section 3.1.  See :mod:`repro.crypto.costmodel`.
        """
        if message_length < 0:
            raise ValueError("message_length must be non-negative")
        inner_payload = BLOCK_SIZE + message_length  # ipad block + message
        remainder = inner_payload % BLOCK_SIZE
        inner_blocks = inner_payload // BLOCK_SIZE + (1 if remainder < 56 else 2)
        outer_blocks = 2  # opad block + (20-byte digest + padding)
        return inner_blocks + outer_blocks


def hmac_sha1(key: bytes, message: bytes) -> bytes:
    """One-shot HMAC-SHA1 tag of ``message`` under ``key``."""
    return HmacSha1(key, message).digest()


def constant_time_compare(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on mismatch.

    Prevents timing side channels when the prover validates a request MAC.
    Length differences still return ``False``, but only after scanning the
    shorter input.
    """
    if not isinstance(a, (bytes, bytearray)) or not isinstance(b, (bytes, bytearray)):
        raise TypeError("constant_time_compare expects bytes")
    result = len(a) ^ len(b)
    for x, y in zip(a, b):
        result |= x ^ y
    return result == 0
