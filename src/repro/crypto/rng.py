"""Deterministic random generation for reproducible simulations.

Everything random in the simulator -- nonces, keys, adversary timing
jitter, workload contents -- flows through :class:`DeterministicRng`, an
HMAC-SHA1-based DRBG (in the spirit of NIST SP 800-90A HMAC_DRBG, using
our own from-scratch HMAC).  Seeding the simulation seeds every derived
stream, so a scenario replays bit-identically; independent substreams are
derived by label so that adding randomness consumption in one subsystem
does not perturb another.
"""

from __future__ import annotations

from .hmac import HmacSha1

__all__ = ["DeterministicRng"]


class DeterministicRng:
    """HMAC-DRBG-style deterministic byte/integer generator.

    >>> rng = DeterministicRng(b"seed")
    >>> rng.bytes(4) == DeterministicRng(b"seed").bytes(4)
    True
    >>> a = DeterministicRng(b"seed").substream("alpha").bytes(4)
    >>> b = DeterministicRng(b"seed").substream("beta").bytes(4)
    >>> a != b
    True
    """

    def __init__(self, seed: bytes | int | str):
        if isinstance(seed, int):
            seed = seed.to_bytes(max(1, (seed.bit_length() + 7) // 8), "big",
                                 signed=False) if seed >= 0 else repr(seed).encode()
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        if not isinstance(seed, (bytes, bytearray)):
            raise TypeError("seed must be bytes, str or int")
        self._key = b"\x00" * 20
        self._value = b"\x01" * 20
        self._reseed(bytes(seed))
        # Snapshot for substream derivation: children branch from the
        # generator's *initial* state, so consuming from the parent never
        # shifts a later-derived child.
        self._root_key = self._key
        self._root_value = self._value

    def _reseed(self, seed_material: bytes) -> None:
        self._key = HmacSha1(self._key, self._value + b"\x00" + seed_material).digest()
        self._value = HmacSha1(self._key, self._value).digest()
        self._key = HmacSha1(self._key, self._value + b"\x01" + seed_material).digest()
        self._value = HmacSha1(self._key, self._value).digest()

    def substream(self, label: str) -> "DeterministicRng":
        """Derive an independent generator for ``label``.

        Two substreams with distinct labels produce unrelated output, and
        consuming from one never affects the other.
        """
        child = DeterministicRng.__new__(DeterministicRng)
        child._key = self._root_key
        child._value = self._root_value
        child._reseed(b"substream:" + label.encode("utf-8"))
        child._root_key = child._key
        child._root_value = child._value
        return child

    def bytes(self, n: int) -> bytes:
        """Return ``n`` pseudo-random bytes."""
        if n < 0:
            raise ValueError("n must be non-negative")
        out = bytearray()
        while len(out) < n:
            self._value = HmacSha1(self._key, self._value).digest()
            out.extend(self._value)
        return bytes(out[:n])

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range [``low``, ``high``]."""
        if low > high:
            raise ValueError("low must not exceed high")
        span = high - low + 1
        nbytes = max(1, (span.bit_length() + 7) // 8 + 1)
        # Rejection sampling for uniformity.
        limit = (256 ** nbytes // span) * span
        while True:
            candidate = int.from_bytes(self.bytes(nbytes), "big")
            if candidate < limit:
                return low + candidate % span

    def randbelow(self, n: int) -> int:
        """Uniform integer in [0, ``n``)."""
        if n <= 0:
            raise ValueError("n must be positive")
        return self.randint(0, n - 1)

    def random(self) -> float:
        """Uniform float in [0, 1) with 53 bits of precision."""
        return int.from_bytes(self.bytes(7), "big") % (1 << 53) / (1 << 53)

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in [``low``, ``high``)."""
        return low + (high - low) * self.random()

    def choice(self, sequence):
        """Pick one element of a non-empty ``sequence``."""
        if not sequence:
            raise ValueError("cannot choose from an empty sequence")
        return sequence[self.randbelow(len(sequence))]

    def shuffle(self, items: list) -> None:
        """Fisher-Yates shuffle of ``items`` in place."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]

    def exponential(self, mean: float) -> float:
        """Exponentially-distributed float with the given ``mean``.

        Used by adversary and workload models for Poisson request arrivals.
        """
        import math
        if mean <= 0:
            raise ValueError("mean must be positive")
        u = self.random()
        # Guard against log(0).
        return -mean * math.log(1.0 - u if u < 1.0 else 5e-324)
