"""HKDF-SHA1 key derivation (RFC 5869, instantiated with our HMAC).

Fleet deployments need per-device ``K_Attest`` values: a single shared
key would let one compromised prover impersonate every other (the
roaming adversary of Section 5 extracts keys wherever hardware allows).
HKDF derives independent device keys from one provisioning master, so
the back office stores a single secret while each device's compromise
stays contained.

``extract`` and ``expand`` follow RFC 5869 exactly (with SHA-1 as the
hash, matching the platform's primitive set); test vectors are checked
in the suite.
"""

from __future__ import annotations

from ..errors import CryptoError
from .hmac import hmac_sha1

__all__ = ["hkdf_extract", "hkdf_expand", "hkdf", "derive_device_key"]

_HASH_LEN = 20


def hkdf_extract(salt: bytes, ikm: bytes) -> bytes:
    """RFC 5869 extract: PRK = HMAC(salt, IKM)."""
    if not salt:
        salt = b"\x00" * _HASH_LEN
    return hmac_sha1(salt, ikm)


def hkdf_expand(prk: bytes, info: bytes, length: int) -> bytes:
    """RFC 5869 expand: derive ``length`` bytes bound to ``info``."""
    if length < 1:
        raise CryptoError("requested length must be positive")
    if length > 255 * _HASH_LEN:
        raise CryptoError("requested length exceeds HKDF-SHA1 maximum")
    if len(prk) < _HASH_LEN:
        raise CryptoError("PRK shorter than the hash output")
    output = b""
    block = b""
    counter = 1
    while len(output) < length:
        block = hmac_sha1(prk, block + info + bytes([counter]))
        output += block
        counter += 1
    return output[:length]


def hkdf(ikm: bytes, *, salt: bytes = b"", info: bytes = b"",
         length: int = 16) -> bytes:
    """One-shot extract-then-expand."""
    return hkdf_expand(hkdf_extract(salt, ikm), info, length)


def derive_device_key(master_key: bytes, device_id: str, *,
                      length: int = 16) -> bytes:
    """Per-device ``K_Attest`` from a fleet master key.

    Distinct device ids yield independent keys; the derivation is
    deterministic, so the verifier back office re-derives on demand
    instead of storing a key database.
    """
    if not device_id:
        raise CryptoError("device_id must be non-empty")
    return hkdf(master_key, salt=b"repro-fleet-v1",
                info=b"k-attest:" + device_id.encode("utf-8"),
                length=length)
