"""Protection profiles: which hardware defenses a device boots with.

The paper builds its argument as an escalation ladder, and each step of
the ladder is one profile here:

``UNPROTECTED``
    No EA-MPU at all; even the attestation key is only protected by
    obscurity.  Software-based attestation lives here (Section 2) --
    the roaming adversary extracts ``K_Attest`` outright.

``BASELINE``
    Section 6.3's reference point: hardware attestation in the classic
    trusted-verifier model (SMART/TrustLite).  Two EA-MPU rules -- one
    locks the MPU's own configuration registers, one restricts
    ``K_Attest`` to ``Code_Attest``.  No prover-side DoS protection.

``EXT_HARDENED``
    Adds request freshness state protection: ``counter_R`` writable only
    by ``Code_Attest``.  Defeats ``Adv_ext`` replay/reorder when combined
    with authenticated counters -- but ``Adv_roam`` still resets the
    (unprotected) clock.

``ROAM_HARDENED``
    Full Section 6 countermeasures: key + counter + clock protection.
    The clock rules depend on the device's clock design (Figure 1a wide
    hardware register vs Figure 1b SW-clock) and are emitted by
    :meth:`repro.mcu.device.Device.boot`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ProtectionProfile", "UNPROTECTED", "BASELINE", "EXT_HARDENED",
           "ROAM_HARDENED", "ALL_PROFILES"]


@dataclass(frozen=True)
class ProtectionProfile:
    """Feature switches secure boot consults when configuring the EA-MPU.

    Attributes
    ----------
    name:
        Profile identity used in reports.
    mpu_enabled:
        Whether the EA-MPU is enabled at all.
    protect_key:
        Rule restricting ``K_Attest`` to ``Code_Attest`` (read-only; the
        key is additionally write-protected by its storage technology or
        by the same rule when in flash).
    protect_counter:
        Rule making ``counter_R`` accessible only to ``Code_Attest``.
    protect_clock:
        Clock-design-specific rules: the wide hardware register becomes
        read-only to all software, or (SW-clock) the IDT and mask register
        are locked and ``Clock_MSB`` becomes writable only by
        ``Code_Clock``.
    lockdown:
        Final rule making the EA-MPU's own configuration registers
        read-only (the Figure 1a lockdown idiom).
    """

    name: str
    mpu_enabled: bool
    protect_key: bool
    protect_counter: bool
    protect_clock: bool
    lockdown: bool

    def __str__(self) -> str:
        return self.name


UNPROTECTED = ProtectionProfile(
    name="unprotected", mpu_enabled=False, protect_key=False,
    protect_counter=False, protect_clock=False, lockdown=False)

BASELINE = ProtectionProfile(
    name="baseline", mpu_enabled=True, protect_key=True,
    protect_counter=False, protect_clock=False, lockdown=True)

EXT_HARDENED = ProtectionProfile(
    name="ext-hardened", mpu_enabled=True, protect_key=True,
    protect_counter=True, protect_clock=False, lockdown=True)

ROAM_HARDENED = ProtectionProfile(
    name="roam-hardened", mpu_enabled=True, protect_key=True,
    protect_counter=True, protect_clock=True, lockdown=True)

ALL_PROFILES = (UNPROTECTED, BASELINE, EXT_HARDENED, ROAM_HARDENED)
