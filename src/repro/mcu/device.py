"""The simulated prover device: memory, MPU, clocks, boot, energy.

:class:`Device` assembles every hardware block into the low-end MCU the
paper targets (Siskiyou-Peak-class, 24 MHz) and exposes the handful of
high-level operations the attestation trust anchor needs:

* :meth:`Device.boot` -- secure boot: measure firmware, configure the
  EA-MPU per a :class:`~repro.mcu.profiles.ProtectionProfile`, lock down;
* :meth:`Device.read_key` / :meth:`read_counter` / :meth:`write_counter` /
  :meth:`read_clock_ticks` -- protected-state access, always attributed
  to an execution context so the EA-MPU arbitrates;
* :meth:`Device.measure_writable_memory` -- the attestation measurement:
  an HMAC-SHA1 over all of RAM + flash, charged at Table 1 cycle costs
  (the 754 ms centrepiece of Section 3.1).

Address map::

    0x0000_0000  ROM    boot | Code_Attest | Code_Clock | K_Attest | ref
    0x0010_0000  FLASH  application code + data
    0x0020_0000  RAM    IDT | counter_R | Clock_MSB | data
    0x0030_0000  MMIO   EA-MPU config | clock counter | IRQ mask
"""

from __future__ import annotations

from dataclasses import dataclass

from .. import fastpath
from ..crypto.costmodel import CryptoCostModel
from ..crypto.hmac import HmacSha1
from ..crypto.sha1 import SHA1
from ..errors import ConfigurationError, SecureBootError
from ..incremental import DigestTree
from ..obs.telemetry import NULL_TELEMETRY
from .clock import SoftwareClock, WideHardwareClock
from .cpu import CPU, ExecutionContext
from .firmware import FirmwareImage, FirmwareModule
from .interrupts import InterruptController
from .memory import MemoryBus, MemoryMap, MemoryRegion, MemoryType
from .mpu import ALL_CODE, ExecutionAwareMPU
from .power import Battery, EnergyModel
from .profiles import ProtectionProfile, UNPROTECTED

__all__ = ["DeviceConfig", "Device", "ROM_BASE", "FLASH_BASE", "RAM_BASE",
           "MMIO_BASE"]

ROM_BASE = 0x0000_0000
FLASH_BASE = 0x0010_0000
RAM_BASE = 0x0020_0000
MMIO_BASE = 0x0030_0000

# Offsets inside ROM.
_BOOT_OFF = 0x0000
_ATTEST_OFF = 0x0800
_CLOCKCODE_OFF = 0x1800
_KEY_OFF = 0x1C00
_REF_OFF = 0x1C20

# Offsets inside RAM.
_IDT_OFF = 0x0000
_COUNTER_OFF = 0x0040
_CLOCK_MSB_OFF = 0x0048
_DATA_OFF = 0x0100

# Offsets inside MMIO.
_MPU_OFF = 0x0000
_CLOCK_REG_OFF = 0x1000
_IRQ_MASK_OFF = 0x1100

_KEY_SIZE = 16

#: Chunk size of the per-chunk checked memory walk (the naive path).
_MEASURE_CHUNK = 4096


@dataclass
class DeviceConfig:
    """Static configuration of a simulated prover.

    The defaults give a small, fast-to-simulate device; the Table 1 /
    Section 3.1 benchmarks override ``ram_size`` to the paper's 512 KB.

    Attributes
    ----------
    clock_kind:
        ``"hw64"`` -- Figure 1a with a 64-bit cycle counter;
        ``"hw32div"`` -- 32-bit counter behind a /2^20 divider (Section
        6.3's cheap variant); ``"sw"`` -- Figure 1b software clock;
        ``"none"`` -- no real-time clock (counter-only freshness).
    uninterruptible_attest:
        SMART-style atomic ``Code_Attest`` (defers interrupts) when True;
        TrustLite-style interruptible when False.
    key_in_rom:
        Store ``K_Attest`` in ROM (inherently write-protected) or in
        flash (write protection must come from the EA-MPU rule).
    """

    frequency_hz: int = 24_000_000
    rom_size: int = 32 * 1024
    flash_size: int = 128 * 1024
    ram_size: int = 64 * 1024
    app_size: int = 16 * 1024
    clock_kind: str = "hw64"
    sw_clock_lsb_bits: int = 16
    sw_clock_divider: int = 1
    max_mpu_rules: int = 8
    num_irqs: int = 8
    uninterruptible_attest: bool = False
    key_in_rom: bool = True
    #: SMART-style single-entry enforcement for trusted code (Section
    #: 6.2's "limiting code entry points").  False models a core without
    #: it, on which a code-reuse jump into Code_Attest inherits its
    #: EA-MPU privileges.
    enforce_entry_points: bool = True
    energy: EnergyModel | None = None
    battery_capacity_mj: float = 620 * 3 * 3.6 * 1000
    seed: str = "prover-0"

    def __post_init__(self):
        if self.clock_kind not in ("hw64", "hw32div", "sw", "none"):
            raise ConfigurationError(f"unknown clock_kind {self.clock_kind!r}")
        if self.app_size > self.flash_size:
            raise ConfigurationError("application larger than flash")
        if self.ram_size < _DATA_OFF + 256:
            raise ConfigurationError("RAM too small for reserved words")


class Device:
    """A fully-wired simulated prover MCU.

    Construction wires the hardware; :meth:`provision` installs the
    attestation key and reference measurement (factory step);
    :meth:`boot` runs secure boot under a protection profile.  After
    boot the device is ready for the attestation protocol
    (:mod:`repro.core.prover`).
    """

    def __init__(self, config: DeviceConfig | None = None):
        self.config = config if config is not None else DeviceConfig()
        cfg = self.config

        self.cpu = CPU(cfg.frequency_hz,
                       enforce_entry_points=cfg.enforce_entry_points)
        self.cost_model = CryptoCostModel(frequency_hz=cfg.frequency_hz)
        self.energy = cfg.energy if cfg.energy is not None else EnergyModel(
            frequency_hz=cfg.frequency_hz)
        self.battery = Battery(cfg.battery_capacity_mj, self.energy)
        self._energy_last_cycle = 0
        self.cpu.add_cycle_listener(self._drain_battery)

        # -- memory map -----------------------------------------------------
        self.memory = MemoryMap()
        self.rom = self.memory.add(MemoryRegion(
            "rom", ROM_BASE, cfg.rom_size, MemoryType.ROM, executable=True))
        self.flash = self.memory.add(MemoryRegion(
            "flash", FLASH_BASE, cfg.flash_size, MemoryType.FLASH,
            executable=True))
        self.ram = self.memory.add(MemoryRegion(
            "ram", RAM_BASE, cfg.ram_size, MemoryType.RAM, executable=True))
        # The reserved words (IDT, counter_R, Clock_MSB) are outside the
        # attested spans, so their mutation must not perturb the RAM
        # content fingerprint the state-digest cache keys on.
        self.ram.fingerprint_exclude_below = _DATA_OFF

        self.mpu = ExecutionAwareMPU(cfg.max_mpu_rules)
        self.memory.add(MemoryRegion(
            "mpu-config", MMIO_BASE + _MPU_OFF, self.mpu.register_file_size,
            MemoryType.MMIO, peripheral=self.mpu))

        self.bus = MemoryBus(self.memory)
        self.bus.attach_mpu(self.mpu)

        # -- interrupts -------------------------------------------------------
        self.idt_base = RAM_BASE + _IDT_OFF
        self.interrupts = InterruptController(
            self.cpu, self.bus, self.idt_base, num_irqs=cfg.num_irqs)
        self.memory.add(MemoryRegion(
            "irq-mask", MMIO_BASE + _IRQ_MASK_OFF, self.interrupts.mask.size,
            MemoryType.MMIO, peripheral=self.interrupts.mask))

        # -- firmware ---------------------------------------------------------
        self.firmware = FirmwareImage()
        self.firmware.add(FirmwareModule("boot", 2048), ROM_BASE + _BOOT_OFF)
        self.firmware.add(
            FirmwareModule("Code_Attest", 4096,
                           uninterruptible=cfg.uninterruptible_attest),
            ROM_BASE + _ATTEST_OFF)
        self.firmware.add(FirmwareModule("Code_Clock", 1024),
                          ROM_BASE + _CLOCKCODE_OFF)
        self.app_module: FirmwareModule | None = None

        self._contexts: dict[str, ExecutionContext] = {}
        for name in ("boot", "Code_Attest", "Code_Clock"):
            start, end = self.firmware.span(name)
            module = self.firmware.module(name)
            # Trusted modules expose a single canonical entry point
            # (their base address): the Section 6.2 code-entry defence.
            self._contexts[name] = ExecutionContext(
                name, start, end, uninterruptible=module.uninterruptible,
                entry_points=(start,))
            self.rom.load(start - ROM_BASE, module.code_bytes())

        # -- well-known data addresses ---------------------------------------
        self.key_address = (ROM_BASE + _KEY_OFF if cfg.key_in_rom
                            else FLASH_BASE + cfg.flash_size - 64)
        self.reference_address = ROM_BASE + _REF_OFF
        self.counter_address = RAM_BASE + _COUNTER_OFF
        self.clock_msb_address = RAM_BASE + _CLOCK_MSB_OFF
        self.data_base = RAM_BASE + _DATA_OFF

        # -- clock -------------------------------------------------------------
        self.clock: WideHardwareClock | SoftwareClock | None = None
        self.clock_register_span: tuple[int, int] | None = None
        self._build_clock()

        self.booted = False
        self.boot_profile: ProtectionProfile | None = None
        self.boot_log: list[str] = []
        self.telemetry = NULL_TELEMETRY
        self._state_cache = None
        self._incremental = False

    def attach_state_cache(self, cache) -> None:
        """Share a :class:`~repro.mcu.statecache.StateDigestCache`.

        The cache serves :meth:`digest_writable_memory` only when a hit
        is provably indistinguishable from a recompute (see the
        eligibility and accounting-replay rules there); attaching one
        never changes digests, simulated cycles, energy or telemetry.
        One cache is typically shared by a whole fleet so identical
        members reuse each other's work.
        """
        self._state_cache = cache

    def attach_telemetry(self, telemetry) -> None:
        """Wire hardware-level observers into a telemetry sink.

        Reports, without changing device behaviour:

        * per-context cycle attribution (``cpu.cycles{context=...}``);
        * EA-MPU denials as ``mpu-fault`` trace events plus a
          ``device.mpu_faults`` counter;
        * SW-clock wrap servicing as ``clock-wrap`` trace events plus a
          ``device.clock_wraps`` counter;
        * static geometry gauges (RAM/flash/writable bytes, MPU rules).

        Attaching the no-op sink is a no-op: the hardware hot paths stay
        observer-free unless someone is genuinely observing.
        """
        if not telemetry.enabled:
            return
        self.telemetry = telemetry
        self.cpu.attach_telemetry(telemetry)
        cfg = self.config

        def on_mpu_fault(violation):
            telemetry.count("device.mpu_faults")
            telemetry.event("mpu-fault", self.cpu.elapsed_seconds,
                            context=violation.context,
                            access=violation.access,
                            address=violation.address)

        self.mpu.on_violation = on_mpu_fault

        if self.clock is not None and self.clock.kind == "software":
            def on_clock_wrap(total_wraps):
                telemetry.count("device.clock_wraps")
                telemetry.event("clock-wrap", self.cpu.elapsed_seconds,
                                wraps_serviced=total_wraps)

            self.clock.on_wrap_serviced = on_clock_wrap

        telemetry.set_gauge("device.ram_bytes", cfg.ram_size)
        telemetry.set_gauge("device.flash_bytes", cfg.flash_size)
        telemetry.set_gauge("device.writable_bytes",
                            self.writable_memory_bytes)
        telemetry.set_gauge("device.mpu_rules", self.mpu.active_rule_count)

    # ------------------------------------------------------------------
    # Well-known protected spans (half-open address ranges)
    # ------------------------------------------------------------------

    @property
    def key_span(self) -> tuple[int, int]:
        """Address span of ``K_Attest``."""
        return (self.key_address, self.key_address + _KEY_SIZE)

    @property
    def counter_span(self) -> tuple[int, int]:
        """Address span of the freshness word ``counter_R``."""
        return (self.counter_address, self.counter_address + 8)

    @property
    def clock_msb_span(self) -> tuple[int, int]:
        """Address span of the SW-clock ``Clock_MSB`` word."""
        return (self.clock_msb_address, self.clock_msb_address + 8)

    @property
    def idt_span(self) -> tuple[int, int]:
        """Address span of the interrupt descriptor table."""
        return (self.idt_base, self.idt_base + self.interrupts.idt_size)

    @property
    def irq_mask_span(self) -> tuple[int, int]:
        """Address span of the interrupt mask register."""
        base = MMIO_BASE + _IRQ_MASK_OFF
        return (base, base + self.interrupts.mask.size)

    @property
    def mpu_register_span(self) -> tuple[int, int]:
        """Address span of the EA-MPU's own configuration registers."""
        base = MMIO_BASE + _MPU_OFF
        return (base, base + self.mpu.register_file_size)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_clock(self) -> None:
        cfg = self.config
        if cfg.clock_kind == "none":
            return
        if cfg.clock_kind in ("hw64", "hw32div"):
            width = 64 if cfg.clock_kind == "hw64" else 32
            divider = 1 if cfg.clock_kind == "hw64" else 1 << 20
            # The register is physically writable; protection comes from an
            # EA-MPU rule (Section 6.3 charges one rule per hardware clock),
            # so an unprotected boot leaves it attackable.
            self.clock = WideHardwareClock(
                self.cpu, width_bits=width, divider=divider,
                software_writable=True)
            size = self.clock.counter.size_bytes
            base = MMIO_BASE + _CLOCK_REG_OFF
            self.memory.add(MemoryRegion(
                "clock-register", base, size, MemoryType.MMIO,
                peripheral=self.clock.counter))
            self.clock_register_span = (base, base + size)
        else:  # "sw"
            clock_ctx = self._contexts["Code_Clock"]
            handler_address = clock_ctx.code_start  # entry point at base
            self.clock = SoftwareClock(
                self.cpu, self.bus, self.interrupts,
                msb_address=self.clock_msb_address,
                code_clock_context=clock_ctx,
                handler_address=handler_address,
                irq=0, lsb_width_bits=cfg.sw_clock_lsb_bits,
                divider=cfg.sw_clock_divider)
            size = self.clock.counter.size_bytes
            base = MMIO_BASE + _CLOCK_REG_OFF
            self.memory.add(MemoryRegion(
                "clock-register", base, size, MemoryType.MMIO,
                peripheral=self.clock.counter))
            self.clock_register_span = (base, base + size)

    def _drain_battery(self, now: int, elapsed: int) -> None:
        delta = self.cpu.cycle_count - self._energy_last_cycle
        if delta > 0:
            self.battery.drain_active(delta)
            self._energy_last_cycle = self.cpu.cycle_count

    def snapshot_state(self, blobs) -> dict:
        """Capture every runtime-mutable hardware block of this device.

        Region images are deduplicated into ``blobs`` (a
        :class:`~repro.snapshot.blobs.BlobStore`); see
        :func:`repro.snapshot.snapshot_device` for the exact inventory.
        """
        from ..snapshot import snapshot_device
        return snapshot_device(self, blobs)

    def restore_state(self, snap: dict, blobs) -> None:
        """Overwrite this (freshly rebuilt and booted) device's mutable
        state from a snapshot taken of an identically-built device."""
        from ..snapshot import restore_device
        restore_device(self, snap, blobs)

    def sync_energy(self) -> None:
        """Flush energy accounting for cycles consumed inside nested
        interrupt dispatch (call before reading battery state)."""
        self._drain_battery(self.cpu.cycle_count, 0)
        self.telemetry.set_gauge("device.energy_consumed_mj",
                                 self.battery.consumed_mj)
        self.telemetry.set_gauge("device.battery_fraction_remaining",
                                 self.battery.fraction_remaining)

    # ------------------------------------------------------------------
    # Factory provisioning and application install
    # ------------------------------------------------------------------

    def install_app(self, module: FirmwareModule | None = None) -> FirmwareModule:
        """Place the application firmware into flash (pre-boot step)."""
        if module is None:
            module = FirmwareModule("app", self.config.app_size)
        self.firmware.add(module, FLASH_BASE)
        self.flash.load(0, module.code_bytes())
        self._contexts["app"] = ExecutionContext(
            "app", FLASH_BASE, FLASH_BASE + module.size)
        self.app_module = module
        return module

    def provision(self, key: bytes) -> None:
        """Factory step: burn ``K_Attest`` and the boot reference.

        The reference measurement covers the application image, which must
        already be installed (:meth:`install_app`).
        """
        if len(key) != _KEY_SIZE:
            raise ConfigurationError(f"K_Attest must be {_KEY_SIZE} bytes")
        if self.app_module is None:
            self.install_app()
        key_region = self.memory.find(self.key_address)
        key_region.load(self.key_address - key_region.start, key)
        reference = self.app_module.measurement()
        self.rom.load(self.reference_address - ROM_BASE, reference)

    # ------------------------------------------------------------------
    # Secure boot
    # ------------------------------------------------------------------

    def boot(self, profile: ProtectionProfile = UNPROTECTED) -> None:
        """Run secure boot: verify, configure protection, lock down.

        Section 6.2: "the system is started via secure boot, i.e., at boot
        time it verifies that correct software is loaded.  This initial
        software sets up memory protection rules in the EA-MPU and locks it
        down to preclude further changes."  Raises
        :class:`SecureBootError` on a measurement mismatch.
        """
        if self.booted:
            raise ConfigurationError("device already booted")
        if self.app_module is None:
            self.install_app()
        boot_ctx = self._contexts["boot"]
        with self.cpu.running(boot_ctx):
            self._verify_application(boot_ctx)
            if profile.mpu_enabled:
                self._configure_protection(profile, boot_ctx)
        self.booted = True
        self.boot_profile = profile
        self.boot_log.append(f"booted with profile {profile.name}")

    def _verify_application(self, boot_ctx: ExecutionContext) -> None:
        """Measure the application in flash against the ROM reference."""
        app_start, app_end = self.firmware.span("app")
        digest = SHA1()
        self._absorb_spans(boot_ctx, [(app_start, app_end)], digest.update)
        # Charge hashing cost (boot-time, so it does not affect the
        # attestation latency experiments, but energy is energy).
        self.cpu.consume_cycles(
            self.cost_model.hmac_cycles(app_end - app_start, mode="table") // 2)
        reference = self.rom.raw_read(self.reference_address - ROM_BASE, 20)
        if digest.digest() != reference:
            raise SecureBootError(
                "secure boot: application measurement mismatch")

    def _configure_protection(self, profile: ProtectionProfile,
                              boot_ctx: ExecutionContext) -> None:
        """Program EA-MPU rules for ``profile`` and lock down.

        Rule budget (cf. Section 6.3): K_Attest 1, counter_R 1, hardware
        clock 1, SW-clock 3 (IDT, Clock_MSB read, Clock_MSB write) + 1
        mask-register rule, lockdown 1.
        """
        attest_span = self.firmware.span("Code_Attest")
        rule_index = 0

        def next_rule(**kwargs):
            nonlocal rule_index
            self.mpu.program_rule(rule_index, context=boot_ctx.name, **kwargs)
            self.boot_log.append(
                f"rule[{rule_index}] {kwargs['data']} code={kwargs['code']} "
                f"r={kwargs['read']} w={kwargs['write']}")
            rule_index += 1

        if profile.protect_key:
            next_rule(code=attest_span, data=self.key_span,
                      read=True, write=False)
        if profile.protect_counter:
            next_rule(code=attest_span, data=self.counter_span,
                      read=True, write=True)
        if profile.protect_clock and self.clock is not None:
            if self.clock.kind == "hardware":
                next_rule(code=ALL_CODE, data=self.clock_register_span,
                          read=True, write=False)
            else:
                next_rule(code=ALL_CODE, data=self.idt_span,
                          read=True, write=False)
                clock_code = self.firmware.span("Code_Clock")
                next_rule(code=ALL_CODE, data=self.clock_msb_span,
                          read=True, write=False)
                next_rule(code=clock_code, data=self.clock_msb_span,
                          read=True, write=True)
                next_rule(code=ALL_CODE, data=self.irq_mask_span,
                          read=True, write=False)
        self.mpu.set_enabled(True, boot_ctx.name)
        if profile.lockdown:
            next_rule(code=ALL_CODE, data=self.mpu_register_span,
                      read=True, write=False)

    # ------------------------------------------------------------------
    # Execution contexts
    # ------------------------------------------------------------------

    def context(self, name: str) -> ExecutionContext:
        """Look up a firmware execution context by name."""
        return self._contexts[name]

    def make_malware_context(self, name: str = "malware", *,
                             size: int = 4096) -> ExecutionContext:
        """Create a context for injected code executing from RAM.

        Low-end MCUs generally lack no-execute protection, so malware may
        run from anywhere writable; what it cannot do on a hardened device
        is touch EA-MPU-protected state.
        """
        start = RAM_BASE + self.config.ram_size - size
        ctx = ExecutionContext(name, start, start + size)
        self._contexts[name] = ctx
        return ctx

    # ------------------------------------------------------------------
    # Protected-state operations (all EA-MPU arbitrated)
    # ------------------------------------------------------------------

    def read_key(self, context: ExecutionContext) -> bytes:
        """Read ``K_Attest`` as ``context`` (raises on MPU denial)."""
        with self.cpu.running(context):
            return self.bus.read(context, self.key_address, _KEY_SIZE)

    def read_counter(self, context: ExecutionContext) -> int:
        with self.cpu.running(context):
            return self.bus.read_u64(context, self.counter_address)

    def write_counter(self, context: ExecutionContext, value: int) -> None:
        with self.cpu.running(context):
            self.bus.write_u64(context, self.counter_address, value)

    def read_clock_ticks(self, context: ExecutionContext) -> int:
        """Read the real-time clock as ``context``."""
        if self.clock is None:
            raise ConfigurationError("device has no real-time clock")
        with self.cpu.running(context):
            if self.clock.kind == "hardware":
                base = self.clock_register_span[0]
                size = self.clock.counter.size_bytes
                raw = self.bus.read(context, base, size)
                return int.from_bytes(raw, "little")
            return self.clock.read_ticks(context)

    # ------------------------------------------------------------------
    # The attestation measurement (Section 3.1's expensive operation)
    # ------------------------------------------------------------------

    def _absorb_spans(self, context: ExecutionContext,
                      spans: list[tuple[int, int]], absorb) -> int:
        """Feed every byte of ``spans`` through ``absorb``; returns the
        total byte count.

        This is the one shared memory walker behind the keyed
        measurement, the unkeyed state digest and the secure-boot
        verification.  Fast path: one MPU pre-check per span, then a
        single read-only ``memoryview`` straight onto the region backing
        store (zero copies).  It falls back to the seed's per-chunk
        checked-and-copied reads whenever the span is ineligible for
        bulk access (an EA-MPU rule splits it, MMIO, unmapped tail --
        see :meth:`~repro.mcu.memory.MemoryBus.can_bulk_read`), a bus
        tracer is observing the access pattern, or the fast path is
        disabled.  Either way the MPU arbitration outcome, the absorbed
        bytes and the simulated accounting are identical.
        """
        bus = self.bus
        total = 0
        for start, end in spans:
            length = end - start
            if length <= 0:
                continue
            if (fastpath.is_fast() and not bus.has_tracers
                    and bus.can_bulk_read(context, start, length)):
                absorb(bus.read_view(context, start, length))
            else:
                address = start
                while address < end:
                    step = min(_MEASURE_CHUNK, end - address)
                    absorb(bus.read(context, address, step))
                    address += step
            total += length
        return total

    def measure_writable_memory(self, context: ExecutionContext,
                                key: bytes, challenge: bytes) -> bytes:
        """HMAC-SHA1 over all writable memory, keyed with ``key``.

        Runs under ``context`` (normally ``Code_Attest``), reads through
        the bus (so protected words are readable only when the rules
        grant it), and charges Table 1 cycle costs for the MAC -- this is
        the 754 ms operation for 512 KB at 24 MHz.
        """
        mac = HmacSha1(key, challenge)
        with self.cpu.running(context):
            spans = [(r.start, r.end)
                     for r in self.memory.writable_regions()]
            total = self._absorb_spans(context, spans, mac.update)
            self.cpu.consume_cycles(
                self.cost_model.hmac_cycles(total + len(challenge),
                                            mode="exact"))
        if self.config.uninterruptible_attest:
            self.interrupts.run_pending()
        return mac.digest()

    def attested_spans(self) -> list[tuple[int, int]]:
        """Address spans the attestation digest covers.

        All writable memory except the trust anchor's own volatile words
        (IDT, ``counter_R``, ``Clock_MSB``): their integrity is enforced by
        the EA-MPU, and their values legitimately change between
        attestations, so including them would make every honest counter
        update look like a state change.
        """
        spans = []
        reserved_end = RAM_BASE + _DATA_OFF
        for region in self.memory.writable_regions():
            if region.start <= RAM_BASE < region.end:
                spans.append((reserved_end, region.end))
            else:
                spans.append((region.start, region.end))
        return spans

    def _state_cache_eligible(self, context: ExecutionContext,
                              spans: list[tuple[int, int]]) -> bool:
        """Whether a cached digest would be indistinguishable from a
        recompute: the walk would take the traced-by-nobody zero-copy
        bulk path for every span (one whole-span MPU check that
        ``can_bulk_read`` proves passes), so skipping the reads changes
        no arbitration outcome and no observable access pattern."""
        if self._state_cache is None:
            return False
        if not fastpath.is_fast() or self.bus.has_tracers:
            return False
        for start, end in spans:
            if end <= start:
                continue
            if not self.bus.can_bulk_read(context, start, end - start):
                return False
            region = self.memory.find(start)
            if region is None or region.content_fingerprint is None:
                return False
        return True

    def _state_digest_key(self, spans: list[tuple[int, int]]) -> tuple:
        """Content-addressed cache key: each attested span plus the
        write-chain fingerprint of its backing region.  Equal keys imply
        byte-identical attested contents (see
        :attr:`~repro.mcu.memory.MemoryRegion.content_fingerprint`)."""
        return tuple((start, end, self.memory.find(start).content_fingerprint)
                     for start, end in spans)

    # -- incremental (dirty-region) measurement ---------------------------

    def enable_incremental(self, *, chunk_size: int | None = None,
                           arity: int | None = None) -> None:
        """Attach a :class:`repro.incremental.DigestTree` per attested
        span, enabling the content-addressed second cache key.

        The trees observe every :meth:`~repro.mcu.memory.MemoryRegion.
        note_write` and make re-recognising previously measured content
        an O(dirty + log N) refresh instead of a full walk (see
        :mod:`repro.incremental` and ``docs/performance.md``).  Purely a
        host-side accelerator: digests, simulated cycles, energy and
        telemetry are byte-identical with or without it.
        """
        kwargs = {}
        if chunk_size is not None:
            kwargs["chunk_size"] = chunk_size
        if arity is not None:
            kwargs["arity"] = arity
        for start, end in self.attested_spans():
            if end <= start:
                continue
            region = self.memory.find(start)
            region.attach_digest_tree(DigestTree(
                start - region.start, end - start, **kwargs))
        self._incremental = True

    def disable_incremental(self) -> None:
        """Detach all digest trees; the device reverts to history-keyed
        caching only."""
        for region in self.memory.writable_regions():
            region.detach_digest_tree()
        self._incremental = False

    def _content_digest_key(self, spans: list[tuple[int, int]]) -> tuple | None:
        """Content-addressed second cache key from digest-tree roots.

        One ``(start, end, chunk_size, arity, root)`` tuple per span.
        Equal keys imply byte-identical attested contents *regardless of
        write history* -- the case the write-chain key always misses.
        Refreshing a root costs O(dirty + log N) chunk digests.  Returns
        ``None`` when any span lacks a matching tree.  Reads region
        backing bytes directly: callers gate on the same eligibility
        rules as the bulk walk, so no tracer or MPU arbitration can be
        bypassed.
        """
        parts = []
        for start, end in spans:
            if end <= start:
                continue
            region = self.memory.find(start)
            tree = region.digest_tree
            if (tree is None or tree.window_start != start - region.start
                    or tree.window_size != end - start):
                return None
            parts.append((start, end, tree.chunk_size, tree.arity,
                          tree.root(region._data)))
        return ("content", *parts)

    def _replay_digest_accounting(self, context: ExecutionContext,
                                  spans: list[tuple[int, int]]) -> None:
        """Charge the exact simulated accounting of a full state-digest
        walk without re-reading memory (cache-hit path): same context,
        same ``sha1_cycles`` total, same deferred-interrupt servicing."""
        with self.cpu.running(context):
            total = sum(end - start for start, end in spans if end > start)
            self.cpu.consume_cycles(self.cost_model.sha1_cycles(total))
        if self.config.uninterruptible_attest:
            self.interrupts.run_pending()

    def digest_writable_memory(self, context: ExecutionContext) -> bytes:
        """SHA-1 digest of the attested memory (the state report).

        Same Table 1 per-block cycle cost as the keyed measurement; the
        trust anchor binds the digest to the challenge with a short HMAC
        afterwards (see :class:`repro.core.messages.AttestationResponse`).

        An attached :class:`~repro.mcu.statecache.StateDigestCache` may
        serve the digest without re-reading memory; the hit path replays
        the exact simulated accounting of a recompute (same context,
        same ``sha1_cycles`` charge, same deferred-interrupt servicing),
        so only host time changes.

        Lookup is two-level when :meth:`enable_incremental` is on:

        1. the O(1) write-chain key (same history -> hit, PR 5);
        2. on a miss, the content key from the digest-tree roots,
           refreshed in O(dirty + log N) -- same *contents* via any
           write history -> hit.  A content hit re-stores the digest
           under the new history key, so subsequent unchanged sweeps go
           back to hitting at level 1.

        Both levels obey the same eligibility gates; a genuine miss
        pays the full walk and stores under both keys.
        """
        spans = self.attested_spans()
        key = None
        content_key = None
        if self._state_cache_eligible(context, spans):
            key = self._state_digest_key(spans)
            cached = self._state_cache.lookup(key)
            if cached is not None:
                self._replay_digest_accounting(context, spans)
                return cached
            if self._incremental and fastpath.incremental_enabled():
                content_key = self._content_digest_key(spans)
                if content_key is not None:
                    cached = self._state_cache.lookup(content_key)
                    if cached is not None:
                        self._state_cache.store(key, cached)
                        self._replay_digest_accounting(context, spans)
                        return cached
        digest = SHA1()
        with self.cpu.running(context):
            total = self._absorb_spans(context, spans, digest.update)
            self.cpu.consume_cycles(self.cost_model.sha1_cycles(total))
        if self.config.uninterruptible_attest:
            self.interrupts.run_pending()
        value = digest.digest()
        if key is not None:
            self._state_cache.store(key, value)
        if content_key is not None:
            self._state_cache.store(content_key, value)
        return value

    @property
    def writable_memory_bytes(self) -> int:
        """Total bytes the attestation measurement covers."""
        return sum(r.size for r in self.memory.writable_regions())

    # ------------------------------------------------------------------
    # Time helpers for scenarios
    # ------------------------------------------------------------------

    def idle_seconds(self, seconds: float) -> None:
        """Let simulated wall-clock time pass with the CPU sleeping.

        Advances the cycle counter (hardware clocks keep counting) but
        charges sleep energy rather than active energy for the interval.
        """
        if seconds <= 0:
            return
        cycles = self.cpu.seconds_to_cycles(seconds)
        self.sync_energy()
        self.cpu.consume_cycles(cycles)
        self.sync_energy()
        # The idle cycles themselves were charged as active execution;
        # re-book exactly those as sleep.  Cycles consumed by interrupt
        # handlers that fired during the interval (e.g. SW-clock wraps)
        # stay charged as active work, which is physically what happens.
        self.battery.consumed_mj -= self.energy.active_energy_mj(cycles)
        self.battery.consumed_mj += self.energy.sleep_energy_mj(seconds)
        self.battery.active_cycles -= cycles
        self.battery.sleep_seconds += seconds
