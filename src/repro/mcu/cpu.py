"""CPU model: execution contexts, cycle accounting, interrupt dispatch.

This is a *behavioural* CPU, not an ISA emulator.  What the paper's
mechanisms need from the CPU is exactly two things:

1. **A program counter region** -- the EA-MPU grants or denies a memory
   access depending on *where the current instruction lives* (Section 6.1:
   "the CPU allows a particular memory access based on the value of the
   current program counter").  We model this with
   :class:`ExecutionContext`: a named code address range.  Every bus
   access made while a context is active is attributed to that range.

2. **A cycle counter** -- the DoS argument is about time and energy, so
   simulated code charges cycles (crypto via the Table 1 cost model,
   peripherals via fixed costs).  Hardware counters/timers observe cycle
   progress and raise interrupts.

Interrupt dispatch preempts the current context: the controller pushes
the handler's context, runs the handler, and pops, exactly like a
hardware interrupt frame.  A context may be marked *uninterruptible* to
model SMART-style atomic ROM code (Section 2: "the security-critical
code in ROM of SMART cannot be interrupted during execution"); TrustLite
style interruptible trusted code is the default.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Iterator

from ..errors import ConfigurationError, EntryPointViolation, SimulationError

__all__ = ["ExecutionContext", "CPU"]


class ExecutionContext:
    """A piece of code identified by its (immutable) address range.

    Attributes
    ----------
    name:
        Human-readable identity, e.g. ``"Code_Attest"``, ``"app"``,
        ``"malware"``.
    code_start, code_end:
        Half-open address range the code occupies; this is what EA-MPU
        rules match against.
    uninterruptible:
        When True, pending interrupts are deferred until the context is
        left (SMART-style atomic execution).
    entry_points:
        Addresses at which execution of this context may legitimately
        begin, or ``None`` for unconstrained code.  Section 6.2: "Runtime
        attacks on Code_Attest can be addressed, e.g., by limiting code
        entry points" -- SMART enforces a single hardware entry so a
        code-reuse jump into the middle of the trusted code (past its
        request-validation prologue, straight to the key-handling body)
        traps instead of executing with the trusted code's EA-MPU
        privileges.
    """

    __slots__ = ("name", "code_start", "code_end", "uninterruptible",
                 "entry_points")

    def __init__(self, name: str, code_start: int, code_end: int, *,
                 uninterruptible: bool = False,
                 entry_points: tuple[int, ...] | None = None):
        if code_start > code_end:
            raise ConfigurationError(
                f"context {name!r} has inverted code range")
        if entry_points is not None:
            for address in entry_points:
                if not code_start <= address < code_end:
                    raise ConfigurationError(
                        f"entry point {address:#x} outside {name!r}")
        self.name = name
        self.code_start = code_start
        self.code_end = code_end
        self.uninterruptible = uninterruptible
        self.entry_points = entry_points

    @property
    def code_range(self) -> tuple[int, int]:
        return (self.code_start, self.code_end)

    def __repr__(self) -> str:
        return (f"ExecutionContext({self.name!r}, "
                f"[{self.code_start:#x}, {self.code_end:#x}))")


#: Callback invoked on cycle progress: f(now_cycles, elapsed_cycles).
CycleListener = Callable[[int, int], None]


class CPU:
    """Cycle-accounting CPU with a context stack.

    >>> cpu = CPU(frequency_hz=24_000_000)
    >>> ctx = ExecutionContext("app", 0x1000, 0x2000)
    >>> with cpu.running(ctx):
    ...     cpu.consume_cycles(24_000)
    >>> cpu.elapsed_ms
    1.0
    """

    def __init__(self, frequency_hz: int = 24_000_000, *,
                 enforce_entry_points: bool = True):
        if frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        self.frequency_hz = frequency_hz
        #: Hardware entry-point enforcement (SMART's single-entry
        #: property).  False models cores without it, where a code-reuse
        #: jump into trusted code inherits its EA-MPU privileges.
        self.enforce_entry_points = enforce_entry_points
        self.cycle_count = 0
        self._context_stack: list[ExecutionContext] = []
        self._cycle_listeners: list[CycleListener] = []
        self._dispatching = False
        self._telemetry = None

    def attach_telemetry(self, telemetry, prefix: str = "cpu") -> None:
        """Attribute consumed cycles to the executing context by name.

        Adds a ``<prefix>.cycles{context=...}`` counter update per
        :meth:`consume_cycles` call.  Attaching is opt-in precisely
        because this is the hottest path in the simulator: with no
        telemetry attached the guard below is one attribute test.
        """
        self._telemetry = telemetry if telemetry.enabled else None
        self._telemetry_prefix = prefix

    # -- context management --------------------------------------------------

    @property
    def current_context(self) -> ExecutionContext | None:
        """The context of the code currently executing (top of stack)."""
        return self._context_stack[-1] if self._context_stack else None

    def push_context(self, context: ExecutionContext,
                     entry: int | None = None) -> None:
        """Begin executing ``context``, optionally at a specific address.

        When the context declares entry points and the hardware enforces
        them (:attr:`enforce_entry_points`), beginning execution anywhere
        else raises :class:`EntryPointViolation` -- the trap SMART's
        single-entry hardware produces on a code-reuse jump.  ``entry``
        of ``None`` means "the context's canonical entry" and always
        passes.
        """
        if (entry is not None and self.enforce_entry_points
                and context.entry_points is not None
                and entry not in context.entry_points):
            raise EntryPointViolation(
                f"execution of {context.name!r} may not begin at "
                f"{entry:#x} (entry points: "
                f"{', '.join(hex(a) for a in context.entry_points)})")
        self._context_stack.append(context)

    def pop_context(self) -> ExecutionContext:
        if not self._context_stack:
            raise SimulationError("context stack underflow")
        return self._context_stack.pop()

    @contextmanager
    def running(self, context: ExecutionContext,
                entry: int | None = None) -> Iterator[ExecutionContext]:
        """Execute the body with ``context`` active."""
        self.push_context(context, entry)
        try:
            yield context
        finally:
            popped = self.pop_context()
            if popped is not context:
                raise SimulationError(
                    f"context stack corrupted: popped {popped.name!r}, "
                    f"expected {context.name!r}")

    @property
    def interrupts_deferred(self) -> bool:
        """True when the active context must not be preempted."""
        ctx = self.current_context
        return ctx is not None and ctx.uninterruptible

    # -- time ----------------------------------------------------------------

    def add_cycle_listener(self, listener: CycleListener) -> None:
        """Register a hardware block that observes cycle progress
        (timers, the energy model)."""
        self._cycle_listeners.append(listener)

    def consume_cycles(self, cycles: int) -> None:
        """Charge ``cycles`` of execution time and tick the hardware.

        Cycle listeners (timers) run after the counter advances and may
        dispatch interrupts, which nest naturally through the context
        stack.
        """
        if cycles < 0:
            raise SimulationError("cannot consume negative cycles")
        if cycles == 0:
            return
        self.cycle_count += cycles
        now = self.cycle_count
        if self._telemetry is not None:
            ctx = self._context_stack[-1] if self._context_stack else None
            self._telemetry.count(
                f"{self._telemetry_prefix}.cycles", cycles,
                context=ctx.name if ctx is not None else "idle")
        if self._dispatching:
            # A listener is already running (e.g. an interrupt handler is
            # consuming cycles); let the outer dispatch loop observe the
            # new time instead of recursing unboundedly.
            return
        self._dispatching = True
        try:
            for listener in self._cycle_listeners:
                listener(now, cycles)
        finally:
            self._dispatching = False

    def idle_until(self, target_cycle: int) -> None:
        """Advance time to ``target_cycle`` (no-op when in the past)."""
        if target_cycle > self.cycle_count:
            self.consume_cycles(target_cycle - self.cycle_count)

    @property
    def elapsed_seconds(self) -> float:
        return self.cycle_count / self.frequency_hz

    @property
    def elapsed_ms(self) -> float:
        return self.cycle_count * 1000.0 / self.frequency_hz

    def ms_to_cycles(self, ms: float) -> int:
        return round(ms * self.frequency_hz / 1000.0)

    def seconds_to_cycles(self, seconds: float) -> int:
        return round(seconds * self.frequency_hz)
