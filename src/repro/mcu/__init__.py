"""Behavioural simulator of the low-end prover MCU.

Models everything Section 6 relies on: byte-accurate memory with an
execution-aware MPU (:mod:`repro.mcu.mpu`), interrupt handling with an
in-memory IDT (:mod:`repro.mcu.interrupts`), the three real-time clock
designs (:mod:`repro.mcu.clock`), secure boot, firmware images, and an
energy/battery model for the DoS quantification.  :class:`Device` wires
it all together.
"""

from .clock import SoftwareClock, WideHardwareClock
from .cpu import CPU, ExecutionContext
from .device import (Device, DeviceConfig, FLASH_BASE, MMIO_BASE, RAM_BASE,
                     ROM_BASE)
from .firmware import FirmwareImage, FirmwareModule
from .interrupts import InterruptController, MaskRegister
from .memory import MemoryBus, MemoryMap, MemoryRegion, MemoryType
from .mpu import ALL_CODE, ExecutionAwareMPU, MPURule, NO_CODE
from .power import Battery, DutyCycleTask, EnergyModel
from .profiles import (ALL_PROFILES, BASELINE, EXT_HARDENED, ProtectionProfile,
                       ROAM_HARDENED, UNPROTECTED)
from .scheduler import (CooperativeScheduler, JobRecord, PeriodicTask,
                        ScheduleReport)
from .statecache import StateDigestCache
from .timer import HardwareCounter

__all__ = [
    "ALL_CODE", "ALL_PROFILES", "BASELINE", "Battery", "CPU",
    "CooperativeScheduler", "Device", "DeviceConfig", "DutyCycleTask",
    "EXT_HARDENED", "EnergyModel", "ExecutionAwareMPU", "ExecutionContext",
    "FLASH_BASE", "FirmwareImage", "FirmwareModule", "HardwareCounter",
    "InterruptController", "JobRecord", "MMIO_BASE", "MPURule",
    "MaskRegister", "MemoryBus", "MemoryMap", "MemoryRegion", "MemoryType",
    "NO_CODE", "PeriodicTask", "ProtectionProfile", "RAM_BASE",
    "ROAM_HARDENED", "ROM_BASE", "ScheduleReport", "SoftwareClock",
    "StateDigestCache", "UNPROTECTED", "WideHardwareClock",
]
