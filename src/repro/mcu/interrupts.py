"""Interrupt subsystem: IDT in memory, controller, mask register.

The SW-clock design of Figure 1b hinges on interrupt integrity: the
short hardware counter ``Clock_LSB`` raises an interrupt at wrap-around
(①), the *immutable interrupt handling engine* dispatches it to
``Code_Clock`` (②), which increments ``Clock_MSB`` in protected RAM (③).
Section 6.2 lists the attack surface this opens:

* the adversary may rewrite the **interrupt descriptor table** so the
  wrap-around vector no longer points at ``Code_Clock`` -- the IDT must
  therefore live in memory that an EA-MPU rule makes read-only;
* the adversary may **mask/disable the timer interrupt** -- the mask
  register must be protected too;
* the **location** of the IDT (the IDT base register) must be immutable.

To make those attacks (and their mitigations) executable in the
simulator, the IDT is genuinely stored in device RAM: each vector is a
4-byte little-endian handler address, and hardware dispatch performs a
*raw* (MPU-bypassing) read of the vector, exactly like a hardware vector
fetch.  Handlers are firmware entry points registered at code addresses;
if malware redirects a vector to its own code, its handler runs instead.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError, InterruptError
from .cpu import CPU, ExecutionContext
from .memory import MemoryBus

__all__ = ["InterruptController", "MaskRegister", "VECTOR_SIZE"]

VECTOR_SIZE = 4  # bytes per IDT entry

#: An interrupt handler: callable taking the IRQ number.
Handler = Callable[[int], None]


class MaskRegister:
    """Memory-mapped interrupt enable/mask register (one bit per IRQ).

    Exposed as an MMIO peripheral so that an EA-MPU rule can protect it
    ("disabling the timer interrupt must also be prevented", Section 6.2).
    Bit i set = IRQ i enabled.
    """

    def __init__(self, num_irqs: int):
        self.num_irqs = num_irqs
        self._bits = (1 << num_irqs) - 1  # all enabled at reset

    @property
    def size(self) -> int:
        """Register width in bytes (at least 4)."""
        return max(4, (self.num_irqs + 7) // 8)

    def is_enabled(self, irq: int) -> bool:
        return bool(self._bits >> irq & 1)

    def mmio_read(self, offset: int, context: str | None) -> int:
        return self._bits >> (8 * offset) & 0xFF

    def mmio_write(self, offset: int, value: int, context: str | None) -> None:
        shift = 8 * offset
        self._bits = (self._bits & ~(0xFF << shift)) | ((value & 0xFF) << shift)

    def disable(self, irq: int) -> None:
        """Convenience used by simulation harnesses (not the MPU path)."""
        self._bits &= ~(1 << irq)

    def enable(self, irq: int) -> None:
        self._bits |= 1 << irq


class InterruptController:
    """Vector-table based interrupt dispatch with nesting and deferral.

    Parameters
    ----------
    cpu:
        The CPU whose context stack dispatch nests into.
    bus:
        Memory bus used for *raw* vector fetches (via the underlying
        memory map, bypassing the MPU like real vector-fetch hardware).
    idt_base:
        Absolute address of the interrupt descriptor table.
    num_irqs:
        Number of interrupt lines.
    dispatch_cost_cycles:
        Cycles charged per dispatch (context save/restore).
    """

    def __init__(self, cpu: CPU, bus: MemoryBus, idt_base: int,
                 num_irqs: int = 8, dispatch_cost_cycles: int = 24,
                 coalesce_pending: bool = True):
        if num_irqs < 1:
            raise ConfigurationError("need at least one IRQ line")
        self.cpu = cpu
        self.bus = bus
        self.idt_base = idt_base
        self.num_irqs = num_irqs
        self.dispatch_cost_cycles = dispatch_cost_cycles
        #: Real interrupt controllers latch ONE pending bit per line, so
        #: repeated events on a line during a deferral window collapse into
        #: a single dispatch.  This is what makes SMART-style atomic
        #: (uninterruptible) attestation silently lose SW-clock wraps --
        #: see the SMART-vs-TrustLite ablation.  Set False for an
        #: idealised queueing controller.
        self.coalesce_pending = coalesce_pending
        self.mask = MaskRegister(num_irqs)
        # Code present in the device: entry address -> (context, handler).
        self._entry_points: dict[int, tuple[ExecutionContext, Handler]] = {}
        self._pending: list[int] = []
        self.coalesced_log: list[tuple[int, int]] = []
        self.dispatch_log: list[tuple[int, int, str | None]] = []
        self.dropped_log: list[tuple[int, int, str]] = []

    @property
    def idt_size(self) -> int:
        return self.num_irqs * VECTOR_SIZE

    # -- firmware registration ---------------------------------------------

    def register_entry_point(self, address: int, context: ExecutionContext,
                             handler: Handler) -> None:
        """Declare that executable code exists at ``address``.

        Any code (trusted firmware *or* injected malware) may register
        entry points inside its own code range; the vector table decides
        which one an IRQ reaches.
        """
        if not context.code_start <= address < context.code_end:
            raise ConfigurationError(
                f"entry point {address:#x} lies outside the code range of "
                f"context {context.name!r}")
        self._entry_points[address] = (context, handler)

    def set_vector_raw(self, irq: int, handler_address: int) -> None:
        """Write an IDT entry bypassing protection (boot-time setup)."""
        self._check_irq(irq)
        region = self.bus.memory_map.find(self.idt_base)
        if region is None:
            raise ConfigurationError("IDT base address is unmapped")
        offset = self.idt_base - region.start + irq * VECTOR_SIZE
        region.load(offset, handler_address.to_bytes(VECTOR_SIZE, "little"))

    def get_vector(self, irq: int) -> int:
        """Hardware vector fetch (raw read, like real dispatch)."""
        self._check_irq(irq)
        region = self.bus.memory_map.find(self.idt_base)
        if region is None:
            raise ConfigurationError("IDT base address is unmapped")
        offset = self.idt_base - region.start + irq * VECTOR_SIZE
        return int.from_bytes(region.raw_read(offset, VECTOR_SIZE), "little")

    def _check_irq(self, irq: int) -> None:
        if not 0 <= irq < self.num_irqs:
            raise InterruptError(f"IRQ {irq} out of range 0..{self.num_irqs - 1}")

    # -- dispatch -------------------------------------------------------------

    def raise_irq(self, irq: int) -> bool:
        """Signal IRQ ``irq``; dispatch now or defer.

        Returns True when a handler ran (possibly later via
        :meth:`run_pending` if the CPU was in an uninterruptible context).
        Masked IRQs are dropped and logged.
        """
        self._check_irq(irq)
        if not self.mask.is_enabled(irq):
            self.dropped_log.append((self.cpu.cycle_count, irq, "masked"))
            return False
        if self.cpu.interrupts_deferred:
            if self.coalesce_pending and irq in self._pending:
                # The pending bit is already set: the event is absorbed.
                self.coalesced_log.append((self.cpu.cycle_count, irq))
                return False
            self._pending.append(irq)
            return True
        self._dispatch(irq)
        return True

    def run_pending(self) -> int:
        """Dispatch interrupts deferred during uninterruptible execution.

        Called by the CPU harness when an uninterruptible context exits.
        Returns the number of handlers run.
        """
        count = 0
        while self._pending and not self.cpu.interrupts_deferred:
            self._dispatch(self._pending.pop(0))
            count += 1
        return count

    @property
    def pending(self) -> list[int]:
        return list(self._pending)

    def _dispatch(self, irq: int) -> None:
        vector = self.get_vector(irq)
        registered = self._entry_points.get(vector)
        if registered is None:
            # Vector points at an address where no code entry exists: the
            # interrupt is effectively lost (a crash/ignored trap on real
            # hardware).  This is precisely the state the IDT-rewrite
            # attack leaves the clock in, so log it rather than raise.
            self.dropped_log.append((self.cpu.cycle_count, irq, "bad-vector"))
            return
        context, handler = registered
        self.dispatch_log.append((self.cpu.cycle_count, irq, context.name))
        self.cpu.consume_cycles(self.dispatch_cost_cycles)
        with self.cpu.running(context):
            handler(irq)
