"""Real-time clock designs: wide hardware register vs. Figure 1b SW-clock.

Timestamps are the only freshness feature that defeats delayed-request
attacks (Table 2), but they demand "a reliable real-time clock on the
prover -- a feature not previously identified as necessary for
attestation" (Section 4.2).  Section 6 prototypes two designs:

:class:`WideHardwareClock` (Figure 1a)
    A dedicated read-only counter register wide enough never to wrap in
    the device lifetime: 64 bits @ 24 MHz -> 24 372.6 years, or 32 bits
    with a /2^20 divider -> ~6 years at ~44 ms resolution.  Hardware cost
    is the register plus increment logic (Table 3).

:class:`SoftwareClock` (Figure 1b)
    Reuses the short counter common on low-end MCUs (MSP430-style):
    ``Clock_LSB`` interrupts at wrap-around ①, the interrupt engine runs
    ``Code_Clock`` ②, which increments ``Clock_MSB`` in RAM ③ so that
    ``Clock_MSB . Clock_LSB`` forms the full time value.  No new clock
    hardware -- but now the IDT, the interrupt mask and the ``Clock_MSB``
    word all need EA-MPU protection (three rules, Table 3's "SW-clock"
    column).

Both expose ``read_ticks`` / ``read_seconds`` for trusted code and are
attackable exactly where the paper says: an unprotected ``Clock_MSB`` can
be rewritten, an unprotected IDT can be redirected, an unprotected mask
register can silence the wrap interrupt.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from .cpu import CPU, ExecutionContext
from .interrupts import InterruptController
from .memory import MemoryBus
from .timer import HardwareCounter

__all__ = ["WideHardwareClock", "SoftwareClock"]


class WideHardwareClock:
    """Figure 1a clock: one wide read-only hardware counter.

    ``read_ticks`` takes the executing context so reads flow through the
    MMIO path when wired into a device; standalone use passes ``None``.
    """

    kind = "hardware"

    def __init__(self, cpu: CPU, *, width_bits: int = 64, divider: int = 1,
                 software_writable: bool = False):
        self.cpu = cpu
        self.counter = HardwareCounter(
            cpu, width_bits=width_bits, divider=divider,
            software_writable=software_writable)
        self.width_bits = width_bits
        self.divider = divider

    def read_ticks(self) -> int:
        """Current clock value in ticks."""
        return self.counter.value

    def read_seconds(self) -> float:
        return self.read_ticks() * self.counter.resolution_seconds

    @property
    def resolution_seconds(self) -> float:
        return self.counter.resolution_seconds

    @property
    def wraparound_seconds(self) -> float:
        return self.counter.wraparound_seconds

    @property
    def wraparound_years(self) -> float:
        return self.counter.wraparound_years

    def ticks_for_seconds(self, seconds: float) -> int:
        """Convert wall-clock seconds to clock ticks."""
        return round(seconds / self.counter.resolution_seconds)


class SoftwareClock:
    """Figure 1b clock: ``Clock_LSB`` hardware counter + ``Clock_MSB`` RAM word.

    Parameters
    ----------
    cpu, bus, interrupts:
        The host device's CPU, memory bus, and interrupt controller.
    msb_address:
        RAM address of the 8-byte ``Clock_MSB`` word.  When the device is
        roam-hardened, an EA-MPU rule makes this writable only by
        ``Code_Clock``.
    code_clock_context:
        The trusted ``Code_Clock`` execution context; the wrap handler
        runs (and writes ``Clock_MSB``) under it.
    irq:
        Interrupt line of the wrap-around event.
    lsb_width_bits, divider:
        Geometry of the short hardware counter.
    handler_cycles:
        Execution cost of the wrap handler (a load, an add, a store).
    """

    kind = "software"

    def __init__(self, cpu: CPU, bus: MemoryBus,
                 interrupts: InterruptController, *,
                 msb_address: int, code_clock_context: ExecutionContext,
                 handler_address: int, irq: int = 0,
                 lsb_width_bits: int = 16, divider: int = 1,
                 handler_cycles: int = 12):
        if lsb_width_bits >= 64:
            raise ConfigurationError("Clock_LSB must be a short counter")
        self.cpu = cpu
        self.bus = bus
        self.interrupts = interrupts
        self.msb_address = msb_address
        self.context = code_clock_context
        self.irq = irq
        self.lsb_width_bits = lsb_width_bits
        self.divider = divider
        self.handler_cycles = handler_cycles
        self.counter = HardwareCounter(
            cpu, width_bits=lsb_width_bits, divider=divider,
            software_writable=False,
            on_wrap=self._on_wrap)
        interrupts.register_entry_point(handler_address, code_clock_context,
                                        self._handle_wrap_irq)
        interrupts.set_vector_raw(irq, handler_address)
        self.wraps_signalled = 0
        self.wraps_serviced = 0
        #: Optional observer called after each serviced wrap (telemetry
        #: wiring; see :meth:`repro.mcu.device.Device.attach_telemetry`).
        self.on_wrap_serviced = None

    # -- hardware side ---------------------------------------------------------

    def _on_wrap(self, wraps: int) -> None:
        """Clock_LSB wrapped: raise the interrupt (Figure 1b ①)."""
        self.wraps_signalled += wraps
        for _ in range(wraps):
            self.interrupts.raise_irq(self.irq)

    def _handle_wrap_irq(self, irq: int) -> None:
        """``Code_Clock``: increment ``Clock_MSB`` (Figure 1b ②③).

        Runs under the ``Code_Clock`` context, so the ``Clock_MSB`` store
        is subject to EA-MPU arbitration like any other software write.
        """
        self.cpu.consume_cycles(self.handler_cycles)
        current = self.bus.read_u64(self.context, self.msb_address)
        self.bus.write_u64(self.context, self.msb_address, current + 1)
        self.wraps_serviced += 1
        if self.on_wrap_serviced is not None:
            self.on_wrap_serviced(self.wraps_serviced)

    # -- software read side ------------------------------------------------------

    def read_ticks(self, context: ExecutionContext | None = None) -> int:
        """Compose ``Clock_MSB << lsb_width | Clock_LSB``.

        Reads ``Clock_MSB`` through the bus under ``context`` (default:
        the trusted ``Code_Clock`` context), so a protected configuration
        still lets any code *read* the time while only ``Code_Clock``
        may write it.
        """
        ctx = context if context is not None else self.context
        msb = self.bus.read_u64(ctx, self.msb_address)
        lsb = self.counter.value
        # Interrupts dispatch synchronously in the simulator, so by the
        # time software reads the clock every wrap has either incremented
        # Clock_MSB or been dropped by an attack -- in which case the clock
        # genuinely reads behind, which is the behaviour under test.
        return (msb << self.lsb_width_bits) | lsb

    def read_seconds(self, context: ExecutionContext | None = None) -> float:
        return self.read_ticks(context) * self.resolution_seconds

    @property
    def resolution_seconds(self) -> float:
        return self.divider / self.cpu.frequency_hz

    @property
    def wraparound_seconds(self) -> float:
        """Effective wrap time of the composed 64+LSB-bit value (~never)."""
        return (1 << (64 + self.lsb_width_bits)) * self.divider / self.cpu.frequency_hz

    def ticks_for_seconds(self, seconds: float) -> int:
        return round(seconds / self.resolution_seconds)

    @property
    def lsb_wrap_interval_seconds(self) -> float:
        """How often the wrap interrupt fires (the SW-clock's runtime cost)."""
        return (1 << self.lsb_width_bits) * self.divider / self.cpu.frequency_hz

    def stopped(self) -> bool:
        """Heuristic the analysis uses: the clock is 'stopped' when wrap
        interrupts are being dropped (masked or IDT-redirected), i.e. the
        MSB no longer advances."""
        recent = [entry for entry in self.interrupts.dropped_log
                  if entry[1] == self.irq]
        return bool(recent)
