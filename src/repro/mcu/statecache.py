"""Content-addressed cache of attested-state digests.

Fleet spin-up and fleet sweeps repeat the same host work N times:
every member's :meth:`~repro.mcu.device.Device.digest_writable_memory`
hashes megabytes of writable memory whose contents are identical across
members (same :class:`~repro.mcu.device.DeviceConfig`, same protection
profile, same firmware image) and unchanged between honest protocol
rounds (the attested spans exclude the volatile freshness words).  The
simulated prover still pays full Table 1 cycle costs each time -- that
is the paper's point -- but the *host* does not have to recompute a hash
it has already computed over byte-identical input.

:class:`StateDigestCache` memoises the digest under a content-addressed
key built from the attested spans and each backing region's write-chain
:attr:`~repro.mcu.memory.MemoryRegion.content_fingerprint`.  Equal keys
imply byte-identical attested contents, so a hit may return the stored
digest without re-reading memory.  Any mutation of attested memory --
including a compromise planted via ``region.load`` -- advances the
fingerprint and forces a recompute, so detection behaviour is unchanged.

Equivalence contract (mirrors :mod:`repro.fastpath`): a cache hit must
be observationally identical to a recompute.  The device therefore

* consults the cache only when the zero-copy bulk walk would be taken
  anyway (fast path enabled, no bus tracers, every span
  :meth:`~repro.mcu.memory.MemoryBus.can_bulk_read`-eligible, so MPU
  arbitration provably passes and no tracer misses an access), and
* replays the exact simulated accounting of a recompute on every hit:
  the same execution context, the same ``sha1_cycles`` charge, the same
  deferred-interrupt servicing.

Sharing one cache across a fleet turns spin-up from O(N * measure) into
O(unique_configs * measure + N * cheap) and removes the per-attestation
hash from sweeps; ``scripts/fleet_smoke.py`` gates both the hit-count
arithmetic and the digest equivalence.
"""

from __future__ import annotations

from ..errors import ConfigurationError

__all__ = ["StateDigestCache"]


class StateDigestCache:
    """Bounded FIFO cache mapping state keys to 20-byte digests.

    Keys are the tuples built by ``Device._state_digest_key`` (one
    ``(start, end, region_fingerprint)`` triple per attested span) and,
    when incremental measurement is enabled, the content-addressed
    ``("content", ...)`` keys built from digest-tree roots.
    Insertion-ordered eviction keeps the structure deterministic; the
    ``hits``/``misses``/``evictions`` counters make cache effectiveness
    assertable in tests and smoke gates.

    ``max_entries=0`` selects *unbounded* mode (no eviction) -- the
    right choice for long fleet runs where the working set is the fleet
    size and eviction would silently reintroduce full walks.  Negative
    bounds are rejected.

    Counters can be exported to a telemetry registry with
    :meth:`publish`; publication is explicit and on-demand, never a side
    effect of lookups, so cached and uncached runs produce byte-identical
    registry dumps (the PR 5 equivalence gate).
    """

    __slots__ = ("max_entries", "hits", "misses", "evictions", "_entries")

    def __init__(self, max_entries: int = 256):
        if max_entries < 0:
            raise ConfigurationError(
                "state digest cache bound must be >= 0 (0 = unbounded)")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._entries: dict[tuple, bytes] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: tuple) -> bytes | None:
        """Return the cached digest for ``key``, counting hit or miss."""
        digest = self._entries.get(key)
        if digest is None:
            self.misses += 1
            return None
        self.hits += 1
        return digest

    def store(self, key: tuple, digest: bytes) -> None:
        """Insert ``digest`` under ``key``, evicting the oldest entry
        when full (never evicts in unbounded mode)."""
        if (self.max_entries
                and key not in self._entries
                and len(self._entries) >= self.max_entries):
            oldest = next(iter(self._entries))
            del self._entries[oldest]
            self.evictions += 1
        self._entries[key] = digest

    def clear(self) -> None:
        """Drop all entries *and* the hit/miss counters.

        A clear starts a new measurement epoch; keeping the old counters
        would skew :meth:`stats` and break any exact hit/miss arithmetic
        gate that spans the clear.  Use :meth:`reset_stats` to zero the
        counters without touching the entries.
        """
        self._entries.clear()
        self.reset_stats()

    def reset_stats(self) -> None:
        """Zero the hit/miss/eviction counters, keeping cached entries."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def stats(self) -> dict:
        """JSON-ready effectiveness counters."""
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions,
                "entries": len(self._entries),
                "max_entries": self.max_entries}

    def publish(self, telemetry) -> None:
        """Export the counters as gauges on a telemetry registry.

        Sets ``statecache.hits`` / ``statecache.misses`` /
        ``statecache.evictions`` (names registered in
        :mod:`repro.obs.schema`).  Explicitly *not* called from
        :meth:`lookup`/:meth:`store`: publication during sweeps would
        make registry dumps differ between cached and uncached runs,
        breaking the equivalence gate.  Call it when a report wants a
        cache snapshot.
        """
        telemetry.set_gauge("statecache.hits", self.hits)
        telemetry.set_gauge("statecache.misses", self.misses)
        telemetry.set_gauge("statecache.evictions", self.evictions)
