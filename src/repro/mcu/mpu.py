"""Execution-aware memory protection unit (EA-MPU), TrustLite-style.

Section 6.1: *"The main idea of EA-MAC is to limit read and/or write
memory access depending on currently executing code."*  A rule associates
a **code range** (who is executing, identified by the program counter)
with a **data range** and the access kinds it grants.  Semantics follow
TrustLite/SMART:

* an address covered by *no* rule is ordinary memory -- any code may
  access it;
* an address covered by *at least one* rule is protected -- an access is
  granted only if some covering rule matches the executing code range and
  allows the access type.

The rule table and control register are a genuine memory-mapped register
file (:class:`MPURegisterFile` implements the bus peripheral protocol).
That makes the paper's lockdown idiom work literally: secure boot
programs the rules, then adds a final rule that covers the MPU's own
configuration registers and grants write access to nobody.  From then on
every reconfiguration attempt is itself an EA-MPU violation
(Section 6.2, Figure 1a).  A SMART-style *hardwired* flag per rule is
also supported: hardwired rules reject writes even before lockdown.

Register map (little-endian, offsets relative to the MMIO region base)::

    0x00  CTRL   u32   bit0 = enable, bit1 = sticky hardware lock
    0x10 + 20*i  rule i (RULE_STRIDE = 20 bytes):
        +0   code_start  u32
        +4   code_end    u32   (exclusive)
        +8   data_start  u32
        +12  data_end    u32   (exclusive)
        +16  flags       u32   bit0=read, bit1=write, bit2=valid,
                               bit3=hardwired
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError, MemoryAccessViolation, MPULockedError

__all__ = ["MPURule", "ExecutionAwareMPU", "CTRL_OFFSET", "RULE_BASE_OFFSET",
           "RULE_STRIDE", "FLAG_READ", "FLAG_WRITE", "FLAG_VALID",
           "FLAG_HARDWIRED", "CTRL_ENABLE", "CTRL_LOCK", "NO_CODE", "ALL_CODE",
           "merge_intervals", "subtract_intervals", "intersect_intervals"]

CTRL_OFFSET = 0x00
RULE_BASE_OFFSET = 0x10
RULE_STRIDE = 20

FLAG_READ = 1 << 0
FLAG_WRITE = 1 << 1
FLAG_VALID = 1 << 2
FLAG_HARDWIRED = 1 << 3

CTRL_ENABLE = 1 << 0
CTRL_LOCK = 1 << 1

#: The empty code range: matches no executing code.  A rule with this
#: selector makes its data range inaccessible to all software.
NO_CODE = (0, 0)

#: The full code range: matches any executing code.  A rule with this
#: selector and ``read=True, write=False`` is the paper's lockdown idiom --
#: everyone may read the protected range, nobody may write it (used for
#: the EA-MPU's own config registers and for the IDT, Section 6.2).
ALL_CODE = (0, 0xFFFFFFFF)


@dataclass(frozen=True)
class MPURule:
    """Decoded view of one EA-MPU rule.

    ``code_start == code_end`` encodes the empty code range: the rule
    matches *no* executing code, i.e. the protected data is inaccessible
    to all software (hardware/debug accesses bypass the MPU).
    """

    index: int
    code_start: int
    code_end: int
    data_start: int
    data_end: int
    allow_read: bool
    allow_write: bool
    hardwired: bool = False

    def code_matches(self, ctx_start: int, ctx_end: int) -> bool:
        """Whether code executing in [ctx_start, ctx_end) is selected.

        Containment semantics: the executing code range must lie fully
        inside the rule's code range.
        """
        if self.code_start == self.code_end:
            return False
        return self.code_start <= ctx_start and ctx_end <= self.code_end

    def covers(self, address: int) -> bool:
        return self.data_start <= address < self.data_end

    def data_overlap(self, start: int, end: int) -> tuple[int, int] | None:
        """Intersection of the rule's data range with [start, end), if any."""
        lo = max(self.data_start, start)
        hi = min(self.data_end, end)
        return (lo, hi) if lo < hi else None


class ExecutionAwareMPU:
    """The EA-MPU: rule storage, the access check, and the register file.

    The canonical configuration path is through the memory-mapped register
    file (so protection of the registers themselves works); the
    :meth:`program_rule` / :meth:`set_enabled` helpers are conveniences
    that encode through the same path and therefore honour lock state.

    Parameters
    ----------
    max_rules:
        Number of rule slots (#r in Table 3 -- the hardware cost of the
        MPU scales as ``278 + 116 * #r`` registers).
    """

    def __init__(self, max_rules: int = 8):
        if max_rules < 1:
            raise ConfigurationError("EA-MPU needs at least one rule slot")
        self.max_rules = max_rules
        self._registers = bytearray(RULE_BASE_OFFSET + RULE_STRIDE * max_rules)
        self._decoded: list[MPURule] | None = []  # cache; None = dirty
        self._violations: list[MemoryAccessViolation] = []
        #: Optional observer called with each :class:`MemoryAccessViolation`
        #: before it is raised (telemetry wiring; see
        #: :meth:`repro.mcu.device.Device.attach_telemetry`).
        self.on_violation = None

    # ------------------------------------------------------------------
    # Register file plumbing
    # ------------------------------------------------------------------

    @property
    def register_file_size(self) -> int:
        """Size in bytes of the MMIO register file."""
        return len(self._registers)

    def _read_u32(self, offset: int) -> int:
        return int.from_bytes(self._registers[offset:offset + 4], "little")

    def _store_u32(self, offset: int, value: int) -> None:
        self._registers[offset:offset + 4] = (value & 0xFFFFFFFF).to_bytes(4, "little")
        self._decoded = None

    @property
    def enabled(self) -> bool:
        return bool(self._read_u32(CTRL_OFFSET) & CTRL_ENABLE)

    @property
    def locked(self) -> bool:
        """Sticky hardware lock bit (SMART-style static lockdown)."""
        return bool(self._read_u32(CTRL_OFFSET) & CTRL_LOCK)

    def _hardwired_span(self, offset: int) -> bool:
        """Whether the byte at ``offset`` belongs to a hardwired rule."""
        if offset < RULE_BASE_OFFSET:
            return False
        index = (offset - RULE_BASE_OFFSET) // RULE_STRIDE
        if index >= self.max_rules:
            return False
        flags = self._read_u32(RULE_BASE_OFFSET + RULE_STRIDE * index + 16)
        return bool(flags & FLAG_VALID and flags & FLAG_HARDWIRED)

    # -- MmioPeripheral protocol -----------------------------------------

    def mmio_read(self, offset: int, context: str | None) -> int:
        """Byte read of the register file (always permitted)."""
        if not 0 <= offset < len(self._registers):
            raise MemoryAccessViolation(
                f"MPU register read at invalid offset {offset:#x}",
                address=offset, access="read", context=context)
        return self._registers[offset]

    def mmio_write(self, offset: int, value: int, context: str | None) -> None:
        """Byte write of the register file.

        Denied when the sticky lock is set or the byte belongs to a
        hardwired rule.  The CTRL lock bit is write-1-sticky: once set it
        cannot be cleared by any software write.
        """
        if not 0 <= offset < len(self._registers):
            raise MemoryAccessViolation(
                f"MPU register write at invalid offset {offset:#x}",
                address=offset, access="write", context=context)
        if self.locked:
            raise MPULockedError(
                f"write to EA-MPU register {offset:#x} denied: MPU locked "
                f"(context {context!r})")
        if self._hardwired_span(offset):
            raise MPULockedError(
                f"write to hardwired EA-MPU rule register {offset:#x} denied "
                f"(context {context!r})")
        if offset == CTRL_OFFSET:
            # Lock bit is sticky within the byte holding CTRL bits 0-7.
            value |= self._registers[offset] & CTRL_LOCK
        self._registers[offset] = value & 0xFF
        self._decoded = None

    # ------------------------------------------------------------------
    # Programming helpers (encode through the register file)
    # ------------------------------------------------------------------

    def program_rule(self, index: int, *, code: tuple[int, int],
                     data: tuple[int, int], read: bool, write: bool,
                     hardwired: bool = False,
                     context: str | None = None) -> MPURule:
        """Program rule slot ``index``.

        ``code`` / ``data`` are (start, end) half-open address ranges;
        use :data:`NO_CODE` to deny all software and :data:`ALL_CODE` with
        ``read=True, write=False`` for the read-only lockdown idiom.
        Honours lock state (raises :class:`MPULockedError` when locked).
        """
        if not 0 <= index < self.max_rules:
            raise ConfigurationError(
                f"rule index {index} out of range (max_rules={self.max_rules})")
        code_start, code_end = code
        data_start, data_end = data
        if code_start > code_end or data_start > data_end:
            raise ConfigurationError("rule ranges must satisfy start <= end")
        base = RULE_BASE_OFFSET + RULE_STRIDE * index
        flags = FLAG_VALID
        if read:
            flags |= FLAG_READ
        if write:
            flags |= FLAG_WRITE
        if hardwired:
            flags |= FLAG_HARDWIRED
        payload = (code_start.to_bytes(4, "little")
                   + code_end.to_bytes(4, "little")
                   + data_start.to_bytes(4, "little")
                   + data_end.to_bytes(4, "little")
                   + flags.to_bytes(4, "little"))
        # Write the flags' low byte (which carries VALID and HARDWIRED)
        # last, so a hardwired rule only becomes immutable once fully
        # programmed.
        order = list(range(len(payload)))
        order.remove(16)
        order.append(16)
        for i in order:
            self.mmio_write(base + i, payload[i], context)
        for rule in self.rules():
            if rule.index == index:
                return rule
        raise ConfigurationError(f"rule {index} failed to program")

    def clear_rule(self, index: int, context: str | None = None) -> None:
        """Invalidate rule slot ``index`` (honours lock/hardwired state)."""
        base = RULE_BASE_OFFSET + RULE_STRIDE * index + 16
        for i in range(4):
            self.mmio_write(base + i, 0, context)

    def set_enabled(self, enabled: bool, context: str | None = None) -> None:
        ctrl = self._read_u32(CTRL_OFFSET)
        ctrl = (ctrl | CTRL_ENABLE) if enabled else (ctrl & ~CTRL_ENABLE)
        self.mmio_write(CTRL_OFFSET, ctrl & 0xFF, context)

    def lock(self, context: str | None = None) -> None:
        """Set the sticky hardware lock bit (irreversible)."""
        ctrl = self._read_u32(CTRL_OFFSET) | CTRL_LOCK
        self.mmio_write(CTRL_OFFSET, ctrl & 0xFF, context)

    # ------------------------------------------------------------------
    # Rule decoding and the access check
    # ------------------------------------------------------------------

    def rules(self) -> list[MPURule]:
        """Decode all valid rules from the register file (cached)."""
        if self._decoded is None:
            decoded = []
            for index in range(self.max_rules):
                base = RULE_BASE_OFFSET + RULE_STRIDE * index
                flags = self._read_u32(base + 16)
                if not flags & FLAG_VALID:
                    continue
                decoded.append(MPURule(
                    index=index,
                    code_start=self._read_u32(base),
                    code_end=self._read_u32(base + 4),
                    data_start=self._read_u32(base + 8),
                    data_end=self._read_u32(base + 12),
                    allow_read=bool(flags & FLAG_READ),
                    allow_write=bool(flags & FLAG_WRITE),
                    hardwired=bool(flags & FLAG_HARDWIRED),
                ))
            self._decoded = decoded
        return list(self._decoded)

    @property
    def active_rule_count(self) -> int:
        """Number of valid rules (the #r of Table 3)."""
        return len(self.rules())

    @property
    def violations(self) -> list[MemoryAccessViolation]:
        """All violations this MPU has raised (diagnostic log)."""
        return list(self._violations)

    def span_unruled(self, start: int, end: int) -> bool:
        """Whether no valid rule's data range overlaps ``[start, end)``.

        An unruled span is ordinary memory: any context may access it and
        the per-byte interval sweep of :meth:`check_access` degenerates to
        a no-op.  The bulk read path
        (:meth:`repro.mcu.memory.MemoryBus.read_view`) uses this as its
        pre-check -- whenever *any* rule splits the span, bulk access
        falls back to the per-chunk checked path so denial behaviour and
        violation reporting stay byte-identical with the naive walk.
        """
        if not self.enabled:
            return True
        for rule in self.rules():
            if rule.data_overlap(start, end) is not None:
                return False
        return True

    def check_access(self, context, access: str, address: int,
                     length: int) -> None:
        """Arbitrate a software access; raise on denial.

        ``context`` is ``None`` for hardware-internal accesses (which
        bypass the MPU) or an object with ``name``, ``code_start`` and
        ``code_end`` attributes (an execution context).
        """
        if context is None or not self.enabled:
            return
        ctx_start = context.code_start
        ctx_end = context.code_end
        start, end = address, address + length
        rules = self.rules()
        # Interval sweep: every covered byte must be granted by some
        # matching rule.  Collect covered and granted sub-intervals.
        covered: list[tuple[int, int]] = []
        granted: list[tuple[int, int]] = []
        for rule in rules:
            overlap = rule.data_overlap(start, end)
            if overlap is None:
                continue
            covered.append(overlap)
            allows = rule.allow_read if access == "read" else rule.allow_write
            if allows and rule.code_matches(ctx_start, ctx_end):
                granted.append(overlap)
        if not covered:
            return
        denied = subtract_intervals(merge_intervals(covered),
                                    merge_intervals(granted))
        if denied:
            lo, hi = denied[0]
            violation = MemoryAccessViolation(
                f"EA-MPU denied {access} of [{lo:#x}, {hi:#x}) to context "
                f"{context.name!r}", address=lo, access=access,
                context=context.name)
            self._violations.append(violation)
            if self.on_violation is not None:
                self.on_violation(violation)
            raise violation


def merge_intervals(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge overlapping half-open intervals into a sorted disjoint list.

    Empty intervals (``lo >= hi``) cover nothing and are dropped.
    """
    ordered = sorted(i for i in intervals if i[0] < i[1])
    if not ordered:
        return []
    merged = [ordered[0]]
    for lo, hi in ordered[1:]:
        last_lo, last_hi = merged[-1]
        if lo <= last_hi:
            merged[-1] = (last_lo, max(last_hi, hi))
        else:
            merged.append((lo, hi))
    return merged


def subtract_intervals(minuend: list[tuple[int, int]],
                       subtrahend: list[tuple[int, int]]
                       ) -> list[tuple[int, int]]:
    """Subtract one disjoint sorted interval list from another."""
    result = []
    for lo, hi in minuend:
        cursor = lo
        for s_lo, s_hi in subtrahend:
            if s_hi <= cursor or s_lo >= hi:
                continue
            if s_lo > cursor:
                result.append((cursor, s_lo))
            cursor = max(cursor, s_hi)
            if cursor >= hi:
                break
        if cursor < hi:
            result.append((cursor, hi))
    return result


def intersect_intervals(a: list[tuple[int, int]],
                        b: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Intersection of two disjoint sorted half-open interval lists."""
    result = []
    for lo, hi in a:
        for o_lo, o_hi in b:
            cut_lo, cut_hi = max(lo, o_lo), min(hi, o_hi)
            if cut_lo < cut_hi:
                result.append((cut_lo, cut_hi))
    return merge_intervals(result)


#: Backwards-compatible aliases for the pre-`repro.analysis` private names.
_merge_intervals = merge_intervals
_subtract_intervals = subtract_intervals
