"""Non-preemptive task execution on the prover (Section 3.1's real-time cost).

Low-end provers run their primary functions as a simple cyclic executive:
jobs are released periodically and run to completion, and attestation --
which on these devices "runs without interruption" -- simply occupies the
CPU for its whole duration.  :class:`CooperativeScheduler` simulates that
executive over a timeline of periodic tasks plus externally-imposed busy
intervals (attestation runs, taken e.g. from
:attr:`repro.core.prover.ProverTrustAnchor.busy_intervals`), and reports
what actually happened to every job: met, late, missed or skipped.

Two overload policies, matching real firmware styles:

``skip``
    A job that cannot start before its deadline is dropped (sensor
    sampling: a stale sample is worthless).
``catch-up``
    Jobs queue and run late (data-logging: better late than never);
    lateness is reported per job.

This replaces the analytic gap-fitting bound of
:class:`~repro.mcu.power.DutyCycleTask` with an execution-accurate
account, including backlog effects when attestations arrive back-to-back.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["PeriodicTask", "JobRecord", "ScheduleReport",
           "CooperativeScheduler"]


@dataclass(frozen=True)
class PeriodicTask:
    """One primary-function task of the prover."""

    name: str
    period_seconds: float
    job_seconds: float
    policy: str = "skip"        # "skip" | "catch-up"

    def __post_init__(self):
        if self.period_seconds <= 0 or self.job_seconds <= 0:
            raise ConfigurationError("period and job length must be positive")
        if self.job_seconds > self.period_seconds:
            raise ConfigurationError(
                f"task {self.name!r} is infeasible even unloaded")
        if self.policy not in ("skip", "catch-up"):
            raise ConfigurationError(f"unknown overload policy {self.policy!r}")


@dataclass(frozen=True)
class JobRecord:
    """What happened to one released job."""

    task: str
    release: float
    started: float | None
    finished: float | None
    deadline: float
    outcome: str                # met | late | skipped

    @property
    def lateness_seconds(self) -> float:
        if self.finished is None:
            return float("inf")
        return max(0.0, self.finished - self.deadline)


@dataclass
class ScheduleReport:
    """Aggregate outcome of a schedule run."""

    horizon_seconds: float
    jobs: list[JobRecord] = field(default_factory=list)

    def of_task(self, name: str) -> list[JobRecord]:
        return [job for job in self.jobs if job.task == name]

    @property
    def released(self) -> int:
        return len(self.jobs)

    @property
    def met(self) -> int:
        return sum(1 for job in self.jobs if job.outcome == "met")

    @property
    def late(self) -> int:
        return sum(1 for job in self.jobs if job.outcome == "late")

    @property
    def skipped(self) -> int:
        return sum(1 for job in self.jobs if job.outcome == "skipped")

    @property
    def miss_ratio(self) -> float:
        if not self.jobs:
            return 0.0
        return (self.late + self.skipped) / len(self.jobs)

    @property
    def max_lateness_seconds(self) -> float:
        finite = [job.lateness_seconds for job in self.jobs
                  if job.finished is not None]
        return max(finite, default=0.0)


class CooperativeScheduler:
    """Non-preemptive executive: tasks + externally-imposed busy intervals.

    Busy intervals (attestation runs) have absolute priority and are
    non-interruptible, exactly like the attestation code of SMART /
    TrustLite-class devices.  Between them, released jobs run FIFO by
    release time.
    """

    def __init__(self, tasks: list[PeriodicTask]):
        if not tasks:
            raise ConfigurationError("need at least one task")
        names = [task.name for task in tasks]
        if len(set(names)) != len(names):
            raise ConfigurationError("task names must be unique")
        self.tasks = list(tasks)

    def run(self, horizon_seconds: float,
            busy_intervals: list[tuple[float, float]] | None = None
            ) -> ScheduleReport:
        """Simulate [0, horizon) with the given attestation intervals."""
        if horizon_seconds <= 0:
            raise ConfigurationError("horizon must be positive")
        busy = sorted(busy_intervals or [])
        for (a_start, a_end), (b_start, b_end) in zip(busy, busy[1:]):
            if b_start < a_end:
                raise ConfigurationError("busy intervals overlap")

        report = ScheduleReport(horizon_seconds=horizon_seconds)
        # Release queue: (release_time, task_index, sequence).
        releases: list[tuple[float, int, int]] = []
        for index, task in enumerate(self.tasks):
            count = int(horizon_seconds / task.period_seconds)
            for sequence in range(count):
                heapq.heappush(releases,
                               (sequence * task.period_seconds, index,
                                sequence))

        cpu_free_at = 0.0

        def next_gap(after: float, need: float) -> float:
            """Earliest start >= ``after`` with ``need`` seconds free of
            busy intervals."""
            start = after
            cursor = 0
            while True:
                if cursor < len(busy):
                    b_start, b_end = busy[cursor]
                    if start >= b_end:
                        cursor += 1
                        continue
                    if start + need <= b_start:
                        return start
                    start = b_end
                    cursor += 1
                    continue
                return start

        while releases:
            release, index, sequence = heapq.heappop(releases)
            task = self.tasks[index]
            deadline = release + task.period_seconds
            earliest = max(release, cpu_free_at)
            start = next_gap(earliest, task.job_seconds)
            finish = start + task.job_seconds

            if finish <= deadline:
                outcome = "met"
            elif task.policy == "catch-up":
                outcome = "late"
            else:
                report.jobs.append(JobRecord(
                    task=task.name, release=release, started=None,
                    finished=None, deadline=deadline, outcome="skipped"))
                continue

            cpu_free_at = finish
            report.jobs.append(JobRecord(
                task=task.name, release=release, started=start,
                finished=finish, deadline=deadline, outcome=outcome))
        report.jobs.sort(key=lambda job: job.release)
        return report
