"""Firmware images: named code modules placed into device memory.

The simulator is behavioural, so a "module" is a block of deterministic
pseudo machine-code bytes (what secure boot measures and what attestation
MACs) plus the Python entry points that model its behaviour.  The bytes
are derived from the module's name, version and size through the
HMAC-DRBG, so two builds of the same (name, version, size) are
bit-identical -- necessary for reference measurements -- while any version
bump or malware patch changes the measurement, as it would on real flash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.rng import DeterministicRng
from ..crypto.sha1 import SHA1
from ..errors import ConfigurationError

__all__ = ["FirmwareModule", "FirmwareImage"]


@dataclass(frozen=True)
class FirmwareModule:
    """One named code module inside a firmware image.

    Attributes
    ----------
    name:
        Module identity, e.g. ``"Code_Attest"``, ``"Code_Clock"``,
        ``"app"``.
    size:
        Code size in bytes.
    version:
        Build version; part of the byte derivation, so patched code
        measures differently.
    uninterruptible:
        Whether the module's execution context defers interrupts
        (SMART-style ROM code).
    """

    name: str
    size: int
    version: int = 1
    uninterruptible: bool = False

    def __post_init__(self):
        if self.size <= 0:
            raise ConfigurationError(f"module {self.name!r} must have positive size")

    def code_bytes(self) -> bytes:
        """Deterministic pseudo machine code for this module build."""
        rng = DeterministicRng(f"firmware:{self.name}:v{self.version}")
        return rng.bytes(self.size)

    def measurement(self) -> bytes:
        """SHA-1 digest of the module's code (secure-boot reference)."""
        return SHA1(self.code_bytes()).digest()


@dataclass
class FirmwareImage:
    """An ordered set of modules with their placement in the address space.

    ``layout`` maps module name to absolute base address.  The image can
    compute a combined measurement (hash over all module digests in layout
    order), which is what the secure-boot ROM compares against its stored
    reference.
    """

    modules: list[FirmwareModule] = field(default_factory=list)
    layout: dict[str, int] = field(default_factory=dict)

    def add(self, module: FirmwareModule, base_address: int) -> FirmwareModule:
        """Place ``module`` at ``base_address``; rejects overlaps."""
        if module.name in self.layout:
            raise ConfigurationError(f"duplicate module {module.name!r}")
        new_span = (base_address, base_address + module.size)
        for existing in self.modules:
            start = self.layout[existing.name]
            span = (start, start + existing.size)
            if new_span[0] < span[1] and span[0] < new_span[1]:
                raise ConfigurationError(
                    f"module {module.name!r} overlaps {existing.name!r}")
        self.modules.append(module)
        self.layout[module.name] = base_address
        return module

    def module(self, name: str) -> FirmwareModule:
        for candidate in self.modules:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def span(self, name: str) -> tuple[int, int]:
        """Half-open address range a module occupies."""
        module = self.module(name)
        base = self.layout[name]
        return (base, base + module.size)

    def measurement(self) -> bytes:
        """Combined measurement: SHA-1 over per-module digests, in address
        order, each prefixed by the module base address."""
        digest = SHA1()
        for module in sorted(self.modules, key=lambda m: self.layout[m.name]):
            digest.update(self.layout[module.name].to_bytes(4, "little"))
            digest.update(module.measurement())
        return digest.digest()
