"""Byte-accurate memory model of the simulated low-end MCU.

The security arguments of the paper are all about *which code may touch
which memory*: ``K_Attest`` readable only by ``Code_Attest``,
``counter_R`` writable only by ``Code_Attest``, ``Clock_MSB`` writable
only by ``Code_Clock``, the IDT immutable, the EA-MPU configuration
locked (Sections 5-6).  This module provides the substrate those rules
act on:

* :class:`MemoryType` -- ROM / RAM / FLASH / MMIO, with ROM inherently
  write-protected by hardware;
* :class:`MemoryRegion` -- a named, contiguous, backed byte range;
* :class:`MemoryMap` -- the device's address space (non-overlapping
  regions, address -> region lookup);
* :class:`MemoryBus` -- the access path that attributes every load/store
  to the currently executing code region and consults the EA-MPU.

MMIO regions are backed by handler objects (peripherals) instead of a
byte array; reads and writes are delegated per-offset.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Callable, Iterator, Protocol

from ..errors import ConfigurationError, MemoryAccessViolation

__all__ = ["MemoryType", "MemoryRegion", "MemoryMap", "MemoryBus",
           "MmioPeripheral"]


class MemoryType(enum.Enum):
    """Physical memory technology of a region."""

    ROM = "rom"        # mask ROM: hardware write-protected
    RAM = "ram"        # volatile, read/write
    FLASH = "flash"    # non-volatile, read/write (erase granularity ignored)
    MMIO = "mmio"      # memory-mapped peripheral registers


class MmioPeripheral(Protocol):
    """Interface for peripherals mapped into an MMIO region.

    Offsets are relative to the region base.  ``context`` is the name of
    the code region issuing the access (``None`` for hardware-internal
    accesses); peripherals may implement their own access policy, e.g. the
    EA-MPU denies configuration writes after lockdown.
    """

    def mmio_read(self, offset: int, context: str | None) -> int: ...

    def mmio_write(self, offset: int, value: int, context: str | None) -> None: ...


class MemoryRegion:
    """A named contiguous byte range in the device address space.

    Parameters
    ----------
    name:
        Unique region name, e.g. ``"rom"``, ``"ram"``, ``"mpu-config"``.
    start, size:
        Absolute base address and length in bytes.
    mem_type:
        One of :class:`MemoryType`.  ROM regions reject writes from
        software regardless of MPU rules (hardware property).
    peripheral:
        Required for MMIO regions: the backing peripheral handler.
    executable:
        Whether code may execute from this region (code regions live in
        ROM or flash; the CPU model uses this to validate contexts).
    """

    def __init__(self, name: str, start: int, size: int,
                 mem_type: MemoryType, *,
                 peripheral: MmioPeripheral | None = None,
                 executable: bool = False):
        if size <= 0:
            raise ConfigurationError(f"region {name!r} must have positive size")
        if start < 0:
            raise ConfigurationError(f"region {name!r} has negative base")
        if mem_type is MemoryType.MMIO and peripheral is None:
            raise ConfigurationError(f"MMIO region {name!r} needs a peripheral")
        if mem_type is not MemoryType.MMIO and peripheral is not None:
            raise ConfigurationError(
                f"non-MMIO region {name!r} cannot have a peripheral")
        self.name = name
        self.start = start
        self.size = size
        self.mem_type = mem_type
        self.peripheral = peripheral
        self.executable = executable
        self._data = bytearray(size) if mem_type is not MemoryType.MMIO else None
        #: Mutations at offsets below this bound are invisible to the
        #: content fingerprint.  The device sets it to the RAM reserved
        #: prefix (IDT / ``counter_R`` / ``Clock_MSB``), which the
        #: attestation digest never covers -- so honest freshness-state
        #: updates do not invalidate cached state digests.
        self.fingerprint_exclude_below = 0
        #: Optional :class:`repro.incremental.DigestTree` observing this
        #: region's mutations (attached by ``Device.enable_incremental``).
        #: Host-side only; ``None`` means no incremental tracking.
        self.digest_tree = None
        if self._data is not None:
            self._fingerprint = hashlib.sha1(
                f"region:{name}:{start:#x}:{size:#x}".encode()).digest()
        else:
            self._fingerprint = None

    @property
    def end(self) -> int:
        """One past the last valid address of the region."""
        return self.start + self.size

    def contains(self, address: int) -> bool:
        return self.start <= address < self.end

    def overlaps(self, other: "MemoryRegion") -> bool:
        return self.start < other.end and other.start < self.end

    @property
    def is_writable_hardware(self) -> bool:
        """Whether the memory technology itself permits writes."""
        return self.mem_type is not MemoryType.ROM

    @property
    def content_fingerprint(self) -> bytes | None:
        """Write-chain fingerprint of the region contents (non-MMIO).

        A chain hash advanced by every mutation with the mutated
        ``(offset, length, data)`` triple: two regions with the same
        geometry and the same mutation history have equal fingerprints
        and therefore byte-identical contents (regions start zeroed and
        :meth:`store` is the only mutation path).  Mutations entirely
        below :attr:`fingerprint_exclude_below` are skipped -- see the
        attribute docstring.  Used as a content-addressed cache key by
        :class:`repro.mcu.statecache.StateDigestCache`; never feeds back
        into simulated behaviour.
        """
        return self._fingerprint

    def store(self, offset: int, data: bytes) -> None:
        """The one mutation path for non-MMIO backing bytes.

        Both :meth:`load` (factory/harness writes) and
        :meth:`MemoryBus.write` (arbitrated software stores) land here,
        so content accounting (:meth:`note_write`) can never miss a
        mutation.
        """
        self._data[offset:offset + len(data)] = data
        self.note_write(offset, data)

    def note_write(self, offset: int, data: bytes) -> None:
        """Account a mutation of ``[offset, offset + len(data))``.

        Advances the write-chain fingerprint and marks the covering
        :attr:`digest_tree` leaves dirty.  Zero-length writes mutate
        nothing and are skipped uniformly (they advance neither the
        fingerprint nor the tree -- two histories differing only by
        empty stores describe byte-identical contents).  Writes entirely
        below :attr:`fingerprint_exclude_below` skip the fingerprint
        chain; a write *straddling* the bound is accounted in full (the
        conservative direction: a straddle can touch attested bytes, so
        it must invalidate cached digests).
        """
        length = len(data)
        if length == 0:
            return
        tree = self.digest_tree
        if tree is not None:
            tree.note_write(offset, length)
        if offset + length <= self.fingerprint_exclude_below:
            return
        self._fingerprint = hashlib.sha1(
            self._fingerprint + offset.to_bytes(8, "little")
            + length.to_bytes(8, "little") + bytes(data)).digest()

    def attach_digest_tree(self, tree) -> None:
        """Attach a :class:`repro.incremental.DigestTree` observing this
        region's mutations (window must fit inside the region)."""
        if self._data is None:
            raise ConfigurationError(
                f"cannot attach a digest tree to MMIO region {self.name!r}")
        if tree.window_start + tree.window_size > self.size:
            raise ConfigurationError(
                f"digest tree window exceeds region {self.name!r} "
                f"(size {self.size:#x})")
        self.digest_tree = tree

    def detach_digest_tree(self) -> None:
        self.digest_tree = None

    # -- raw (MPU-bypassing) access: used by hardware and by the simulator
    #    harness to set up initial contents -------------------------------

    def load(self, offset: int, data: bytes) -> None:
        """Write ``data`` at ``offset`` bypassing all protection.

        This models factory programming / the simulation harness, not a
        runtime store; runtime stores must go through :class:`MemoryBus`.
        """
        if self._data is None:
            raise ConfigurationError(f"cannot load bytes into MMIO region {self.name!r}")
        if offset < 0 or offset + len(data) > self.size:
            raise ConfigurationError(
                f"load of {len(data)} bytes at offset {offset:#x} exceeds "
                f"region {self.name!r} (size {self.size:#x})")
        self.store(offset, data)

    def raw_read(self, offset: int, length: int) -> bytes:
        """Read bytes bypassing protection (hardware-internal view)."""
        if self._data is None:
            raise ConfigurationError(f"raw_read on MMIO region {self.name!r}")
        if offset < 0 or offset + length > self.size:
            raise ConfigurationError(
                f"raw_read out of bounds in region {self.name!r}")
        return bytes(self._data[offset:offset + length])

    def snapshot(self) -> bytes:
        """Return a copy of the full region contents (non-MMIO only)."""
        return self.raw_read(0, self.size)

    def __repr__(self) -> str:
        return (f"MemoryRegion({self.name!r}, start={self.start:#x}, "
                f"size={self.size:#x}, type={self.mem_type.value})")


class MemoryMap:
    """The full address space of a device: disjoint named regions."""

    def __init__(self):
        self._regions: list[MemoryRegion] = []
        self._by_name: dict[str, MemoryRegion] = {}

    def add(self, region: MemoryRegion) -> MemoryRegion:
        """Register ``region``; rejects overlaps and duplicate names."""
        if region.name in self._by_name:
            raise ConfigurationError(f"duplicate region name {region.name!r}")
        for existing in self._regions:
            if existing.overlaps(region):
                raise ConfigurationError(
                    f"region {region.name!r} overlaps {existing.name!r}")
        self._regions.append(region)
        self._regions.sort(key=lambda r: r.start)
        self._by_name[region.name] = region
        return region

    def region(self, name: str) -> MemoryRegion:
        """Look a region up by name (KeyError if absent)."""
        return self._by_name[name]

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def find(self, address: int) -> MemoryRegion | None:
        """Return the region containing ``address``, or ``None``."""
        # Regions are few (tens at most); linear scan is clear and fast enough.
        for region in self._regions:
            if region.contains(address):
                return region
        return None

    def __iter__(self) -> Iterator[MemoryRegion]:
        return iter(self._regions)

    def __len__(self) -> int:
        return len(self._regions)

    def writable_regions(self) -> list[MemoryRegion]:
        """All regions attestation must cover: RAM and flash (Section 3.1
        MACs "the prover's entire writable memory")."""
        return [r for r in self._regions
                if r.mem_type in (MemoryType.RAM, MemoryType.FLASH)]


#: Hook signature for access tracing: (context, access, address, length).
AccessTracer = Callable[[str | None, str, int, int], None]


class MemoryBus:
    """Routes every software load/store through the EA-MPU.

    The bus is the *only* runtime access path.  Each access carries the
    name of the executing code region (the CPU's current context); the
    attached MPU decides whether the (context, address, access-type)
    triple is allowed.  ROM writes are refused by the memory technology
    itself, before the MPU is even consulted.
    """

    def __init__(self, memory_map: MemoryMap):
        self.memory_map = memory_map
        self._mpu = None  # attached later to break the construction cycle
        self._tracers: list[AccessTracer] = []

    def attach_mpu(self, mpu) -> None:
        """Attach the EA-MPU that arbitrates accesses (done by Device)."""
        self._mpu = mpu

    def add_tracer(self, tracer: AccessTracer) -> None:
        """Register a callback observing every access (for tests/benches)."""
        self._tracers.append(tracer)

    @property
    def has_tracers(self) -> bool:
        """Whether any access tracer is observing the bus.  Bulk readers
        check this and fall back to per-chunk reads so tracers keep
        seeing the exact access pattern the naive path produces."""
        return bool(self._tracers)

    def _trace(self, context: str | None, access: str, address: int,
               length: int) -> None:
        for tracer in self._tracers:
            tracer(context, access, address, length)

    def _check(self, context: str | None, access: str, address: int,
               length: int) -> MemoryRegion:
        region = self.memory_map.find(address)
        if region is None or address + length > region.end:
            raise MemoryAccessViolation(
                f"{access} of {length} bytes at {address:#x} hits unmapped "
                f"memory", address=address, access=access, context=context)
        if access == "write" and not region.is_writable_hardware:
            raise MemoryAccessViolation(
                f"write to ROM region {region.name!r} at {address:#x}",
                address=address, access=access, context=context)
        if self._mpu is not None:
            self._mpu.check_access(context, access, address, length)
        return region

    # -- software access path ----------------------------------------------

    def read(self, context: str | None, address: int, length: int = 1) -> bytes:
        """Software load of ``length`` bytes at ``address``."""
        region = self._check(context, "read", address, length)
        self._trace(context, "read", address, length)
        if region.mem_type is MemoryType.MMIO:
            offset = address - region.start
            return bytes(region.peripheral.mmio_read(offset + i, context) & 0xFF
                         for i in range(length))
        return region.raw_read(address - region.start, length)

    def write(self, context: str | None, address: int, data: bytes) -> None:
        """Software store of ``data`` at ``address``."""
        region = self._check(context, "write", address, len(data))
        self._trace(context, "write", address, len(data))
        if region.mem_type is MemoryType.MMIO:
            offset = address - region.start
            for i, byte in enumerate(data):
                region.peripheral.mmio_write(offset + i, byte, context)
            return
        region.store(address - region.start, data)

    # -- bulk access path ----------------------------------------------------
    #
    # The attestation measurement reads hundreds of kilobytes through the
    # bus; copying every 4 KB chunk into fresh ``bytes`` dominates host
    # wall-clock once hashing itself is fast.  ``read_view`` hands the
    # hash a read-only window straight onto the region's backing store
    # after one permission check over the whole span.  ``can_bulk_read``
    # is the eligibility pre-check: a span qualifies only when it lies in
    # one non-MMIO region and no EA-MPU rule overlaps it, so a single
    # check is *provably* equivalent to the per-chunk sweep (every byte
    # is unruled ordinary memory).  Anything else -- rules splitting the
    # region, MMIO, unmapped tails -- must take the per-chunk checked
    # path.

    def can_bulk_read(self, context: str | None, address: int,
                      length: int) -> bool:
        """Whether ``[address, address+length)`` is eligible for a
        single zero-copy :meth:`read_view`."""
        if length <= 0:
            return False
        region = self.memory_map.find(address)
        if region is None or address + length > region.end:
            return False
        if region.mem_type is MemoryType.MMIO:
            return False
        if self._mpu is not None and not self._mpu.span_unruled(
                address, address + length):
            return False
        return True

    def read_view(self, context: str | None, address: int,
                  length: int) -> memoryview:
        """Zero-copy software load: a read-only view of backing memory.

        Performs the same :meth:`_check` arbitration as :meth:`read`
        (one check over the full span) and emits one trace record.
        Callers should gate on :meth:`can_bulk_read`; MMIO regions are
        still served correctly via the per-byte peripheral path.
        """
        region = self._check(context, "read", address, length)
        self._trace(context, "read", address, length)
        if region.mem_type is MemoryType.MMIO:
            return memoryview(self.read(context, address, length))
        offset = address - region.start
        return memoryview(region._data)[offset:offset + length].toreadonly()

    def read_into(self, context: str | None, address: int, length: int,
                  out: bytearray, out_offset: int = 0) -> int:
        """Software load of ``length`` bytes directly into ``out``.

        One permission check, one ``memcpy``-style slice store, no
        intermediate ``bytes`` object.  Returns ``length``.
        """
        if out_offset < 0 or out_offset + length > len(out):
            raise ConfigurationError(
                f"read_into of {length} bytes at output offset "
                f"{out_offset} exceeds buffer of {len(out)} bytes")
        region = self._check(context, "read", address, length)
        self._trace(context, "read", address, length)
        if region.mem_type is MemoryType.MMIO:
            offset = address - region.start
            for i in range(length):
                out[out_offset + i] = \
                    region.peripheral.mmio_read(offset + i, context) & 0xFF
            return length
        offset = address - region.start
        out[out_offset:out_offset + length] = \
            memoryview(region._data)[offset:offset + length]
        return length

    def read_u32(self, context: str | None, address: int) -> int:
        return int.from_bytes(self.read(context, address, 4), "little")

    def write_u32(self, context: str | None, address: int, value: int) -> None:
        self.write(context, address, (value & 0xFFFFFFFF).to_bytes(4, "little"))

    def read_u64(self, context: str | None, address: int) -> int:
        return int.from_bytes(self.read(context, address, 8), "little")

    def write_u64(self, context: str | None, address: int, value: int) -> None:
        self.write(context, address,
                   (value & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little"))
