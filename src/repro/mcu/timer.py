"""Free-running hardware counters with dividers and wrap-around interrupts.

Section 6.3 evaluates clock hardware built from exactly this component:

* a 64-bit register incremented every cycle wraps after 24 372.6 years at
  24 MHz (never, in practice);
* a 32-bit register wraps after about 3 minutes; dividing the clock by
  2^20 stretches that to ~6 years at ~42-44 ms resolution;
* Figure 1b's ``Clock_LSB`` is a *short* counter that raises an interrupt
  at wrap-around so trusted software can maintain the high-order bits.

:class:`HardwareCounter` models all three.  The counter value is derived
from the CPU cycle count (``value = (cycles // divider + base) mod
2^width``), so it never drifts from simulated time; a software write --
allowed only when the counter is constructed ``software_writable`` --
adjusts ``base``, which is precisely the "reset the prover's clock"
primitive the roaming adversary uses in Section 5.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ConfigurationError, MemoryAccessViolation
from .cpu import CPU

__all__ = ["HardwareCounter"]


class HardwareCounter:
    """A width-limited counter clocked from the CPU cycle counter.

    Implements the MMIO peripheral protocol: the value is readable (and,
    when ``software_writable``, writable) byte-wise at offsets
    ``0 .. width_bits//8 - 1``, little-endian.

    Parameters
    ----------
    cpu:
        Clock source; the counter registers itself as a cycle listener to
        detect wrap-arounds.
    width_bits:
        Register width (Table 3 evaluates 64 and 32; Figure 1b uses a
        short counter, e.g. 16 bits).
    divider:
        The counter increments once every ``divider`` CPU cycles
        (Section 6.3's "dividing the clock by 2^20").
    software_writable:
        Hardware property.  The paper requires the clock counter to be
        read-only (Section 6.2); leaving this True models the unprotected
        design the roaming adversary exploits.
    on_wrap:
        Callback invoked once per wrap-around with the wrap count
        (connects ``Clock_LSB`` to its interrupt line, Figure 1b ①).
    """

    def __init__(self, cpu: CPU, *, width_bits: int, divider: int = 1,
                 software_writable: bool = False,
                 on_wrap: Callable[[int], None] | None = None):
        if width_bits not in (8, 16, 24, 32, 48, 64):
            raise ConfigurationError(f"unsupported counter width {width_bits}")
        if divider < 1:
            raise ConfigurationError("divider must be >= 1")
        self.cpu = cpu
        self.width_bits = width_bits
        self.divider = divider
        self.software_writable = software_writable
        self.on_wrap = on_wrap
        self._modulus = 1 << width_bits
        self._base = 0                      # software-adjustable offset, ticks
        self._last_unwrapped = self._unwrapped()
        cpu.add_cycle_listener(self._on_cycles)

    # -- value derivation -----------------------------------------------------

    def _unwrapped(self) -> int:
        """Monotonic tick count including the software base offset."""
        return self.cpu.cycle_count // self.divider + self._base

    @property
    def value(self) -> int:
        """Current counter register value (wrapped to the register width)."""
        return self._unwrapped() % self._modulus

    @property
    def size_bytes(self) -> int:
        return self.width_bits // 8

    def _on_cycles(self, now: int, elapsed: int) -> None:
        unwrapped = self._unwrapped()
        wraps = unwrapped // self._modulus - self._last_unwrapped // self._modulus
        self._last_unwrapped = unwrapped
        if wraps > 0 and self.on_wrap is not None:
            self.on_wrap(wraps)

    # -- software access (MMIO peripheral protocol) ---------------------------

    def mmio_read(self, offset: int, context: str | None) -> int:
        if not 0 <= offset < self.size_bytes:
            raise MemoryAccessViolation(
                f"counter read at invalid offset {offset:#x}",
                address=offset, access="read", context=context)
        return self.value >> (8 * offset) & 0xFF

    def mmio_write(self, offset: int, value: int, context: str | None) -> None:
        if not 0 <= offset < self.size_bytes:
            raise MemoryAccessViolation(
                f"counter write at invalid offset {offset:#x}",
                address=offset, access="write", context=context)
        if not self.software_writable:
            raise MemoryAccessViolation(
                f"hardware counter is read-only (context {context!r})",
                address=offset, access="write", context=context)
        shift = 8 * offset
        new_value = (self.value & ~(0xFF << shift)) | ((value & 0xFF) << shift)
        self.set_value(new_value)

    def set_value(self, new_value: int) -> None:
        """Force the counter to ``new_value`` by adjusting the base offset.

        Used by the MMIO write path and directly by attack scenarios that
        model a compromised prover rewriting an unprotected clock.
        """
        new_value %= self._modulus
        delta = new_value - self.value
        self._base += delta
        self._last_unwrapped = self._unwrapped()

    # -- analysis helpers ------------------------------------------------------

    @property
    def resolution_seconds(self) -> float:
        """Seconds per tick (Section 6.3: 2^20 / 24 MHz ~= 43.7 ms)."""
        return self.divider / self.cpu.frequency_hz

    @property
    def wraparound_seconds(self) -> float:
        """Time until the register wraps (Section 6.3's lifetimes)."""
        return self._modulus * self.divider / self.cpu.frequency_hz

    @property
    def wraparound_years(self) -> float:
        # 365-day years, matching the Section 6.3 convention (see
        # repro.hwcost.model).
        return self.wraparound_seconds / (365 * 24 * 3600)
