"""Energy model: the currency of the paper's DoS argument.

Section 3.1: gratuitous attestation "can waste energy (deplete batteries)
and take the targeted device away from performing its primary tasks, such
as control, sensing, or actuation."  This module quantifies both halves:

* :class:`EnergyModel` converts CPU cycles (active) and idle time (sleep)
  into millijoules, using datasheet-style constants for a low-end MCU
  (default: ~0.3 mW/MHz active, 2 uW sleep -- MSP430-class numbers);
* :class:`Battery` integrates consumption against a coin-cell-style
  capacity;
* :class:`DutyCycleTask` models the prover's primary task (sense/actuate
  every period) and records deadlines missed while attestation hogged the
  CPU, since low-end attestation runs uninterrupted (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["EnergyModel", "Battery", "DutyCycleTask"]


@dataclass(frozen=True)
class EnergyModel:
    """Power constants of the modelled MCU.

    Parameters
    ----------
    frequency_hz:
        CPU clock.
    active_mw_per_mhz:
        Active-mode power per MHz (datasheet figure-of-merit).
    sleep_uw:
        Deep-sleep power in microwatts.
    """

    frequency_hz: int = 24_000_000
    active_mw_per_mhz: float = 0.3
    sleep_uw: float = 2.0

    def __post_init__(self):
        if self.frequency_hz <= 0:
            raise ConfigurationError("frequency_hz must be positive")
        if self.active_mw_per_mhz <= 0 or self.sleep_uw < 0:
            raise ConfigurationError("power constants must be positive")

    @property
    def active_power_mw(self) -> float:
        return self.active_mw_per_mhz * self.frequency_hz / 1e6

    @property
    def energy_per_cycle_mj(self) -> float:
        """Millijoules consumed per active CPU cycle."""
        return self.active_power_mw / 1000.0 / self.frequency_hz * 1000.0

    def active_energy_mj(self, cycles: int) -> float:
        """Energy for ``cycles`` of active execution, in mJ."""
        return cycles / self.frequency_hz * self.active_power_mw

    def sleep_energy_mj(self, seconds: float) -> float:
        """Energy for ``seconds`` of deep sleep, in mJ."""
        return seconds * self.sleep_uw / 1000.0


class Battery:
    """An energy budget drained by active cycles and sleep time.

    Default capacity is a CR2450 coin cell: ~620 mAh at 3 V = 6696 J.
    """

    def __init__(self, capacity_mj: float = 620 * 3 * 3.6 * 1000,
                 model: EnergyModel | None = None):
        if capacity_mj <= 0:
            raise ConfigurationError("battery capacity must be positive")
        self.capacity_mj = capacity_mj
        self.model = model if model is not None else EnergyModel()
        self.consumed_mj = 0.0
        self.active_cycles = 0
        self.sleep_seconds = 0.0

    @property
    def remaining_mj(self) -> float:
        return max(0.0, self.capacity_mj - self.consumed_mj)

    @property
    def depleted(self) -> bool:
        return self.consumed_mj >= self.capacity_mj

    @property
    def fraction_remaining(self) -> float:
        return self.remaining_mj / self.capacity_mj

    def drain_active(self, cycles: int) -> float:
        """Charge ``cycles`` of active execution; returns mJ drained."""
        energy = self.model.active_energy_mj(cycles)
        self.consumed_mj += energy
        self.active_cycles += cycles
        return energy

    def drain_sleep(self, seconds: float) -> float:
        """Charge ``seconds`` of deep sleep; returns mJ drained."""
        energy = self.model.sleep_energy_mj(seconds)
        self.consumed_mj += energy
        self.sleep_seconds += seconds
        return energy

    def lifetime_at_sleep_seconds(self) -> float:
        """How long the *remaining* energy lasts in pure sleep (the
        baseline lifetime DoS attacks eat into)."""
        sleep_mw = self.model.sleep_uw / 1000.0
        return self.remaining_mj / sleep_mw if sleep_mw > 0 else float("inf")


class DutyCycleTask:
    """The prover's primary task: one job of ``job_cycles`` every
    ``period_seconds``.

    The device harness calls :meth:`record_blocked` for every interval
    during which attestation monopolised the CPU; deadlines falling in a
    blocked interval are counted as missed (Section 3.1: attestation on
    low-end devices "runs without interruption", so it is "detrimental to
    the execution of prover's main (even critical) functions").
    """

    def __init__(self, name: str, period_seconds: float, job_cycles: int,
                 frequency_hz: int = 24_000_000):
        if period_seconds <= 0 or job_cycles <= 0:
            raise ConfigurationError("task period and job size must be positive")
        self.name = name
        self.period_seconds = period_seconds
        self.job_cycles = job_cycles
        self.frequency_hz = frequency_hz
        self._blocked: list[tuple[float, float]] = []  # [start, end) seconds

    @property
    def period_cycles(self) -> int:
        return round(self.period_seconds * self.frequency_hz)

    @property
    def job_seconds(self) -> float:
        return self.job_cycles / self.frequency_hz

    def record_blocked(self, start_seconds: float, end_seconds: float) -> None:
        """Note that the CPU was unavailable during [start, end)."""
        if end_seconds > start_seconds:
            self._blocked.append((start_seconds, end_seconds))

    def deadlines_in(self, horizon_seconds: float) -> int:
        """Total job releases in [0, horizon)."""
        return int(horizon_seconds / self.period_seconds)

    def missed_deadlines(self, horizon_seconds: float) -> int:
        """Job releases whose entire (release, release + period - job)
        start window was swallowed by blocked intervals.

        A release at time t is missed when the job cannot both start and
        finish before t + period, i.e. no gap of ``job_seconds`` exists in
        [t, t + period) outside the blocked intervals.
        """
        blocked = sorted(self._blocked)
        missed = 0
        release = 0.0
        while release < horizon_seconds:
            deadline = release + self.period_seconds
            if not self._fits(blocked, release, deadline, self.job_seconds):
                missed += 1
            release += self.period_seconds
        return missed

    @staticmethod
    def _fits(blocked: list[tuple[float, float]], start: float, end: float,
              need: float) -> bool:
        """Whether a free gap of length ``need`` exists in [start, end)."""
        cursor = start
        for b_start, b_end in blocked:
            if b_end <= cursor:
                continue
            if b_start >= end:
                break
            if b_start - cursor >= need:
                return True
            cursor = max(cursor, b_end)
            if cursor >= end:
                return False
        return end - cursor >= need

    @property
    def blocked_total_seconds(self) -> float:
        return sum(end - start for start, end in self._blocked)
