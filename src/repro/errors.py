"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one base class.  Subsystems add their own subclasses:

* crypto errors (:class:`CryptoError` and friends),
* device/hardware errors (:class:`DeviceError`, :class:`MemoryAccessViolation`),
* protocol errors (:class:`ProtocolError`, :class:`RequestRejected`),
* configuration errors (:class:`ConfigurationError`).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was configured with invalid or inconsistent parameters."""


# ---------------------------------------------------------------------------
# Crypto
# ---------------------------------------------------------------------------

class CryptoError(ReproError):
    """Base class for cryptographic errors."""


class InvalidKeyError(CryptoError):
    """A key had the wrong length or an otherwise invalid value."""


class InvalidBlockError(CryptoError):
    """A block passed to a block cipher had the wrong length."""


class InvalidSignatureError(CryptoError):
    """An ECDSA signature failed structural validation."""


class PaddingError(CryptoError):
    """CBC padding was malformed during unpadding."""


# ---------------------------------------------------------------------------
# Device / MCU simulator
# ---------------------------------------------------------------------------

class DeviceError(ReproError):
    """Base class for errors raised by the MCU simulator."""


class MemoryAccessViolation(DeviceError):
    """A memory access was denied by the EA-MPU or region attributes.

    Attributes
    ----------
    address:
        The absolute byte address of the faulting access.
    access:
        One of ``"read"``, ``"write"``, ``"execute"``.
    context:
        Name of the execution context (code region) that issued the access,
        or ``None`` when no context was active.
    """

    def __init__(self, message: str, *, address: int | None = None,
                 access: str | None = None, context: str | None = None):
        super().__init__(message)
        self.address = address
        self.access = access
        self.context = context


class MPULockedError(DeviceError):
    """An attempt was made to reconfigure a locked-down EA-MPU."""


class SecureBootError(DeviceError):
    """Secure boot refused to start the device (measurement mismatch)."""


class ClockError(DeviceError):
    """A clock was misconfigured or manipulated in a way hardware forbids."""


class InterruptError(DeviceError):
    """Interrupt subsystem misconfiguration (bad vector, masked trusted IRQ)."""


class EntryPointViolation(DeviceError):
    """Execution of protected code attempted at a non-entry address.

    SMART-style hardware enforces that trusted code is entered only at
    its canonical entry point; a code-reuse jump into its body traps with
    this error instead of running with trusted privileges (Section 6.2).
    """


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

class ProtocolError(ReproError):
    """Base class for attestation protocol errors."""


class RequestRejected(ProtocolError):
    """The prover rejected an attestation request.

    Attributes
    ----------
    reason:
        Machine-readable reason code, e.g. ``"bad-mac"``, ``"stale-counter"``,
        ``"stale-timestamp"``, ``"replayed-nonce"``.
    """

    def __init__(self, message: str, *, reason: str):
        super().__init__(message)
        self.reason = reason


class VerificationFailed(ProtocolError):
    """The verifier could not validate an attestation response."""


# ---------------------------------------------------------------------------
# Checkpoint / restore
# ---------------------------------------------------------------------------

class SnapshotError(ReproError):
    """A simulation snapshot could not be taken or restored.

    Raised when the simulation is not quiescent (pending events, a
    non-empty execution-context stack), when a snapshot document does
    not match the object it is being restored into (wrong kind, wrong
    member set, wrong boot profile), or when a document references
    state the codec does not know how to rebuild (e.g. an unknown
    adversary type).
    """


# ---------------------------------------------------------------------------
# Network simulation
# ---------------------------------------------------------------------------

class NetworkError(ReproError):
    """Base class for network-simulation errors."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven into an invalid state."""
