"""End-to-end protocol sessions: verifier and prover on a Dolev-Yao channel.

:func:`build_session` is the library's main entry point: it assembles a
simulated deployment -- a provisioned, booted prover device with its
trust anchor, a verifier, and the channel between them -- from a handful
of choices (protection profile, request-auth scheme, freshness policy,
clock design).  Examples and attack scenarios all start from a session.

Time model: the network simulation clock is authoritative.  The prover
device sleeps between deliveries (:meth:`ProverNode.deliver` fast-forwards
the device to the simulation time before handling), and request handling
time feeds back as response latency, so a 754 ms measurement really does
delay the response by 754 simulated milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.ecc import SECP160R1, generate_keypair
from ..crypto.rng import DeterministicRng
from ..errors import ConfigurationError
from ..mcu.device import Device, DeviceConfig
from ..mcu.profiles import ProtectionProfile, ROAM_HARDENED
from ..net.channel import ChannelAdversary, DolevYaoChannel
from ..net.simulator import Simulation
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .authenticator import (EcdsaAuthenticator, RequestAuthenticator,
                            make_symmetric_authenticator)
from .freshness import FreshnessPolicy, make_policy
from .messages import AttestationRequest, AttestationResponse
from .prover import ProverTrustAnchor
from .resilience import ResilientOutcome, RetryPolicy
from .verifier import VerificationResult, Verifier

__all__ = ["ProverNode", "VerifierNode", "Session", "build_session"]


class ProverNode:
    """Channel endpoint wrapping a :class:`ProverTrustAnchor`."""

    def __init__(self, name: str, anchor: ProverTrustAnchor,
                 channel: DolevYaoChannel, sim: Simulation):
        self.name = name
        self.anchor = anchor
        self.channel = channel
        self.sim = sim
        channel.attach(self)

    @property
    def device(self) -> Device:
        return self.anchor.device

    def _sync_device_time(self) -> None:
        lag = self.sim.now - self.device.cpu.elapsed_seconds
        if lag > 0:
            self.device.idle_seconds(lag)

    def deliver(self, message, sender: str) -> None:
        """Handle an inbound attestation request."""
        if not isinstance(message, AttestationRequest):
            return  # unknown traffic is dropped silently
        self._sync_device_time()
        response, reason = self.anchor.handle_request(message)
        if response is not None:
            # The response leaves the device when its CPU finishes -- in
            # absolute device time, so a request that queued behind an
            # earlier measurement is delayed by both (the device may be
            # ahead of the simulation clock after back-to-back requests).
            done_at = self.device.cpu.elapsed_seconds
            delay = max(0.0, done_at - self.sim.now)
            self.sim.schedule(
                delay,
                lambda: self.channel.send(self.name, sender, response))


class VerifierNode:
    """Channel endpoint wrapping a :class:`Verifier`."""

    def __init__(self, name: str, verifier: Verifier,
                 channel: DolevYaoChannel, prover_name: str,
                 sim: Simulation):
        self.name = name
        self.verifier = verifier
        self.channel = channel
        self.prover_name = prover_name
        self.sim = sim
        self._outstanding: list[AttestationRequest] = []
        self._request_times: dict[bytes, float] = {}
        self.results: list[VerificationResult] = []
        #: Simulation time the most recent result was appended (any
        #: verdict, including unsolicited), and the measured request ->
        #: response duration of the most recent *matched* response.
        #: Retry policies clamp their per-attempt deadline to the latter
        #: so retries never fire faster than a round trip completes.
        self.last_result_time: float | None = None
        self.last_round_seconds: float | None = None
        channel.attach(self)

    def request_attestation(self) -> AttestationRequest:
        """Issue one attestation request towards the prover."""
        request = self.verifier.make_request()
        self._outstanding.append(request)
        self._request_times[request.challenge] = self.sim.now
        if len(self._request_times) > 4096:
            # Dropped requests never get popped; bound the map.
            oldest = next(iter(self._request_times))
            del self._request_times[oldest]
        self.channel.send(self.name, self.prover_name, request)
        return request

    def deliver(self, message, sender: str) -> None:
        if not isinstance(message, AttestationResponse):
            return
        request = self._match_request(message)
        if request is None:
            self.results.append(VerificationResult(
                False, None, "unsolicited-response"))
            self.last_result_time = self.sim.now
            return
        sent_at = self._request_times.pop(request.challenge, None)
        if sent_at is not None:
            self.last_round_seconds = self.sim.now - sent_at
        self.results.append(self.verifier.check_response(request, message))
        self.last_result_time = self.sim.now

    def _match_request(self, response: AttestationResponse
                       ) -> AttestationRequest | None:
        for request in self._outstanding:
            if request.challenge == response.challenge:
                self._outstanding.remove(request)
                return request
        return None


@dataclass
class Session:
    """A fully-wired attestation deployment."""

    sim: Simulation
    channel: DolevYaoChannel
    device: Device
    anchor: ProverTrustAnchor
    verifier: Verifier
    prover_node: ProverNode
    verifier_node: VerifierNode
    policy: FreshnessPolicy
    key: bytes
    #: The telemetry sink every layer reports into (the shared no-op
    #: sink when the session was built without observation).
    telemetry: Telemetry = field(default=NULL_TELEMETRY)

    def attest_once(self, settle_seconds: float = 5.0) -> VerificationResult:
        """Run one complete attestation round and return the verdict."""
        if self.sim.now == 0.0:
            # A timestamp of exactly 0 is indistinguishable from the
            # prover's initial last-accepted value; start after the epoch.
            self.sim.run(until=0.001)
        self.verifier_node.request_attestation()
        self.sim.run(until=self.sim.now + settle_seconds)
        if not self.verifier_node.results:
            return VerificationResult(False, None, "no-response")
        return self.verifier_node.results[-1]

    def attest_resilient(self, retry: "RetryPolicy",
                         rng: DeterministicRng | None = None
                         ) -> ResilientOutcome:
        """One logical attestation with deadlines, backoff and a budget.

        Each attempt waits ``retry.effective_timeout(...)`` -- the
        configured per-attempt deadline, clamped up to the most recently
        measured round trip so a retry can never fire while the response
        it is retrying for is still in flight.  Failed attempts back off
        exponentially (with deterministic jitter when ``rng`` is given)
        until the retry count or the total time budget runs out.

        Telemetry: ``session.timeouts`` / ``session.retries`` /
        ``session.backoff_seconds`` counters and the matching
        ``session-*`` trace events, plus ``verifier.timeouts`` via
        :meth:`~repro.core.verifier.Verifier.record_timeout`.
        """
        node = self.verifier_node
        round_start = self.sim.now
        attempts = 0
        timeouts = 0
        backoff_total = 0.0
        gave_up = None
        while True:
            attempts += 1
            timeout = retry.effective_timeout(node.last_round_seconds)
            if retry.total_budget_seconds is not None:
                # The budget check between attempts alone lets the final
                # attempt wait a full deadline past the cap; clamp the
                # deadline to the remaining budget instead.
                remaining = retry.total_budget_seconds \
                    - (self.sim.now - round_start)
                timeout = min(timeout, max(remaining, 0.0))
            baseline = len(node.results)
            result = self.attest_once(settle_seconds=timeout)
            if len(node.results) == baseline:
                # Nothing arrived within this attempt's deadline --
                # whatever attest_once returned is a stale verdict.
                result = VerificationResult(False, None, "no-response")
                timeouts += 1
                self.verifier.record_timeout()
                self.telemetry.count("session.timeouts")
                self.telemetry.event("session-timeout", self.sim.now,
                                     attempt=attempts)
            if result.trusted:
                break
            if retry.budget_exhausted(self.sim.now - round_start):
                # Checked before the retry count: when both limits bind
                # on the same attempt the budget is the one that actually
                # stopped the round, and must be reported as such.
                gave_up = "budget-exhausted"
                break
            if attempts > retry.max_retries:
                gave_up = "retries-exhausted"
                break
            self.telemetry.count("session.retries")
            self.telemetry.event("session-retry", self.sim.now,
                                 attempt=attempts, detail=result.detail)
            delay = retry.backoff_delay(attempts, rng)
            if delay > 0.0:
                backoff_total += delay
                self.telemetry.count("session.backoff_seconds", delay)
                self.telemetry.event("session-backoff", self.sim.now,
                                     seconds=delay, attempt=attempts)
                self.sim.run(until=self.sim.now + delay)
        return ResilientOutcome(result=result, attempts=attempts,
                                timeouts=timeouts,
                                backoff_seconds=backoff_total,
                                elapsed_seconds=self.sim.now - round_start,
                                gave_up=gave_up)

    def snapshot(self, *, parent: dict | None = None) -> dict:
        """Capture the full session state as a snapshot document.

        The session must be quiescent (no scheduled simulation events,
        no context on the CPU stack) -- see :mod:`repro.snapshot`.
        With ``parent`` (a session-kind document this run descends
        from), the capture is a ``repro.snapshot.delta/v1`` delta
        storing only chunks changed since the parent (see
        :mod:`repro.snapshot.delta`).
        """
        from ..snapshot import (BlobStore, DeltaBase, document_id,
                                make_delta_document, make_document,
                                snapshot_session)
        blobs = BlobStore()
        if parent is None:
            state = snapshot_session(self, blobs)
            return make_document("session", state, blobs)
        base = DeltaBase.from_document(parent, "session")
        state = snapshot_session(self, blobs, parent=base.member(0))
        return make_delta_document("session", state, blobs,
                                   document_id(parent))

    def restore(self, document: dict) -> None:
        """Overwrite this (freshly rebuilt) session from a document.

        The session must have been built with the same
        :func:`build_session` parameters as the captured one; after the
        restore, continuing the run is byte-identical to a run that was
        never interrupted.
        """
        from ..snapshot import restore_session, unwrap_document
        state, blobs = unwrap_document(document, "session")
        restore_session(self, state, blobs)

    def summary(self) -> dict:
        """Machine-readable snapshot of the deployment and its history.

        Stable keys for scripting/CI: device geometry, configuration
        choices, protocol statistics, and energy accounting.
        """
        self.device.sync_energy()
        stats = self.anchor.stats
        config = self.device.config
        return {
            "device": {
                "frequency_hz": config.frequency_hz,
                "ram_bytes": config.ram_size,
                "flash_bytes": config.flash_size,
                "writable_bytes": self.device.writable_memory_bytes,
                "clock_kind": config.clock_kind,
                "profile": self.device.boot_profile.name
                if self.device.boot_profile else None,
                "mpu_rules": self.device.mpu.active_rule_count,
            },
            "protocol": {
                "auth_scheme": self.anchor.authenticator.scheme,
                "freshness_policy": self.policy.name,
            },
            "stats": {
                "requests_received": stats.received,
                "accepted": stats.accepted,
                "rejected": dict(stats.rejected),
                "validation_ms": stats.validation_cycles
                / (config.frequency_hz / 1000),
                "attestation_ms": stats.attestation_cycles
                / (config.frequency_hz / 1000),
            },
            "energy": {
                "consumed_mj": self.device.battery.consumed_mj,
                "battery_fraction_remaining":
                    self.device.battery.fraction_remaining,
            },
            "time": {
                "simulated_seconds": self.sim.now,
                "device_seconds": self.device.cpu.elapsed_seconds,
            },
        }

    def learn_reference_state(self) -> bytes:
        """Deployment-time step: record the golden state digest.

        Reads the device directly (trusted provisioning environment, not
        the network path) so the verifier can later flag modified states.
        """
        digest = self.device.digest_writable_memory(
            self.device.context("Code_Attest"))
        self.verifier.learn_reference(digest)
        return digest


def build_session(*, profile: ProtectionProfile = ROAM_HARDENED,
                  auth_scheme: str = "speck-64/128-cbc-mac",
                  policy_name: str = "counter",
                  device_config: DeviceConfig | None = None,
                  adversary: ChannelAdversary | None = None,
                  timestamp_window_seconds: float = 1.0,
                  monotonic_timestamps: bool = False,
                  latency_seconds: float = 0.005,
                  network_path=None,
                  key: bytes | None = None,
                  rate_limit_seconds: float = 0.0,
                  telemetry: Telemetry | None = None,
                  seed: str = "session-0") -> Session:
    """Assemble a simulated attestation deployment.

    Parameters mirror the paper's design space: ``profile`` picks the
    hardware protection level (Section 6), ``auth_scheme`` the request
    authentication primitive (Section 4.1, Table 1), ``policy_name`` the
    freshness feature (Section 4.2, Table 2), and
    ``device_config.clock_kind`` the clock implementation (Figure 1).
    ``key`` provisions an externally-derived ``K_Attest`` (e.g. from
    :func:`repro.crypto.kdf.derive_device_key`); by default a key is
    drawn from the session seed.

    ``telemetry`` attaches a :class:`~repro.obs.telemetry.Telemetry`
    sink to every layer (device, channel, prover anchor, verifier); the
    default no-op sink observes nothing and costs nothing.
    """
    config = device_config if device_config is not None else DeviceConfig()
    if policy_name == "timestamp" and config.clock_kind == "none":
        raise ConfigurationError(
            "timestamp freshness requires a device clock")

    rng = DeterministicRng(seed)
    if key is None:
        key = rng.substream("k-attest").bytes(16)
    elif len(key) != 16:
        raise ConfigurationError("provisioned K_Attest must be 16 bytes")

    sink = telemetry if telemetry is not None else NULL_TELEMETRY

    device = Device(config)
    device.provision(key)
    device.boot(profile)
    device.attach_telemetry(sink)

    sim = Simulation()
    channel = DolevYaoChannel(sim, latency_seconds=latency_seconds,
                              adversary=adversary, path=network_path,
                              seed=seed, telemetry=sink)

    # Clock plumbing for timestamps: the verifier converts simulation
    # seconds into prover ticks (synchronised-clocks assumption).
    if device.clock is not None:
        resolution = device.clock.resolution_seconds
        clock_ticks = lambda: int(sim.now / resolution)  # noqa: E731
        window_ticks = max(1, int(timestamp_window_seconds / resolution))
    else:
        clock_ticks = None
        window_ticks = 1

    policy = make_policy(policy_name, window_ticks=window_ticks,
                         monotonic_timestamps=monotonic_timestamps)

    if auth_scheme == "ecdsa-secp160r1":
        keypair = generate_keypair(SECP160R1, rng.substream("ecdsa"))
        verifier_auth: RequestAuthenticator = EcdsaAuthenticator.signer(keypair)
        prover_auth: RequestAuthenticator = EcdsaAuthenticator.checker(
            keypair.public)
    else:
        verifier_auth = make_symmetric_authenticator(auth_scheme, key)
        prover_auth = make_symmetric_authenticator(auth_scheme, key)

    verifier = Verifier(key, verifier_auth, policy,
                        clock_ticks=clock_ticks, seed=seed + ":verifier",
                        telemetry=sink)
    anchor = ProverTrustAnchor(device, prover_auth, policy,
                               min_interval_seconds=rate_limit_seconds,
                               telemetry=sink)

    prover_node = ProverNode("prover", anchor, channel, sim)
    verifier_node = VerifierNode("verifier", verifier, channel, "prover", sim)

    return Session(sim=sim, channel=channel, device=device, anchor=anchor,
                   verifier=verifier, prover_node=prover_node,
                   verifier_node=verifier_node, policy=policy, key=key,
                   telemetry=sink)
