"""Verifier-side resilience: retry/timeout/backoff and circuit breakers.

The paper's availability argument cuts both ways.  Section 3.1 shows an
attestation round steals hundreds of milliseconds from the prover, and
Section 3.2's Dolev-Yao adversary "can drop, insert and delay messages"
-- so a verifier that retries on a fixed, tight cadence converts benign
packet loss into self-inflicted denial of service: every retry the
prover *does* receive burns another full measurement.  This module gives
the verifier side first-class failure handling instead:

* :class:`RetryPolicy` -- a per-attempt deadline, exponential backoff
  with optional deterministic jitter, and a total time budget per
  logical round.  Sessions (:meth:`repro.core.protocol.Session.\
attest_resilient`), monitors (:class:`repro.services.monitor.\
AttestationMonitor`) and fleet sweeps (:class:`repro.services.swarm.\
Swarm`) all consume the same policy object.
* :class:`CircuitBreaker` -- per-device ``healthy`` / ``degraded`` /
  ``quarantined`` state so a fleet degrades gracefully: persistently
  failing devices stop consuming sweep time (and stop being asked to
  burn measurement energy) but are still probed periodically so
  recovery is observed.

Determinism contract: all timing decisions are pure functions of the
policy fields, the attempt number, and (for jitter) a caller-supplied
:class:`~repro.crypto.rng.DeterministicRng` -- two runs with the same
seed schedule byte-identical retries.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["RetryPolicy", "ResilientOutcome", "CircuitBreaker",
           "BREAKER_STATES"]


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline, backoff and budget semantics for one logical attestation.

    Attributes
    ----------
    attempt_timeout_seconds:
        How long each attempt waits for a response before it is declared
        a timeout.  Callers clamp this up to at least one measured
        round-trip (see :meth:`effective_timeout`) so a retry can never
        fire faster than the attestation itself completes.
    max_retries:
        Retries *after* the first attempt (``max_retries=2`` means up to
        three attempts total).
    base_backoff_seconds / backoff_factor / max_backoff_seconds:
        Exponential backoff between attempts: retry ``n`` waits
        ``base * factor**(n-1)`` seconds, capped.  A base of 0 disables
        backoff (attempts run back to back, the legacy monitor cadence).
    jitter_fraction:
        Adds up to ``jitter_fraction`` of the computed delay, drawn from
        a caller-supplied deterministic RNG, so fleet-wide retries
        decorrelate without losing replayability.
    total_budget_seconds:
        Hard cap on simulated time spent on one logical round (attempts
        plus backoff); ``None`` means only ``max_retries`` limits it.
    """

    attempt_timeout_seconds: float = 5.0
    max_retries: int = 2
    base_backoff_seconds: float = 0.0
    backoff_factor: float = 2.0
    max_backoff_seconds: float = 300.0
    jitter_fraction: float = 0.0
    total_budget_seconds: float | None = None

    def __post_init__(self):
        if self.attempt_timeout_seconds <= 0:
            raise ConfigurationError("attempt timeout must be positive")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries cannot be negative")
        if self.base_backoff_seconds < 0 or self.max_backoff_seconds < 0:
            raise ConfigurationError("backoff delays cannot be negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ConfigurationError("jitter fraction must be in [0, 1]")
        if (self.total_budget_seconds is not None
                and self.total_budget_seconds <= 0):
            raise ConfigurationError("total budget must be positive")

    @property
    def max_attempts(self) -> int:
        return self.max_retries + 1

    def effective_timeout(self, measured_round_seconds: float | None) -> float:
        """The per-attempt deadline, clamped to one measured round trip.

        A deadline shorter than the round trip guarantees a spurious
        timeout -- the response is still in flight when the verifier
        gives up -- so once a round duration has been observed the
        deadline never drops below it.
        """
        if measured_round_seconds is None or measured_round_seconds <= 0:
            return self.attempt_timeout_seconds
        return max(self.attempt_timeout_seconds, measured_round_seconds)

    def backoff_delay(self, attempt: int, rng=None) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        Deterministic: with the same ``rng`` state the same delay comes
        out.  ``rng`` is only consulted when jitter is configured and
        the base delay is non-zero, so policies without jitter never
        perturb a shared random stream.
        """
        if attempt < 1:
            raise ConfigurationError("attempt numbers are 1-based")
        delay = self.base_backoff_seconds * self.backoff_factor ** (attempt - 1)
        delay = min(delay, self.max_backoff_seconds)
        if rng is not None and self.jitter_fraction > 0.0 and delay > 0.0:
            delay += delay * self.jitter_fraction * rng.random()
        return delay

    def budget_exhausted(self, elapsed_seconds: float) -> bool:
        """Whether ``elapsed_seconds`` has used up the total budget."""
        return (self.total_budget_seconds is not None
                and elapsed_seconds >= self.total_budget_seconds)


@dataclass
class ResilientOutcome:
    """Accounting for one resilient (retried) attestation round."""

    result: object                 #: final :class:`VerificationResult`
    attempts: int = 1
    timeouts: int = 0
    backoff_seconds: float = 0.0
    elapsed_seconds: float = 0.0
    #: ``None`` on success, else ``"retries-exhausted"`` or
    #: ``"budget-exhausted"``.
    gave_up: str | None = None

    @property
    def trusted(self) -> bool:
        return self.result is not None and self.result.trusted

    @property
    def retries(self) -> int:
        return self.attempts - 1


#: The circuit-breaker state vocabulary, in order of declining health.
BREAKER_STATES = ("healthy", "degraded", "quarantined")


@dataclass
class CircuitBreaker:
    """Per-device health state machine for graceful fleet degradation.

    ``healthy`` devices are attested normally.  After ``degrade_after``
    consecutive failures a device is ``degraded`` (still attested, but
    flagged); after ``quarantine_after`` it is ``quarantined`` and the
    sweep skips it -- except for a periodic probe
    (:meth:`should_attempt`) so recovery is observed, mirroring the
    monitor's "keep watching an alarmed device" rule.  Any success
    resets the breaker to ``healthy``.
    """

    degrade_after: int = 1
    quarantine_after: int = 3

    def __post_init__(self):
        if self.degrade_after < 1:
            raise ConfigurationError("degrade_after must be >= 1")
        if self.quarantine_after < self.degrade_after:
            raise ConfigurationError(
                "quarantine_after must be >= degrade_after")
        self.state = "healthy"
        self.consecutive_failures = 0
        self.probes_skipped = 0
        #: ``(from_state, to_state)`` audit log of every transition.
        self.transitions: list[tuple[str, str]] = []

    def _transition(self, new_state: str) -> None:
        if new_state != self.state:
            self.transitions.append((self.state, new_state))
            self.state = new_state

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self.probes_skipped = 0
        self._transition("healthy")

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.quarantine_after:
            self._transition("quarantined")
        elif self.consecutive_failures >= self.degrade_after:
            self._transition("degraded")

    def should_attempt(self, probe_every: int = 4) -> bool:
        """Whether the next sweep should attest this device.

        Non-quarantined devices: always.  Quarantined devices: every
        ``probe_every``-th opportunity, so a recovered device is found
        without spending a full attestation on it every sweep.
        """
        if self.state != "quarantined":
            return True
        if probe_every < 1:
            raise ConfigurationError("probe_every must be >= 1")
        self.probes_skipped += 1
        if self.probes_skipped >= probe_every:
            self.probes_skipped = 0
            return True
        return False
