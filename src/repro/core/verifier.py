"""The verifier: issues authenticated, fresh attestation requests.

The verifier is the powerful side of the asymmetry (Section 3.1), so its
own computation is not cycle-accounted; what matters for the paper is
what its messages *cost the prover*.  It still does real cryptography --
tags are genuine MACs/signatures over the wire bytes, so the simulated
adversary can only forge what a real adversary could.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hmac import constant_time_compare, hmac_sha1
from ..crypto.rng import DeterministicRng
from ..errors import VerificationFailed
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .authenticator import RequestAuthenticator
from .freshness import FreshnessPolicy, VerifierFreshnessState
from .messages import AttestationRequest, AttestationResponse

__all__ = ["Verifier", "VerificationResult"]


@dataclass
class VerificationResult:
    """Outcome of checking one attestation response."""

    authentic: bool
    state_known_good: bool | None
    detail: str

    @property
    def trusted(self) -> bool:
        """The verifier's final verdict on the prover."""
        return self.authentic and self.state_known_good is not False


class Verifier:
    """Issues ``attreq`` messages and validates responses.

    Parameters
    ----------
    key:
        The shared ``K_Attest`` (used for response validation and, with
        symmetric schemes, request tagging).
    authenticator:
        Request authentication scheme (verifier side -- for ECDSA this is
        the signer).
    policy:
        Freshness policy (verifier half).
    clock_ticks:
        Callable returning current time in prover clock ticks, for
        timestamp stamping (the synchronised-clocks assumption).
    seed:
        Seed of the challenge/nonce randomness.
    """

    def __init__(self, key: bytes, authenticator: RequestAuthenticator,
                 policy: FreshnessPolicy, *, clock_ticks=None,
                 challenge_size: int = 16, seed: str = "verifier-0",
                 telemetry: Telemetry | None = None):
        self.key = bytes(key)
        self.authenticator = authenticator
        self.policy = policy
        self.challenge_size = challenge_size
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        rng = DeterministicRng(seed)
        self.freshness_state = VerifierFreshnessState(
            rng=rng.substream("nonces"), clock_ticks=clock_ticks)
        self._challenge_rng = rng.substream("challenges")
        self.requests_issued = 0
        self.responses_validated = 0
        self.timeouts = 0
        #: Known-good state digests (populated from a golden device).
        self.reference_measurements: set[bytes] = set()

    # ------------------------------------------------------------------

    def make_request(self) -> AttestationRequest:
        """Build the next authenticated attestation request."""
        fields = self.policy.stamp(self.freshness_state)
        request = AttestationRequest(
            challenge=self._challenge_rng.bytes(self.challenge_size),
            auth_scheme=self.authenticator.scheme,
            **fields)
        tag = self.authenticator.tag(request.signed_payload())
        self.requests_issued += 1
        self.telemetry.count("verifier.requests_issued")
        return request.with_tag(tag)

    def record_timeout(self) -> None:
        """Account one request that went unanswered within its deadline.

        Called by :meth:`repro.core.protocol.Session.attest_resilient`
        (and anything else driving a :class:`~repro.core.resilience.\
RetryPolicy`) so verifier-side give-ups show up next to the issue/
        validate counters.
        """
        self.timeouts += 1
        self.telemetry.count("verifier.timeouts")

    def learn_reference(self, measurement: bytes) -> None:
        """Record a known-good state digest (deployment-time step)."""
        self.reference_measurements.add(bytes(measurement))

    def revoke_reference(self, measurement: bytes) -> bool:
        """Stop accepting a previously-good state digest.

        The fleet-level half of anti-rollback: after a firmware update
        the *device* refuses older versions
        (:class:`~repro.services.codeupdate.UpdateManager`), and the
        verifier revokes the pre-update reference so a device that
        somehow still runs (or was rolled back to) the old image attests
        as untrusted.  Returns whether the digest was known.
        """
        try:
            self.reference_measurements.remove(bytes(measurement))
            return True
        except KeyError:
            return False

    def rotate_reference(self, old: bytes, new: bytes) -> None:
        """Atomically replace one reference with another (update flow)."""
        self.revoke_reference(old)
        self.learn_reference(new)

    def check_response(self, request: AttestationRequest,
                       response: AttestationResponse) -> VerificationResult:
        """Validate a response against the request that elicited it.

        Authenticity: the response tag must verify under ``K_Attest`` and
        the challenge must match.  State: if reference measurements are
        known, the reported digest must be among them; otherwise state
        goodness is reported as ``None`` (unknown).
        """
        self.responses_validated += 1
        result = self._check_response(request, response)
        self.telemetry.count("verifier.responses_validated")
        self.telemetry.count("verifier.verdicts",
                             trusted="yes" if result.trusted else "no")
        return result

    def _check_response(self, request: AttestationRequest,
                        response: AttestationResponse) -> VerificationResult:
        if response.challenge != request.challenge:
            return VerificationResult(False, None, "challenge-mismatch")
        expected = hmac_sha1(self.key, response.tagged_payload())
        if not constant_time_compare(expected, response.tag):
            return VerificationResult(False, None, "bad-response-tag")
        if not self.reference_measurements:
            return VerificationResult(True, None, "authentic; state unknown")
        known = response.measurement in self.reference_measurements
        detail = "authentic; state known-good" if known else \
            "authentic; state NOT in reference set"
        return VerificationResult(True, known, detail)

    def require_trusted(self, request: AttestationRequest,
                        response: AttestationResponse) -> None:
        """Raise :class:`VerificationFailed` unless the response passes."""
        result = self.check_response(request, response)
        if not result.trusted:
            raise VerificationFailed(result.detail)
