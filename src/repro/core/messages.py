"""Wire formats of the attestation protocol.

The protocol of Section 3: the verifier sends an attestation request
(``attreq``) carrying a challenge plus optional freshness fields (nonce,
counter, timestamp -- Section 4.2) and an authentication tag (Section
4.1); the prover's trust anchor answers with the measurement of its
writable memory, authenticated under ``K_Attest``.

Messages serialise to a fixed, deterministic byte layout so that MACs and
signatures are computed over exactly the bytes on the wire, and so that a
replayed message is byte-identical to the original (which is what makes
replay detection purely a freshness-state problem).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from ..errors import ProtocolError

__all__ = ["AttestationRequest", "AttestationResponse"]

_REQ_MAGIC = b"ATRQ"
_RSP_MAGIC = b"ATRP"

#: Sentinel for "field not present" in the fixed wire layout.
_ABSENT = 0xFFFFFFFFFFFFFFFF


class _Cursor:
    """Bounds-checked sequential reader for wire parsing."""

    def __init__(self, data: bytes, *, kind: str):
        if not isinstance(data, (bytes, bytearray)):
            raise ProtocolError(f"{kind} must be bytes")
        self._data = bytes(data)
        self._offset = 0
        self._kind = kind

    def take(self, length: int) -> bytes:
        if self._offset + length > len(self._data):
            raise ProtocolError(f"{self._kind} truncated")
        chunk = self._data[self._offset:self._offset + length]
        self._offset += length
        return chunk

    def unpack(self, fmt: str) -> tuple:
        return struct.unpack(fmt, self.take(struct.calcsize(fmt)))

    def expect(self, magic: bytes) -> None:
        if self.take(len(magic)) != magic:
            raise ProtocolError(f"{self._kind} has wrong magic")

    def expect_end(self) -> None:
        if self._offset != len(self._data):
            raise ProtocolError(f"{self._kind} has trailing garbage")


@dataclass(frozen=True)
class AttestationRequest:
    """One ``attreq`` message.

    Attributes
    ----------
    challenge:
        Verifier-chosen bytes bound into the prover's response MAC.
    counter:
        Monotonic counter (None when the deployment uses another
        freshness feature).
    timestamp_ticks:
        Verifier timestamp, in prover clock ticks (None if unused).
    nonce:
        Verifier nonce (None if unused).
    auth_scheme:
        Request authentication scheme name (see
        :data:`repro.crypto.costmodel.REQUEST_MESSAGE_BITS`), or
        ``"none"``.
    auth_tag:
        MAC bytes or DER-ish encoded ECDSA pair over
        :meth:`signed_payload`.
    """

    challenge: bytes
    counter: int | None = None
    timestamp_ticks: int | None = None
    nonce: bytes | None = None
    auth_scheme: str = "none"
    auth_tag: bytes = b""

    def __post_init__(self):
        if len(self.challenge) > 0xFFFF:
            raise ProtocolError("challenge too long")
        if self.nonce is not None and len(self.nonce) > 0xFF:
            raise ProtocolError("nonce too long")
        if self.counter is not None and not 0 <= self.counter < _ABSENT:
            raise ProtocolError("counter out of range")
        if (self.timestamp_ticks is not None
                and not 0 <= self.timestamp_ticks < _ABSENT):
            raise ProtocolError("timestamp out of range")

    def signed_payload(self) -> bytes:
        """The bytes the authentication tag covers (everything but the tag)."""
        counter = self.counter if self.counter is not None else _ABSENT
        timestamp = (self.timestamp_ticks if self.timestamp_ticks is not None
                     else _ABSENT)
        nonce = self.nonce if self.nonce is not None else b""
        scheme = self.auth_scheme.encode("ascii")
        return (_REQ_MAGIC
                + struct.pack(">QQ", counter, timestamp)
                + struct.pack(">B", len(nonce)) + nonce
                + struct.pack(">H", len(self.challenge)) + self.challenge
                + struct.pack(">B", len(scheme)) + scheme)

    def to_bytes(self) -> bytes:
        """Full wire encoding (payload + tag)."""
        return (self.signed_payload()
                + struct.pack(">H", len(self.auth_tag)) + self.auth_tag)

    @classmethod
    def from_bytes(cls, data: bytes) -> "AttestationRequest":
        """Parse a wire-encoded request; raises :class:`ProtocolError` on
        malformed input.

        Round-trips :meth:`to_bytes` exactly: the signed payload of the
        parsed message is byte-identical to the original, so tags verify
        across the parse boundary.
        """
        cursor = _Cursor(data, kind="attreq")
        cursor.expect(_REQ_MAGIC)
        counter, timestamp = cursor.unpack(">QQ")
        (nonce_len,) = cursor.unpack(">B")
        nonce = cursor.take(nonce_len)
        (challenge_len,) = cursor.unpack(">H")
        challenge = cursor.take(challenge_len)
        (scheme_len,) = cursor.unpack(">B")
        scheme_bytes = cursor.take(scheme_len)
        (tag_len,) = cursor.unpack(">H")
        tag = cursor.take(tag_len)
        cursor.expect_end()
        try:
            scheme = scheme_bytes.decode("ascii")
        except UnicodeDecodeError as exc:
            raise ProtocolError("attreq scheme is not ASCII") from exc
        return cls(challenge=challenge,
                   counter=None if counter == _ABSENT else counter,
                   timestamp_ticks=None if timestamp == _ABSENT else timestamp,
                   nonce=nonce if nonce_len else None,
                   auth_scheme=scheme, auth_tag=tag)

    def with_tag(self, tag: bytes) -> "AttestationRequest":
        """A copy of this request carrying ``tag``."""
        return AttestationRequest(
            challenge=self.challenge, counter=self.counter,
            timestamp_ticks=self.timestamp_ticks, nonce=self.nonce,
            auth_scheme=self.auth_scheme, auth_tag=tag)

    def describe(self) -> str:
        parts = [f"challenge={self.challenge.hex()[:8]}"]
        if self.counter is not None:
            parts.append(f"counter={self.counter}")
        if self.timestamp_ticks is not None:
            parts.append(f"ts={self.timestamp_ticks}")
        if self.nonce is not None:
            parts.append(f"nonce={self.nonce.hex()[:8]}")
        parts.append(f"auth={self.auth_scheme}")
        return "attreq(" + ", ".join(parts) + ")"


@dataclass(frozen=True)
class AttestationResponse:
    """The prover's answer: an authenticated memory measurement.

    ``measurement`` is the digest of all writable prover memory and
    ``tag`` is the HMAC-SHA1 under ``K_Attest`` over (challenge,
    measurement, freshness echo).  Splitting digest and tag (instead of
    SMART's single keyed MAC over memory) lets the verifier check
    authenticity without holding a byte-exact copy of prover memory; the
    prover-side cycle cost is the same (one extra short HMAC), so the
    paper's DoS numbers are unaffected.  ``request_counter`` /
    ``request_timestamp`` echo the request's freshness fields for
    verifier-side matching.
    """

    challenge: bytes
    measurement: bytes
    request_counter: int | None = None
    request_timestamp: int | None = None
    tag: bytes = b""

    def tagged_payload(self) -> bytes:
        """The bytes the response tag covers."""
        counter = (self.request_counter if self.request_counter is not None
                   else _ABSENT)
        timestamp = (self.request_timestamp
                     if self.request_timestamp is not None else _ABSENT)
        return (_RSP_MAGIC
                + struct.pack(">H", len(self.challenge)) + self.challenge
                + struct.pack(">H", len(self.measurement)) + self.measurement
                + struct.pack(">QQ", counter, timestamp))

    def to_bytes(self) -> bytes:
        return (self.tagged_payload()
                + struct.pack(">H", len(self.tag)) + self.tag)

    @classmethod
    def from_bytes(cls, data: bytes) -> "AttestationResponse":
        """Parse a wire-encoded response (inverse of :meth:`to_bytes`)."""
        cursor = _Cursor(data, kind="attresp")
        cursor.expect(_RSP_MAGIC)
        (challenge_len,) = cursor.unpack(">H")
        challenge = cursor.take(challenge_len)
        (measurement_len,) = cursor.unpack(">H")
        measurement = cursor.take(measurement_len)
        counter, timestamp = cursor.unpack(">QQ")
        (tag_len,) = cursor.unpack(">H")
        tag = cursor.take(tag_len)
        cursor.expect_end()
        return cls(challenge=challenge, measurement=measurement,
                   request_counter=None if counter == _ABSENT else counter,
                   request_timestamp=(None if timestamp == _ABSENT
                                      else timestamp),
                   tag=tag)

    def with_tag(self, tag: bytes) -> "AttestationResponse":
        return AttestationResponse(
            challenge=self.challenge, measurement=self.measurement,
            request_counter=self.request_counter,
            request_timestamp=self.request_timestamp, tag=tag)
