"""The prover's trust anchor (``Code_Attest``) and its device-backed state.

Section 3: "Prv has a trust anchor responsible for measuring Prv's state
and sending the result back to Vrf."  :class:`ProverTrustAnchor` is that
anchor, running on a simulated :class:`~repro.mcu.device.Device`.  Every
piece of sensitive state it touches goes through the device bus under the
``Code_Attest`` (or ``Code_Clock``) execution context, so the EA-MPU
rules installed at boot genuinely gate each access -- on an unprotected
device, malware can manipulate the same words and the attacks of
Section 5 succeed.

The request-handling pipeline charges the simulated cycle costs of
Table 1:

1. validate the authentication tag (0.015 ms Speck ... 170.9 ms ECDSA);
2. check freshness (counter / timestamp / nonce against protected state);
3. measure all writable memory (the 754 ms/512 KB operation);
4. authenticate the response.

Rejections happen as early as possible -- that ordering is the entire
DoS defence: a bogus request must die at step 1-2 cost, never step 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hmac import hmac_sha1
from ..errors import ConfigurationError
from ..mcu.cpu import ExecutionContext
from ..mcu.device import Device
from .authenticator import RequestAuthenticator
from .freshness import FreshnessPolicy
from .messages import AttestationRequest, AttestationResponse

__all__ = ["DeviceStateView", "ProverStats", "ProverTrustAnchor"]


class DeviceStateView:
    """Freshness state backed by real (protected) device memory.

    * the counter / last-timestamp word is ``counter_R`` at
      :attr:`Device.counter_address`, read and written under the
      ``Code_Attest`` context;
    * the clock is whatever :attr:`Device.clock` the device was built
      with, read under ``Code_Attest``;
    * the nonce history lives in ordinary RAM; its growth is tracked so
      the Section 4.2 memory objection is measurable.
    """

    def __init__(self, device: Device, context: ExecutionContext):
        self.device = device
        self.context = context
        self._nonces: set[bytes] = set()

    def get_counter(self) -> int:
        return self.device.read_counter(self.context)

    def set_counter(self, value: int) -> None:
        self.device.write_counter(self.context, value)

    def clock_ticks(self) -> int | None:
        if self.device.clock is None:
            return None
        return self.device.read_clock_ticks(self.context)

    def nonce_seen(self, nonce: bytes) -> bool:
        return nonce in self._nonces

    def forget_nonce(self, nonce: bytes) -> None:
        """Eviction hook used by bounded nonce caches."""
        self._nonces.discard(nonce)

    def remember_nonce(self, nonce: bytes) -> None:
        self._nonces.add(nonce)
        # Nonce history must persist across power cycles, i.e. it occupies
        # non-volatile memory.  Model the capacity limit of the flash.
        capacity = self.device.config.flash_size // 4
        if len(self._nonces) * 16 > capacity:
            raise ConfigurationError(
                "nonce history exhausted prover non-volatile storage "
                f"({len(self._nonces)} nonces)")

    @property
    def nonce_count(self) -> int:
        return len(self._nonces)


@dataclass
class ProverStats:
    """Operational counters of one trust anchor."""

    received: int = 0
    accepted: int = 0
    rejected: dict = field(default_factory=dict)
    validation_cycles: int = 0
    attestation_cycles: int = 0

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())


class ProverTrustAnchor:
    """``Code_Attest``: validates requests and produces measurements.

    Parameters
    ----------
    device:
        A provisioned, booted :class:`~repro.mcu.device.Device`.
    authenticator:
        Request authentication scheme (prover side).  The shared key it
        embeds must equal the device's provisioned ``K_Attest`` for the
        end-to-end protocol to verify -- the anchor double-checks by
        reading the key through the EA-MPU at construction.
    policy:
        Freshness policy (prover half).
    """

    def __init__(self, device: Device, authenticator: RequestAuthenticator,
                 policy: FreshnessPolicy, *,
                 min_interval_seconds: float = 0.0):
        if not device.booted:
            raise ConfigurationError("device must be booted before attaching "
                                     "the trust anchor")
        if min_interval_seconds < 0:
            raise ConfigurationError("rate-limit interval cannot be negative")
        self.device = device
        self.authenticator = authenticator
        self.policy = policy
        #: Naive alternative defence: refuse to attest more often than
        #: once per interval.  Kept for the ablation that shows why the
        #: paper authenticates instead -- a rate limit caps flood damage
        #: but hands the adversary a cheap lock-out of *genuine* requests
        #: (send one forgery just before each real request).
        self.min_interval_seconds = min_interval_seconds
        self._last_attest_seconds: float | None = None
        self.context = device.context("Code_Attest")
        self.state = DeviceStateView(device, self.context)
        self.stats = ProverStats()
        #: (start_seconds, end_seconds) intervals the CPU spent attesting,
        #: for the primary-task interference analysis.
        self.busy_intervals: list[tuple[float, float]] = []

    # ------------------------------------------------------------------

    def read_attestation_key(self) -> bytes:
        """Fetch ``K_Attest`` under the ``Code_Attest`` context."""
        return self.device.read_key(self.context)

    def handle_request(self, request: AttestationRequest
                       ) -> tuple[AttestationResponse | None, str]:
        """Process one ``attreq``.

        Returns ``(response, "ok")`` on acceptance or ``(None, reason)``
        on rejection.  All cycle costs are charged to the device.
        """
        self.stats.received += 1
        cpu = self.device.cpu

        # Step 1: authenticate the request.
        start = cpu.cycle_count
        cpu.consume_cycles(
            self.authenticator.prover_validation_cycles(self.device.cost_model))
        authentic = self.authenticator.verify(request.signed_payload(),
                                              request.auth_tag)
        self.stats.validation_cycles += cpu.cycle_count - start
        if not authentic:
            self.stats.reject("bad-auth")
            return None, "bad-auth"

        # Step 2: freshness.
        fresh, reason = self.policy.check(request, self.state)
        if not fresh:
            self.stats.reject(reason)
            return None, reason

        # Step 2b (optional, naive-alternative ablation): rate limiting.
        # Checked before commit so a limited request burns no freshness
        # state.
        if self.min_interval_seconds > 0.0:
            now = cpu.elapsed_seconds
            if (self._last_attest_seconds is not None
                    and now - self._last_attest_seconds
                    < self.min_interval_seconds):
                self.stats.reject("rate-limited")
                return None, "rate-limited"
            self._last_attest_seconds = now
        self.policy.commit(request, self.state)

        # Step 3: the expensive measurement.
        start = cpu.cycle_count
        start_seconds = cpu.elapsed_seconds
        digest = self.device.digest_writable_memory(self.context)

        # Step 4: authenticate the response.
        response = AttestationResponse(
            challenge=request.challenge, measurement=digest,
            request_counter=request.counter,
            request_timestamp=request.timestamp_ticks)
        key = self.read_attestation_key()
        payload = response.tagged_payload()
        cpu.consume_cycles(
            self.device.cost_model.hmac_cycles(len(payload), mode="table"))
        response = response.with_tag(hmac_sha1(key, payload))

        self.stats.attestation_cycles += cpu.cycle_count - start
        self.stats.accepted += 1
        self.busy_intervals.append((start_seconds, cpu.elapsed_seconds))
        return response, "ok"

    # ------------------------------------------------------------------

    @property
    def wasted_cycles(self) -> int:
        """Cycles spent on requests that were ultimately rejected, plus
        validation of accepted ones -- the DoS overhead a defended prover
        still pays (the Section 4.1 paradox in cycle form)."""
        return self.stats.validation_cycles

    def freshness_state_bytes(self) -> int:
        """Prover memory the freshness policy currently occupies."""
        return self.policy.prover_state_bytes(self.state)
