"""The prover's trust anchor (``Code_Attest``) and its device-backed state.

Section 3: "Prv has a trust anchor responsible for measuring Prv's state
and sending the result back to Vrf."  :class:`ProverTrustAnchor` is that
anchor, running on a simulated :class:`~repro.mcu.device.Device`.  Every
piece of sensitive state it touches goes through the device bus under the
``Code_Attest`` (or ``Code_Clock``) execution context, so the EA-MPU
rules installed at boot genuinely gate each access -- on an unprotected
device, malware can manipulate the same words and the attacks of
Section 5 succeed.

The request-handling pipeline charges the simulated cycle costs of
Table 1:

1. validate the authentication tag (0.015 ms Speck ... 170.9 ms ECDSA);
2. check freshness (counter / timestamp / nonce against protected state);
3. measure all writable memory (the 754 ms/512 KB operation);
4. authenticate the response.

Rejections happen as early as possible -- that ordering is the entire
DoS defence: a bogus request must die at step 1-2 cost, never step 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hmac import hmac_sha1
from ..errors import ConfigurationError
from ..mcu.cpu import ExecutionContext
from ..mcu.device import Device
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .authenticator import RequestAuthenticator
from .freshness import FreshnessPolicy, NonceHistory
from .messages import AttestationRequest, AttestationResponse

__all__ = ["DeviceStateView", "ProverStats", "ProverTrustAnchor"]


class DeviceStateView:
    """Freshness state backed by real (protected) device memory.

    * the counter / last-timestamp word is ``counter_R`` at
      :attr:`Device.counter_address`, read and written under the
      ``Code_Attest`` context;
    * the clock is whatever :attr:`Device.clock` the device was built
      with, read under ``Code_Attest``;
    * the nonce history lives in ordinary RAM; its growth is tracked so
      the Section 4.2 memory objection is measurable.
    """

    def __init__(self, device: Device, context: ExecutionContext):
        self.device = device
        self.context = context
        self._nonces = NonceHistory()

    def get_counter(self) -> int:
        return self.device.read_counter(self.context)

    def set_counter(self, value: int) -> None:
        self.device.write_counter(self.context, value)

    def clock_ticks(self) -> int | None:
        if self.device.clock is None:
            return None
        return self.device.read_clock_ticks(self.context)

    def nonce_seen(self, nonce: bytes) -> bool:
        return nonce in self._nonces

    def forget_nonce(self, nonce: bytes) -> None:
        """Eviction hook used by bounded nonce caches."""
        self._nonces.discard(nonce)

    def pop_oldest_nonce(self) -> bytes | None:
        """FIFO eviction for bounded nonce caches (this view's history
        only -- a shared policy never evicts across provers)."""
        return self._nonces.pop_oldest()

    def remember_nonce(self, nonce: bytes) -> None:
        self._nonces.add(nonce)
        # Nonce history must persist across power cycles, i.e. it occupies
        # non-volatile memory.  Model the capacity limit of the flash,
        # charging each nonce at its actual length (policies with
        # non-default nonce_size must account storage correctly).
        capacity = self.device.config.flash_size // 4
        if self._nonces.stored_bytes > capacity:
            raise ConfigurationError(
                "nonce history exhausted prover non-volatile storage "
                f"({len(self._nonces)} nonces, "
                f"{self._nonces.stored_bytes} bytes)")

    @property
    def nonce_count(self) -> int:
        return len(self._nonces)

    @property
    def nonce_bytes(self) -> int:
        """Non-volatile bytes the nonce history currently occupies."""
        return self._nonces.stored_bytes


@dataclass
class ProverStats:
    """Operational counters of one trust anchor."""

    received: int = 0
    accepted: int = 0
    rejected: dict = field(default_factory=dict)
    validation_cycles: int = 0
    attestation_cycles: int = 0

    def reject(self, reason: str) -> None:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    @property
    def rejected_total(self) -> int:
        return sum(self.rejected.values())


class ProverTrustAnchor:
    """``Code_Attest``: validates requests and produces measurements.

    Parameters
    ----------
    device:
        A provisioned, booted :class:`~repro.mcu.device.Device`.
    authenticator:
        Request authentication scheme (prover side).  The shared key it
        embeds must equal the device's provisioned ``K_Attest`` for the
        end-to-end protocol to verify -- the anchor double-checks by
        reading the key through the EA-MPU at construction.
    policy:
        Freshness policy (prover half).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` sink; defaults
        to the shared no-op sink, so un-observed provers pay nothing.
    """

    def __init__(self, device: Device, authenticator: RequestAuthenticator,
                 policy: FreshnessPolicy, *,
                 min_interval_seconds: float = 0.0,
                 telemetry: Telemetry | None = None):
        if not device.booted:
            raise ConfigurationError("device must be booted before attaching "
                                     "the trust anchor")
        if min_interval_seconds < 0:
            raise ConfigurationError("rate-limit interval cannot be negative")
        self.device = device
        self.authenticator = authenticator
        self.policy = policy
        #: Naive alternative defence: refuse to attest more often than
        #: once per interval.  Kept for the ablation that shows why the
        #: paper authenticates instead -- a rate limit caps flood damage
        #: but hands the adversary a cheap lock-out of *genuine* requests
        #: (send one forgery just before each real request).
        self.min_interval_seconds = min_interval_seconds
        self._last_attest_seconds: float | None = None
        self.context = device.context("Code_Attest")
        self.state = DeviceStateView(device, self.context)
        self.stats = ProverStats()
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: (start_seconds, end_seconds) intervals the CPU spent attesting,
        #: for the primary-task interference analysis.
        self.busy_intervals: list[tuple[float, float]] = []

    # ------------------------------------------------------------------

    def read_attestation_key(self) -> bytes:
        """Fetch ``K_Attest`` under the ``Code_Attest`` context."""
        return self.device.read_key(self.context)

    def handle_request(self, request: AttestationRequest
                       ) -> tuple[AttestationResponse | None, str]:
        """Process one ``attreq``.

        Returns ``(response, "ok")`` on acceptance or ``(None, reason)``
        on rejection.  All cycle costs are charged to the device.
        """
        self.stats.received += 1
        cpu = self.device.cpu
        telemetry = self.telemetry
        telemetry.count("prover.requests.received")
        telemetry.event("request-received", cpu.elapsed_seconds,
                        scheme=request.auth_scheme)

        # Step 1: authenticate the request.
        start = cpu.cycle_count
        cpu.consume_cycles(
            self.authenticator.prover_validation_cycles(self.device.cost_model))
        authentic = self.authenticator.verify(request.signed_payload(),
                                              request.auth_tag)
        validation_cycles = cpu.cycle_count - start
        self.stats.validation_cycles += validation_cycles
        telemetry.count("prover.validation_cycles", validation_cycles)
        telemetry.observe("prover.validation_cycles_per_request",
                          validation_cycles)
        if not authentic:
            return self._reject("bad-auth")

        # Step 2: freshness.
        fresh, reason = self.policy.check(request, self.state)
        if not fresh:
            return self._reject(reason)

        # Step 2b (optional, naive-alternative ablation): rate limiting.
        # Checked before commit so a limited request burns no freshness
        # state.
        if self.min_interval_seconds > 0.0:
            now = cpu.elapsed_seconds
            if (self._last_attest_seconds is not None
                    and now - self._last_attest_seconds
                    < self.min_interval_seconds):
                return self._reject("rate-limited")
            self._last_attest_seconds = now
        self.policy.commit(request, self.state)

        # Step 3: the expensive measurement.
        start = cpu.cycle_count
        start_seconds = cpu.elapsed_seconds
        telemetry.event("measurement-start", start_seconds,
                        bytes=self.device.writable_memory_bytes)
        digest = self.device.digest_writable_memory(self.context)
        telemetry.event("measurement-end", cpu.elapsed_seconds,
                        cycles=cpu.cycle_count - start)

        # Step 4: authenticate the response.
        response = AttestationResponse(
            challenge=request.challenge, measurement=digest,
            request_counter=request.counter,
            request_timestamp=request.timestamp_ticks)
        key = self.read_attestation_key()
        payload = response.tagged_payload()
        cpu.consume_cycles(
            self.device.cost_model.hmac_cycles(len(payload), mode="table"))
        response = response.with_tag(hmac_sha1(key, payload))

        attestation_cycles = cpu.cycle_count - start
        self.stats.attestation_cycles += attestation_cycles
        self.stats.accepted += 1
        self.busy_intervals.append((start_seconds, cpu.elapsed_seconds))
        telemetry.count("prover.requests.accepted")
        telemetry.count("prover.attestation_cycles", attestation_cycles)
        telemetry.observe("prover.attestation_cycles_per_request",
                          attestation_cycles)
        telemetry.event("request-accepted", cpu.elapsed_seconds,
                        attestation_cycles=attestation_cycles)
        self._publish_state_gauges()
        return response, "ok"

    def _reject(self, reason: str) -> tuple[None, str]:
        """Book one rejection in the stats and the telemetry sink."""
        self.stats.reject(reason)
        self.telemetry.count("prover.requests.rejected", reason=reason)
        self.telemetry.event("request-rejected",
                             self.device.cpu.elapsed_seconds, reason=reason)
        return None, reason

    def _publish_state_gauges(self) -> None:
        """Refresh the freshness-state gauges after an accepted round."""
        self.telemetry.set_gauge("prover.freshness_state_bytes",
                                 self.freshness_state_bytes(),
                                 policy=self.policy.name)
        self.telemetry.set_gauge("prover.nonce_count",
                                 self.state.nonce_count)

    # ------------------------------------------------------------------

    @property
    def wasted_cycles(self) -> int:
        """Cycles spent on requests that were ultimately rejected, plus
        validation of accepted ones -- the DoS overhead a defended prover
        still pays (the Section 4.1 paradox in cycle form)."""
        return self.stats.validation_cycles

    def freshness_state_bytes(self) -> int:
        """Prover memory the freshness policy currently occupies."""
        return self.policy.prover_state_bytes(self.state)
