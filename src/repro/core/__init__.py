"""The attestation protocol: the paper's primary contribution.

Request/response wire formats (:mod:`~repro.core.messages`), request
authentication schemes (:mod:`~repro.core.authenticator`, Section 4.1),
freshness policies (:mod:`~repro.core.freshness`, Section 4.2), the
prover trust anchor and verifier (:mod:`~repro.core.prover`,
:mod:`~repro.core.verifier`), and session assembly
(:mod:`~repro.core.protocol`).
"""

from .analysis import AttackOutcome, MitigationMatrix, render_table
from .authenticator import (AesCbcMacAuthenticator, EcdsaAuthenticator,
                            HmacAuthenticator, NullAuthenticator,
                            RequestAuthenticator, SpeckCbcMacAuthenticator,
                            make_symmetric_authenticator)
from .freshness import (CounterPolicy, FreshnessPolicy, InMemoryStateView,
                        NoFreshness, NonceHistoryPolicy, POLICY_NAMES,
                        TimestampPolicy, VerifierFreshnessState, make_policy)
from .messages import AttestationRequest, AttestationResponse
from .modelcheck import (ModelCheckResult, check_policy,
                         table2_from_model_checking)
from .protocol import ProverNode, Session, VerifierNode, build_session
from .prover import DeviceStateView, ProverStats, ProverTrustAnchor
from .resilience import (BREAKER_STATES, CircuitBreaker, ResilientOutcome,
                         RetryPolicy)
from .verifier import VerificationResult, Verifier

__all__ = [
    "AesCbcMacAuthenticator", "AttackOutcome", "AttestationRequest",
    "AttestationResponse", "BREAKER_STATES", "CircuitBreaker",
    "CounterPolicy", "DeviceStateView",
    "EcdsaAuthenticator", "FreshnessPolicy", "HmacAuthenticator",
    "InMemoryStateView", "MitigationMatrix", "ModelCheckResult",
    "NoFreshness",
    "NonceHistoryPolicy", "NullAuthenticator", "POLICY_NAMES", "ProverNode",
    "ProverStats", "ProverTrustAnchor", "RequestAuthenticator",
    "ResilientOutcome", "RetryPolicy", "Session",
    "SpeckCbcMacAuthenticator", "TimestampPolicy", "VerificationResult",
    "Verifier", "VerifierFreshnessState", "VerifierNode", "build_session",
    "check_policy", "make_policy", "make_symmetric_authenticator",
    "render_table", "table2_from_model_checking",
]
