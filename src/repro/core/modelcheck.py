"""Exhaustive model checking of freshness-policy state machines.

The attack scenarios in :mod:`repro.attacks` demonstrate *specific*
schedules (one replay, one reorder...).  This module complements them by
enumerating **every** network schedule an external adversary can produce
from a bounded set of genuine requests -- all interleavings of deliveries,
duplicate deliveries (replays) and drops, at all representative delays --
and checking the freshness policies' safety/liveness properties over the
whole space:

* **no-double-acceptance** -- no single genuine request is ever accepted
  twice (replay safety);
* **no-stale-acceptance** -- an accepted request was issued within the
  policy's freshness horizon of its delivery (delay safety, timestamp
  policy only);
* **order-safety** -- accepted requests are accepted in issue order
  (reorder safety, counter/timestamp policies);
* **honest-liveness** -- under the in-order, un-tampered schedule with
  the paper's inter-spacing assumption, every genuine request is
  accepted.

Because policy state is tiny (a counter word / a nonce set / a clock),
exhaustive enumeration over 3-4 requests with replays covers the
reachable state space that matters; Table 2's rows fall out as which
properties each policy satisfies.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import ConfigurationError
from .freshness import FreshnessPolicy, InMemoryStateView, make_policy
from .messages import AttestationRequest
from .freshness import VerifierFreshnessState
from ..crypto.rng import DeterministicRng

__all__ = ["ScheduledDelivery", "Violation", "ModelCheckResult",
           "check_policy", "table2_from_model_checking"]


@dataclass(frozen=True)
class ScheduledDelivery:
    """One delivery event: genuine request ``index`` arrives at ``time``."""

    index: int       # which genuine request (issue order)
    time: float      # delivery time in seconds


@dataclass(frozen=True)
class Violation:
    """A property violation found by the checker."""

    property_name: str
    schedule: tuple[ScheduledDelivery, ...]
    detail: str


@dataclass
class ModelCheckResult:
    """Outcome of checking one policy over the full schedule space."""

    policy_name: str
    schedules_checked: int = 0
    violations: list[Violation] = field(default_factory=list)
    #: Properties that held over every schedule.
    holds: set[str] = field(default_factory=set)
    #: Properties violated by at least one schedule (with witnesses).
    fails: set[str] = field(default_factory=set)

    def witnesses(self, property_name: str) -> list[Violation]:
        return [v for v in self.violations
                if v.property_name == property_name]


PROPERTIES = ("no-double-acceptance", "no-stale-acceptance",
              "order-safety", "honest-liveness")


def _issue_requests(policy: FreshnessPolicy, count: int,
                    spacing: float) -> list[tuple[AttestationRequest, float]]:
    """Issue ``count`` genuine requests at ``spacing``-second intervals.

    Returns (request, issue_time) pairs.  Timestamps are in integer ticks
    at 1000 ticks/second, matching the checker's clock.
    """
    issued = []
    current_time = [spacing]  # start after the epoch
    state = VerifierFreshnessState(
        rng=DeterministicRng("modelcheck"),
        clock_ticks=lambda: int(current_time[0] * 1000))
    for index in range(count):
        fields = policy.stamp(state)
        issued.append((AttestationRequest(challenge=bytes([index]) * 16,
                                          **fields),
                       current_time[0]))
        current_time[0] += spacing
    return issued


def _enumerate_schedules(count: int, delays: tuple[float, ...],
                         max_copies: int):
    """Yield adversary schedules.

    Each genuine request may be delivered 0..max_copies times; each copy
    independently picks a delay from ``delays``.  All resulting delivery
    multisets are then considered in every arrival order consistent with
    their times (ties broken by enumeration), which the sort below gives
    us deterministically.
    """
    per_request_options = []
    for _ in range(count):
        options = [()]  # dropped entirely
        copy_choices = []
        for copies in range(1, max_copies + 1):
            copy_choices.extend(itertools.combinations_with_replacement(
                delays, copies))
        options.extend(copy_choices)
        per_request_options.append(options)
    for combo in itertools.product(*per_request_options):
        yield combo


def check_policy(policy_name: str, *, requests: int = 3,
                 spacing: float = 3.0, window: float = 1.0,
                 delays: tuple[float, ...] = (0.0, 4.0, 8.0),
                 max_copies: int = 2,
                 min_replay_delay: float | None = None,
                 max_entries: int | None = None,
                 monotonic_timestamps: bool = False) -> ModelCheckResult:
    """Exhaustively check ``policy_name`` over the bounded schedule space.

    Parameters mirror the paper's assumptions: ``spacing`` between genuine
    requests exceeds the timestamp ``window``; ``delays`` include zero
    (prompt delivery), a delay past the window but inside the spacing, and
    a delay past several spacings.

    ``min_replay_delay`` restricts the adversary: when set, every delivery
    of a request *after its first* must be delayed at least that much.
    The paper's Table 2 "timestamps detect replay" claim implicitly
    assumes the roaming-style adversary replays *later* (after the
    window); leaving this ``None`` checks the unrestricted Dolev-Yao
    adversary, under which exhaustive enumeration exposes the
    immediate-replay gap of the stateless timestamp scheme (closed by
    ``monotonic_timestamps=True`` -- see the ablation benchmark).

    ``max_entries`` bounds the nonce policy's prover-side cache; a small
    bound makes the checker exhibit the eviction-replay violation the
    paper uses to reject truncated nonce histories (Section 4.2).
    """
    if spacing <= window:
        raise ConfigurationError(
            "the paper's inter-spacing assumption requires spacing > window")
    result = ModelCheckResult(policy_name=policy_name)
    window_ticks = int(window * 1000)

    def fresh_policy() -> FreshnessPolicy:
        return make_policy(policy_name, window_ticks=window_ticks,
                           max_entries=max_entries,
                           monotonic_timestamps=monotonic_timestamps)

    issued = _issue_requests(fresh_policy(), requests, spacing)
    failed: set[str] = set()

    for combo in _enumerate_schedules(requests, delays, max_copies):
        if min_replay_delay is not None and any(
                sorted(delay_tuple)[1:]
                and sorted(delay_tuple)[1] < min_replay_delay
                for delay_tuple in combo if len(delay_tuple) > 1):
            continue
        deliveries = []
        for index, delay_tuple in enumerate(combo):
            for delay in delay_tuple:
                deliveries.append(ScheduledDelivery(
                    index, issued[index][1] + delay))
        deliveries.sort(key=lambda d: (d.time, d.index))
        schedule = tuple(deliveries)

        policy = fresh_policy()
        view = InMemoryStateView()
        acceptance_order: list[int] = []
        accepted_counts = [0] * requests

        for delivery in deliveries:
            request, issue_time = issued[delivery.index]
            view.clock = int(delivery.time * 1000)
            ok, _reason = policy.check(request, view)
            if ok:
                policy.commit(request, view)
                acceptance_order.append(delivery.index)
                accepted_counts[delivery.index] += 1
                if accepted_counts[delivery.index] > 1:
                    failed.add("no-double-acceptance")
                    result.violations.append(Violation(
                        "no-double-acceptance", schedule,
                        f"request {delivery.index} accepted "
                        f"{accepted_counts[delivery.index]} times"))
                if delivery.time - issue_time > window:
                    failed.add("no-stale-acceptance")
                    result.violations.append(Violation(
                        "no-stale-acceptance", schedule,
                        f"request {delivery.index} accepted "
                        f"{delivery.time - issue_time:.1f}s after issue"))
        if acceptance_order != sorted(acceptance_order):
            failed.add("order-safety")
            result.violations.append(Violation(
                "order-safety", schedule,
                f"acceptance order {acceptance_order}"))
        result.schedules_checked += 1

    # Honest-liveness: the benign schedule (each request delivered once,
    # promptly, in order) must accept everything.
    policy = fresh_policy()
    view = InMemoryStateView()
    for index, (request, issue_time) in enumerate(issued):
        view.clock = int(issue_time * 1000)
        ok, reason = policy.check(request, view)
        if ok:
            policy.commit(request, view)
        else:
            failed.add("honest-liveness")
            result.violations.append(Violation(
                "honest-liveness", (),
                f"benign request {index} rejected: {reason}"))

    result.fails = failed
    result.holds = set(PROPERTIES) - failed
    return result


#: Which checker properties correspond to which Table 2 attack rows.
_PROPERTY_TO_ATTACK = {
    "no-double-acceptance": "replay",
    "order-safety": "reorder",
    "no-stale-acceptance": "delay",
}


def table2_from_model_checking(*, paper_assumptions: bool = True,
                               **kwargs) -> dict[str, set[str]]:
    """Derive Table 2 rows from exhaustive checking.

    Returns ``{feature: set of attacks mitigated}`` in the same format as
    :data:`repro.attacks.scenarios.TABLE2_EXPECTED`, but justified by the
    *entire* bounded schedule space rather than single scripted attacks.

    With ``paper_assumptions=True`` (default) replays are restricted to
    occur after the acceptance window, matching the paper's implicit
    adversary; the result then reproduces Table 2 exactly.  With
    ``paper_assumptions=False`` the unrestricted adversary is checked,
    and the timestamp row loses its replay tick (the immediate-replay
    gap -- see EXPERIMENTS.md).
    """
    if paper_assumptions:
        kwargs.setdefault("min_replay_delay",
                          kwargs.get("window", 1.0) + 1.0)
    table = {}
    for feature in ("nonce", "counter", "timestamp"):
        result = check_policy(feature, **kwargs)
        mitigated = {attack for prop, attack in _PROPERTY_TO_ATTACK.items()
                     if prop in result.holds}
        table[feature] = mitigated
    return table
