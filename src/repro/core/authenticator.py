"""Request authentication schemes (Section 4.1).

"In order to mitigate bogus attestation requests ... the verifier must
authenticate itself to the prover."  Four concrete schemes from Table 1,
plus the null scheme that models today's unauthenticated protocols:

=========================  ============================  =================
Scheme                     Tag construction               Prover cost
=========================  ============================  =================
``none``                   (no tag)                       0 ms
``speck-64/128-cbc-mac``   Speck CBC-MAC                  0.015 ms
``aes-128-cbc-mac``        AES-128 CBC-MAC                0.288 ms
``hmac-sha1``              HMAC-SHA1                      0.430 ms
``ecdsa-secp160r1``        ECDSA signature                170.907 ms (!)
=========================  ============================  =================

The ECDSA row is the paper's paradox: authenticating a request costs the
prover almost as much as attestation itself, so public-key schemes are
ruled out for low-end provers.

Authenticators are symmetric objects: the verifier calls :meth:`tag`, the
prover calls :meth:`verify`.  For ECDSA the two sides are constructed
differently (signer holds the private key, verifier of the tag -- i.e.
the prover -- holds only the public point).
"""

from __future__ import annotations

from ..crypto.aes import AES128
from ..crypto.costmodel import CryptoCostModel
from ..crypto.ecc import (CurveParams, EccPoint, EcdsaKeyPair, SECP160R1,
                          ecdsa_sign, ecdsa_verify)
from ..crypto.hmac import constant_time_compare, hmac_sha1
from ..crypto.modes import cbc_mac
from ..crypto.speck import Speck64_128
from ..errors import ConfigurationError, InvalidSignatureError

__all__ = ["RequestAuthenticator", "NullAuthenticator", "HmacAuthenticator",
           "AesCbcMacAuthenticator", "SpeckCbcMacAuthenticator",
           "EcdsaAuthenticator", "make_symmetric_authenticator"]


class RequestAuthenticator:
    """Interface: produce and check request authentication tags."""

    scheme: str = "abstract"

    def tag(self, payload: bytes) -> bytes:
        """Verifier side: compute the tag over ``payload``."""
        raise NotImplementedError

    def verify(self, payload: bytes, tag: bytes) -> bool:
        """Prover side: check ``tag`` over ``payload``."""
        raise NotImplementedError

    def prover_validation_cycles(self, model: CryptoCostModel) -> int:
        """Simulated cycle cost of one prover-side validation."""
        return model.request_validation_cycles(self.scheme)


class NullAuthenticator(RequestAuthenticator):
    """No authentication: every request is 'valid' (the DoS baseline)."""

    scheme = "none"

    def tag(self, payload: bytes) -> bytes:
        return b""

    def verify(self, payload: bytes, tag: bytes) -> bool:
        return True


class HmacAuthenticator(RequestAuthenticator):
    """HMAC-SHA1 over the request payload under the shared key."""

    scheme = "hmac-sha1"

    def __init__(self, key: bytes):
        self._key = bytes(key)

    def tag(self, payload: bytes) -> bytes:
        return hmac_sha1(self._key, payload)

    def verify(self, payload: bytes, tag: bytes) -> bool:
        return constant_time_compare(self.tag(payload), tag)


class AesCbcMacAuthenticator(RequestAuthenticator):
    """AES-128 CBC-MAC over the request payload."""

    scheme = "aes-128-cbc-mac"

    def __init__(self, key: bytes):
        self._cipher = AES128(key)

    def tag(self, payload: bytes) -> bytes:
        return cbc_mac(self._cipher, payload)

    def verify(self, payload: bytes, tag: bytes) -> bool:
        return constant_time_compare(self.tag(payload), tag)


class SpeckCbcMacAuthenticator(RequestAuthenticator):
    """Speck 64/128 CBC-MAC: the paper's cheapest viable scheme."""

    scheme = "speck-64/128-cbc-mac"

    def __init__(self, key: bytes):
        self._cipher = Speck64_128(key)

    def tag(self, payload: bytes) -> bytes:
        return cbc_mac(self._cipher, payload)

    def verify(self, payload: bytes, tag: bytes) -> bool:
        return constant_time_compare(self.tag(payload), tag)


class EcdsaAuthenticator(RequestAuthenticator):
    """ECDSA over secp160r1: ruled out by the paper, kept as the baseline.

    Build the verifier side with :meth:`signer` (private key) and the
    prover side with :meth:`checker` (public key only -- stored in the
    prover's "non-malleable memory", Section 4.1).
    """

    scheme = "ecdsa-secp160r1"
    _SIG_BYTES = 21  # per component on secp160r1 (161-bit order)

    def __init__(self, *, keypair: EcdsaKeyPair | None = None,
                 public: EccPoint | None = None,
                 curve: CurveParams = SECP160R1):
        if keypair is None and public is None:
            raise ConfigurationError("EcdsaAuthenticator needs a key")
        self._keypair = keypair
        self._public = keypair.public if keypair is not None else public
        self._curve = curve

    @classmethod
    def signer(cls, keypair: EcdsaKeyPair) -> "EcdsaAuthenticator":
        return cls(keypair=keypair)

    @classmethod
    def checker(cls, public: EccPoint,
                curve: CurveParams = SECP160R1) -> "EcdsaAuthenticator":
        return cls(public=public, curve=curve)

    def tag(self, payload: bytes) -> bytes:
        if self._keypair is None:
            raise ConfigurationError("this side holds no signing key")
        r, s = ecdsa_sign(self._keypair, payload)
        return (r.to_bytes(self._SIG_BYTES, "big")
                + s.to_bytes(self._SIG_BYTES, "big"))

    def verify(self, payload: bytes, tag: bytes) -> bool:
        if len(tag) != 2 * self._SIG_BYTES:
            return False
        r = int.from_bytes(tag[:self._SIG_BYTES], "big")
        s = int.from_bytes(tag[self._SIG_BYTES:], "big")
        try:
            return ecdsa_verify(self._curve, self._public, payload, (r, s))
        except InvalidSignatureError:
            return False


_SYMMETRIC_SCHEMES = {
    "none": lambda key: NullAuthenticator(),
    "hmac-sha1": HmacAuthenticator,
    "aes-128-cbc-mac": AesCbcMacAuthenticator,
    "speck-64/128-cbc-mac": SpeckCbcMacAuthenticator,
}


def make_symmetric_authenticator(scheme: str, key: bytes) -> RequestAuthenticator:
    """Construct a shared-key authenticator by scheme name."""
    try:
        factory = _SYMMETRIC_SCHEMES[scheme]
    except KeyError:
        raise ConfigurationError(
            f"unknown symmetric auth scheme {scheme!r}; choose from "
            f"{sorted(_SYMMETRIC_SCHEMES)}") from None
    return factory(key)
