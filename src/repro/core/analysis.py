"""Result types and report rendering for the security experiments.

The attack scenarios in :mod:`repro.attacks` produce
:class:`AttackOutcome` records; this module aggregates them into the
paper's tables -- most importantly the Table 2 mitigation matrix -- and
renders aligned-text reports the benchmark harness prints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AttackOutcome", "MitigationMatrix", "render_table",
           "CHECK", "DASH"]

CHECK = "yes"
DASH = "-"


@dataclass(frozen=True)
class AttackOutcome:
    """Result of running one attack scenario.

    Attributes
    ----------
    attack:
        Attack name, e.g. ``"replay"``, ``"roam-counter-rollback"``.
    defence:
        The configuration under attack, e.g. ``"counter"`` or
        ``"roam-hardened/hw64"``.
    succeeded:
        True when the adversary achieved its goal (the prover performed
        unauthorised attestation work / accepted a stale request).
    detectable:
        Whether the attack left after-the-fact evidence on the prover
        (Section 5 distinguishes the counter rollback, which is
        undetectable, from the clock reset, which leaves the clock
        behind).  ``None`` when not applicable.
    prover_wasted_cycles:
        Cycles the prover burned because of the attack.
    detail:
        Free-form explanation for the report.
    """

    attack: str
    defence: str
    succeeded: bool
    detectable: bool | None = None
    prover_wasted_cycles: int = 0
    detail: str = ""

    @property
    def mitigated(self) -> bool:
        return not self.succeeded


@dataclass
class MitigationMatrix:
    """Attack x feature grid (the shape of Table 2)."""

    attacks: list[str]
    features: list[str]
    outcomes: dict = field(default_factory=dict)  # (attack, feature) -> AttackOutcome

    def record(self, outcome: AttackOutcome) -> None:
        self.outcomes[(outcome.attack, outcome.defence)] = outcome

    def mitigated(self, attack: str, feature: str) -> bool:
        return self.outcomes[(attack, feature)].mitigated

    def cell(self, attack: str, feature: str) -> str:
        return CHECK if self.mitigated(attack, feature) else DASH

    def as_rows(self) -> list[list[str]]:
        header = ["Attack"] + list(self.features)
        rows = [header]
        for attack in self.attacks:
            rows.append([attack] + [self.cell(attack, f)
                                    for f in self.features])
        return rows

    def matches(self, expectations: dict) -> bool:
        """Compare against Table 2 expectations:
        ``{feature: set-of-mitigated-attacks}``."""
        for feature in self.features:
            expected = expectations.get(feature, set())
            for attack in self.attacks:
                if self.mitigated(attack, feature) != (attack in expected):
                    return False
        return True


def render_table(rows: list[list[str]], *, title: str | None = None) -> str:
    """Render rows as an aligned text table (first row is the header)."""
    if not rows:
        return ""
    widths = [max(len(str(row[i])) for row in rows)
              for i in range(len(rows[0]))]
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * w for w in widths)
    for index, row in enumerate(rows):
        lines.append(" | ".join(str(cell).ljust(width)
                                for cell, width in zip(row, widths)))
        if index == 0:
            lines.append(separator)
    return "\n".join(lines)
