"""Freshness policies: nonces, counters, timestamps (Section 4.2).

"Mere authentication of attestation requests is insufficient to mitigate
DoS attacks" -- a recorded genuine request replays perfectly.  The paper
compares three freshness features (Table 2):

============  ========  =========  ========  =======================
Feature       Replay    Reorder    Delay     Prover-side state
============  ========  =========  ========  =======================
Nonces        yes       no         no        full nonce history (!)
Counter       yes       yes        no        one counter word
Timestamps    yes       yes        yes       a real-time clock
============  ========  =========  ========  =======================

Policies are split into a verifier half (:meth:`FreshnessPolicy.stamp`
fills the request's freshness fields from :class:`VerifierFreshnessState`)
and a prover half (:meth:`check` / :meth:`commit` against a
:class:`ProverStateView`).  The prover half is *pure policy*: the state
view is an adapter, so the same logic runs against device-backed state
(EA-MPU-protected words) in the simulator and against plain dictionaries
in the property-based model checker.

The ``expected_mitigations`` attribute records Table 2's claims; the
Table 2 benchmark *derives* the actual matrix from attack scenarios and
compares it against these expectations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

from ..crypto.rng import DeterministicRng
from ..errors import ConfigurationError
from .messages import AttestationRequest

__all__ = ["ProverStateView", "InMemoryStateView", "NonceHistory",
           "VerifierFreshnessState",
           "FreshnessPolicy", "NoFreshness", "NonceHistoryPolicy",
           "CounterPolicy", "TimestampPolicy", "make_policy", "POLICY_NAMES"]


class ProverStateView(Protocol):
    """The prover-side state a freshness policy reads and writes.

    On a real device this is ``counter_R`` (also reused as the
    last-accepted-timestamp word), the real-time clock, and whatever
    memory the nonce history occupies.  The nonce history is *ordered*
    (insertion order) and owned by the view: a bounded cache evicts via
    :meth:`pop_oldest_nonce`, so one policy object shared between
    several provers never evicts across views.
    """

    def get_counter(self) -> int: ...

    def set_counter(self, value: int) -> None: ...

    def clock_ticks(self) -> int | None: ...

    def nonce_seen(self, nonce: bytes) -> bool: ...

    def remember_nonce(self, nonce: bytes) -> None: ...

    def forget_nonce(self, nonce: bytes) -> None: ...

    def pop_oldest_nonce(self) -> bytes | None: ...

    @property
    def nonce_count(self) -> int: ...


class NonceHistory:
    """Insertion-ordered nonce set: O(1) membership, O(1) FIFO eviction.

    The eviction queue lives here -- with the *state*, not with the
    policy -- and uses :meth:`collections.deque.popleft` rather than
    ``list.pop(0)``.  Entries removed out of order (``discard``) are
    deleted lazily from the queue when they surface at the front; when
    dead queue slots (tombstones) outnumber live entries the queue is
    compacted, so an add/discard churn workload keeps the queue at
    O(live entries) instead of growing it without bound.
    """

    def __init__(self):
        self._members: set[bytes] = set()
        self._order: deque[bytes] = deque()
        #: Actual bytes of nonce material stored (nonces may be any
        #: length, so the byte total is not ``count * constant``).
        self.stored_bytes = 0

    @property
    def tombstones(self) -> int:
        """Queue slots that can never yield an eviction (dead entries
        plus duplicate slots left behind by discard-then-re-add)."""
        return len(self._order) - len(self._members)

    def __contains__(self, nonce: bytes) -> bool:
        return nonce in self._members

    def __len__(self) -> int:
        return len(self._members)

    def __iter__(self):
        return iter(self._members)

    def add(self, nonce: bytes) -> bool:
        """Remember ``nonce``; returns whether it was new."""
        if nonce in self._members:
            return False
        self._members.add(nonce)
        self._order.append(nonce)
        self.stored_bytes += len(nonce)
        return True

    def discard(self, nonce: bytes) -> None:
        if nonce in self._members:
            self._members.discard(nonce)
            self.stored_bytes -= len(nonce)
            if self.tombstones > len(self._members):
                self._compact()

    def _compact(self) -> None:
        """Drop dead queue slots, keeping the *first* occurrence of each
        live member -- the slot :meth:`pop_oldest` would have honoured --
        so eviction order is unchanged by compaction."""
        kept: set[bytes] = set()
        live: deque[bytes] = deque()
        for nonce in self._order:
            if nonce in self._members and nonce not in kept:
                kept.add(nonce)
                live.append(nonce)
        self._order = live

    def pop_oldest(self) -> bytes | None:
        """Evict and return the oldest live nonce (FIFO), if any."""
        while self._order:
            nonce = self._order.popleft()
            if nonce in self._members:
                self._members.discard(nonce)
                self.stored_bytes -= len(nonce)
                return nonce
        return None


class InMemoryStateView:
    """Dictionary-backed state view for tests and model checking."""

    def __init__(self, *, counter: int = 0, clock: int | None = None):
        self.counter = counter
        self.clock = clock
        self.nonces = NonceHistory()

    def get_counter(self) -> int:
        return self.counter

    def set_counter(self, value: int) -> None:
        self.counter = value

    def clock_ticks(self) -> int | None:
        return self.clock

    def nonce_seen(self, nonce: bytes) -> bool:
        return nonce in self.nonces

    def remember_nonce(self, nonce: bytes) -> None:
        self.nonces.add(nonce)

    def forget_nonce(self, nonce: bytes) -> None:
        self.nonces.discard(nonce)

    def pop_oldest_nonce(self) -> bytes | None:
        return self.nonces.pop_oldest()

    @property
    def nonce_count(self) -> int:
        return len(self.nonces)


@dataclass
class VerifierFreshnessState:
    """The verifier's side of the freshness bookkeeping.

    ``clock_ticks`` is a callable returning the verifier's current notion
    of prover time (the synchronised-clock assumption of Section 4.2);
    scenario code wires it to the simulation clock.
    """

    next_counter: int = 1
    rng: DeterministicRng = field(
        default_factory=lambda: DeterministicRng("verifier-freshness"))
    clock_ticks: "callable" = None  # type: ignore[assignment]


class FreshnessPolicy:
    """Base interface; concrete policies override all four hooks."""

    name = "abstract"
    #: Table 2 row for this feature (the *claimed* mitigations).
    expected_mitigations: frozenset[str] = frozenset()

    def stamp(self, state: VerifierFreshnessState) -> dict:
        """Verifier: freshness fields for the next request."""
        raise NotImplementedError

    def check(self, request: AttestationRequest,
              view: ProverStateView) -> tuple[bool, str]:
        """Prover: is ``request`` fresh?  Returns (ok, reason)."""
        raise NotImplementedError

    def commit(self, request: AttestationRequest,
               view: ProverStateView) -> None:
        """Prover: update freshness state after accepting ``request``."""
        raise NotImplementedError

    def prover_state_bytes(self, view: ProverStateView) -> int:
        """Non-volatile prover memory the policy occupies (Section 4.2's
        nonce-history objection is exactly this number growing)."""
        return 0


class NoFreshness(FreshnessPolicy):
    """Accept everything (the pre-Section-4.2 baseline)."""

    name = "none"
    expected_mitigations = frozenset()

    def stamp(self, state: VerifierFreshnessState) -> dict:
        return {}

    def check(self, request, view) -> tuple[bool, str]:
        return True, "ok"

    def commit(self, request, view) -> None:
        return None


class NonceHistoryPolicy(FreshnessPolicy):
    """Verifier nonce + prover-side nonce history.

    Detects replays only; "keeping a complete nonce history requires a
    lot of non-volatile memory on the prover" (Section 4.2), which
    :meth:`prover_state_bytes` quantifies.

    ``max_entries`` models the obvious memory fix -- a bounded FIFO
    cache -- and demonstrates why the paper rejects it: once a nonce is
    evicted, its request replays successfully, so the bound converts the
    memory problem into a replay window the *adversary* controls (wait
    until ``max_entries`` genuine requests have passed, then replay).
    The model checker exhibits the violation
    (``check_policy("nonce", ...)`` with a small cache).
    """

    name = "nonce"
    expected_mitigations = frozenset({"replay"})

    def __init__(self, nonce_size: int = 16,
                 max_entries: int | None = None):
        if nonce_size < 8:
            raise ConfigurationError("nonces below 8 bytes invite collisions")
        if max_entries is not None and max_entries < 1:
            raise ConfigurationError("nonce cache needs at least one slot")
        self.nonce_size = nonce_size
        self.max_entries = max_entries

    def stamp(self, state: VerifierFreshnessState) -> dict:
        return {"nonce": state.rng.bytes(self.nonce_size)}

    def check(self, request, view) -> tuple[bool, str]:
        if request.nonce is None:
            return False, "missing-nonce"
        if view.nonce_seen(request.nonce):
            return False, "replayed-nonce"
        return True, "ok"

    def commit(self, request, view) -> None:
        # The eviction FIFO is per-view state (see ProverStateView): a
        # policy object shared by several provers must never evict one
        # prover's nonces because another prover's history grew.
        view.remember_nonce(request.nonce)
        if self.max_entries is not None:
            while view.nonce_count > self.max_entries:
                if view.pop_oldest_nonce() is None:
                    break

    def prover_state_bytes(self, view: ProverStateView) -> int:
        return view.nonce_count * self.nonce_size


class CounterPolicy(FreshnessPolicy):
    """Monotonically increasing counter; one protected word of state.

    "The prover accepts a new request only if its counter is strictly
    greater than the last one received and processed" -- detects replay
    and reorder, but a delayed request still carries the highest counter
    seen, so delay goes undetected (Table 2).
    """

    name = "counter"
    expected_mitigations = frozenset({"replay", "reorder"})

    def stamp(self, state: VerifierFreshnessState) -> dict:
        counter = state.next_counter
        state.next_counter += 1
        return {"counter": counter}

    def check(self, request, view) -> tuple[bool, str]:
        if request.counter is None:
            return False, "missing-counter"
        if request.counter <= view.get_counter():
            return False, "stale-counter"
        return True, "ok"

    def commit(self, request, view) -> None:
        view.set_counter(request.counter)

    def prover_state_bytes(self, view: ProverStateView) -> int:
        return 8


class TimestampPolicy(FreshnessPolicy):
    """Verifier timestamps + prover real-time clock.

    The paper's scheme (Section 4.2) is a pure window check: accept when
    the request timestamp lies within ``window_ticks`` of the prover's
    local clock.  Replay/reorder/delay detection then rests on the stated
    assumptions -- synchronised clocks and "sufficiently inter-spaced
    genuine attestation requests" (spacing greater than the window), so a
    replayed or reordered request is always already stale when it
    arrives.  Notably the prover needs *no* per-request state, only the
    clock.

    ``monotonic=True`` enables a hardening *extension* beyond the paper:
    the prover additionally stores the last accepted timestamp (reusing
    the protected ``counter_R`` word) and rejects non-increasing ones,
    which closes the within-window replay that the inter-spacing
    assumption leaves open.  The ablation benchmark compares both modes.
    """

    name = "timestamp"
    expected_mitigations = frozenset({"replay", "reorder", "delay"})

    def __init__(self, window_ticks: int, *, monotonic: bool = False):
        if window_ticks <= 0:
            raise ConfigurationError("acceptance window must be positive")
        self.window_ticks = window_ticks
        self.monotonic = monotonic

    def stamp(self, state: VerifierFreshnessState) -> dict:
        if state.clock_ticks is None:
            raise ConfigurationError(
                "TimestampPolicy needs a verifier clock source")
        return {"timestamp_ticks": int(state.clock_ticks())}

    def check(self, request, view) -> tuple[bool, str]:
        if request.timestamp_ticks is None:
            return False, "missing-timestamp"
        local = view.clock_ticks()
        if local is None:
            return False, "no-prover-clock"
        if abs(request.timestamp_ticks - local) > self.window_ticks:
            return False, "stale-timestamp"
        if self.monotonic and request.timestamp_ticks <= view.get_counter():
            return False, "non-monotonic-timestamp"
        return True, "ok"

    def commit(self, request, view) -> None:
        if self.monotonic:
            view.set_counter(request.timestamp_ticks)

    def prover_state_bytes(self, view: ProverStateView) -> int:
        return 8 if self.monotonic else 0


POLICY_NAMES = ("none", "nonce", "counter", "timestamp")


def make_policy(name: str, *, window_ticks: int = 0, nonce_size: int = 16,
                max_entries: int | None = None,
                monotonic_timestamps: bool = False) -> FreshnessPolicy:
    """Construct a freshness policy by Table 2 feature name.

    ``max_entries`` (nonce policy only) bounds the prover's nonce cache,
    the Section 4.2 memory fix whose replay window the model checker
    exhibits (``check_policy("nonce", max_entries=1)``).
    """
    if name == "none":
        return NoFreshness()
    if name == "nonce":
        return NonceHistoryPolicy(nonce_size, max_entries=max_entries)
    if name == "counter":
        return CounterPolicy()
    if name == "timestamp":
        return TimestampPolicy(window_ticks, monotonic=monotonic_timestamps)
    raise ConfigurationError(
        f"unknown freshness policy {name!r}; choose from {POLICY_NAMES}")
