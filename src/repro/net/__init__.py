"""Discrete-event network simulation with a Dolev-Yao adversary."""

from .channel import (ChannelAdversary, DolevYaoChannel, Endpoint,
                      PassthroughAdversary, Verdict)
from .path import DIRECT_LINK, Hop, NetworkPath, campus_path, wan_path
from .simulator import Simulation
from .trace import Transcript, TranscriptEntry

__all__ = [
    "ChannelAdversary", "DIRECT_LINK", "DolevYaoChannel", "Endpoint",
    "Hop", "NetworkPath", "PassthroughAdversary", "Simulation",
    "Transcript", "TranscriptEntry", "Verdict", "campus_path", "wan_path",
]
