"""Discrete-event network simulation with a Dolev-Yao adversary."""

from .channel import (ChannelAdversary, DolevYaoChannel, Endpoint,
                      PassthroughAdversary, Verdict)
from .faults import (BernoulliLoss, Duplicator, FaultModel, FaultPipeline,
                     GilbertElliottLoss, LatencyJitter, Reorderer)
from .path import DIRECT_LINK, Hop, NetworkPath, campus_path, wan_path
from .simulator import Simulation
from .trace import Transcript, TranscriptEntry

__all__ = [
    "BernoulliLoss", "ChannelAdversary", "DIRECT_LINK", "DolevYaoChannel",
    "Duplicator", "Endpoint", "FaultModel", "FaultPipeline",
    "GilbertElliottLoss", "Hop", "LatencyJitter", "NetworkPath",
    "PassthroughAdversary", "Reorderer", "Simulation",
    "Transcript", "TranscriptEntry", "Verdict", "campus_path", "wan_path",
]
