"""Composable channel fault models: lossy links as channel adversaries.

Section 3.2 grants the external adversary Dolev-Yao powers -- drop,
insert, delay -- but a *benign* lossy radio link exercises the very same
powers without malice, and the paper's availability argument (Section
3.1: every received request costs the prover a full measurement) applies
identically to both.  This module therefore models faults as
:class:`~repro.net.channel.ChannelAdversary` implementations, so the
adversarial and the merely-unreliable share one mechanism and one
transcript/telemetry surface.

Models compose via :class:`FaultPipeline` (drop wins, delays add,
duplication merges) and every stochastic decision flows through a
:class:`~repro.crypto.rng.DeterministicRng` substream derived from the
model's seed -- the determinism contract (see ``docs/robustness.md``):
same seed, same message sequence, byte-identical fault schedule.  Each
model draws from its own substream, so composing an extra model never
perturbs the decisions of the others.
"""

from __future__ import annotations

from ..crypto.rng import DeterministicRng
from ..errors import ConfigurationError
from .channel import Verdict

__all__ = ["FaultModel", "BernoulliLoss", "GilbertElliottLoss",
           "LatencyJitter", "Duplicator", "Reorderer", "FaultPipeline"]


def _check_probability(value: float, what: str) -> float:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{what} must be in [0, 1], got {value!r}")
    return value


class FaultModel:
    """Base class: a deterministic, seedable channel fault.

    Subclasses implement the :class:`~repro.net.channel.ChannelAdversary`
    protocol (``on_message``) and draw randomness only from substreams of
    their ``seed``.
    """

    def __init__(self, seed: str, stream: str):
        self._rng = DeterministicRng(seed).substream(stream)

    def on_message(self, message, sender: str, receiver: str,
                   time: float) -> Verdict:
        raise NotImplementedError


class BernoulliLoss(FaultModel):
    """Independent per-message loss with probability ``loss_rate``."""

    def __init__(self, loss_rate: float, *, seed: str = "faults"):
        super().__init__(seed, "bernoulli-loss")
        self.loss_rate = _check_probability(loss_rate, "loss rate")

    def on_message(self, message, sender, receiver, time) -> Verdict:
        if self._rng.random() < self.loss_rate:
            return Verdict("drop")
        return Verdict("forward")


class GilbertElliottLoss(FaultModel):
    """Two-state (good/burst) Markov loss: the classic bursty-link model.

    Each message first advances the channel state (good -> burst with
    ``p_enter_burst``, burst -> good with ``p_exit_burst``), then drops
    with the state's loss probability.  Long bursts (small
    ``p_exit_burst``) model fading/interference windows that defeat
    naive immediate retries -- exactly what exponential backoff exists
    to ride out.
    """

    def __init__(self, *, p_enter_burst: float = 0.05,
                 p_exit_burst: float = 0.25, loss_good: float = 0.0,
                 loss_burst: float = 1.0, seed: str = "faults"):
        super().__init__(seed, "gilbert-elliott")
        self.p_enter_burst = _check_probability(p_enter_burst, "p_enter_burst")
        self.p_exit_burst = _check_probability(p_exit_burst, "p_exit_burst")
        self.loss_good = _check_probability(loss_good, "loss_good")
        self.loss_burst = _check_probability(loss_burst, "loss_burst")
        self.in_burst = False

    def on_message(self, message, sender, receiver, time) -> Verdict:
        if self.in_burst:
            if self._rng.random() < self.p_exit_burst:
                self.in_burst = False
        else:
            if self._rng.random() < self.p_enter_burst:
                self.in_burst = True
        loss = self.loss_burst if self.in_burst else self.loss_good
        if loss > 0.0 and self._rng.random() < loss:
            return Verdict("drop")
        return Verdict("forward")


class LatencyJitter(FaultModel):
    """Adds uniform extra delay in ``[0, max_jitter_seconds)``."""

    def __init__(self, max_jitter_seconds: float, *, seed: str = "faults"):
        super().__init__(seed, "latency-jitter")
        if max_jitter_seconds < 0:
            raise ConfigurationError("jitter cannot be negative")
        self.max_jitter_seconds = max_jitter_seconds

    def on_message(self, message, sender, receiver, time) -> Verdict:
        if self.max_jitter_seconds == 0.0:
            return Verdict("forward")
        return Verdict("forward",
                       extra_delay=self._rng.uniform(
                           0.0, self.max_jitter_seconds))


class Duplicator(FaultModel):
    """Duplicates messages with probability ``duplicate_rate``.

    The copy is delivered ``duplicate_delay_seconds`` after the original
    (0 = back-to-back, the classic retransmit-storm shape; larger values
    model a delayed duplicate, which against a freshness policy is
    indistinguishable from a replay and must be rejected).
    """

    def __init__(self, duplicate_rate: float, *,
                 duplicate_delay_seconds: float = 0.0, seed: str = "faults"):
        super().__init__(seed, "duplicator")
        self.duplicate_rate = _check_probability(duplicate_rate,
                                                 "duplicate rate")
        if duplicate_delay_seconds < 0:
            raise ConfigurationError("duplicate delay cannot be negative")
        self.duplicate_delay_seconds = duplicate_delay_seconds

    def on_message(self, message, sender, receiver, time) -> Verdict:
        if self._rng.random() < self.duplicate_rate:
            return Verdict("duplicate",
                           duplicate_delay=self.duplicate_delay_seconds)
        return Verdict("forward")


class Reorderer(FaultModel):
    """Reorders by holding selected messages for ``hold_seconds``.

    A held message is overtaken by any message sent within the hold
    window -- reordering expressed as targeted delay, which keeps the
    discrete-event delivery machinery (and its determinism) untouched.
    """

    def __init__(self, reorder_rate: float, *, hold_seconds: float = 0.05,
                 seed: str = "faults"):
        super().__init__(seed, "reorderer")
        self.reorder_rate = _check_probability(reorder_rate, "reorder rate")
        if hold_seconds < 0:
            raise ConfigurationError("hold window cannot be negative")
        self.hold_seconds = hold_seconds

    def on_message(self, message, sender, receiver, time) -> Verdict:
        if self._rng.random() < self.reorder_rate:
            return Verdict("forward", extra_delay=self.hold_seconds)
        return Verdict("forward")


class FaultPipeline:
    """Composes fault models into one channel adversary.

    Every model is consulted for every message (so each model's random
    stream advances identically regardless of what the others decide --
    composition order never changes an individual model's schedule), and
    the verdicts merge:

    * any ``drop`` wins;
    * ``extra_delay`` values add;
    * any ``duplicate`` makes the merged verdict a duplicate, with the
      largest requested duplicate delay.
    """

    def __init__(self, *models):
        if not models:
            raise ConfigurationError("fault pipeline needs at least one model")
        self.models = tuple(models)

    def on_message(self, message, sender, receiver, time) -> Verdict:
        dropped = False
        duplicate = False
        extra_delay = 0.0
        duplicate_delay = 0.0
        for model in self.models:
            verdict = model.on_message(message, sender, receiver, time)
            if verdict.action == "drop":
                dropped = True
            elif verdict.action == "duplicate":
                duplicate = True
                duplicate_delay = max(duplicate_delay,
                                      verdict.duplicate_delay)
            extra_delay += verdict.extra_delay
        if dropped:
            return Verdict("drop")
        if duplicate:
            return Verdict("duplicate", extra_delay=extra_delay,
                           duplicate_delay=duplicate_delay)
        return Verdict("forward", extra_delay=extra_delay)
