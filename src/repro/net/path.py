"""Multi-hop network paths: latency and jitter composition.

The paper's Section 2 argument against software-based attestation is
about network *hops*: each relay adds queueing delay whose variance the
verifier cannot distinguish from prover compute time.  :class:`Hop`
models one store-and-forward relay (fixed latency + uniform jitter);
:class:`NetworkPath` composes hops into an end-to-end delay distribution
and exposes the statistics the timing analyses need (worst-case spread,
expected delay).  The SWATT evaluation and any session can source their
delays from a path.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.rng import DeterministicRng
from ..errors import ConfigurationError

__all__ = ["Hop", "NetworkPath", "DIRECT_LINK", "campus_path", "wan_path"]


@dataclass(frozen=True)
class Hop:
    """One store-and-forward relay."""

    name: str
    latency_seconds: float
    jitter_seconds: float = 0.0

    def __post_init__(self):
        if self.latency_seconds < 0 or self.jitter_seconds < 0:
            raise ConfigurationError("hop delays cannot be negative")

    def sample(self, rng: DeterministicRng) -> float:
        if self.jitter_seconds == 0.0:
            return self.latency_seconds
        return self.latency_seconds + rng.uniform(0.0, self.jitter_seconds)


class NetworkPath:
    """A sequence of hops between verifier and prover."""

    def __init__(self, hops: list[Hop]):
        if not hops:
            raise ConfigurationError("a path needs at least one hop")
        self.hops = list(hops)

    def __len__(self) -> int:
        return len(self.hops)

    @property
    def base_latency_seconds(self) -> float:
        """Deterministic floor of the one-way delay."""
        return sum(hop.latency_seconds for hop in self.hops)

    @property
    def jitter_span_seconds(self) -> float:
        """Worst-case variable component of the one-way delay."""
        return sum(hop.jitter_seconds for hop in self.hops)

    @property
    def expected_latency_seconds(self) -> float:
        return self.base_latency_seconds + self.jitter_span_seconds / 2

    def sample(self, rng: DeterministicRng) -> float:
        """One end-to-end one-way delay draw."""
        return sum(hop.sample(rng) for hop in self.hops)

    def sample_round_trip(self, rng: DeterministicRng) -> float:
        return self.sample(rng) + self.sample(rng)

    def extended(self, hop: Hop) -> "NetworkPath":
        """A new path with ``hop`` appended."""
        return NetworkPath(self.hops + [hop])

    def describe(self) -> str:
        chain = " -> ".join(hop.name for hop in self.hops)
        return (f"{chain}: {self.base_latency_seconds * 1000:.1f} ms base "
                f"+ up to {self.jitter_span_seconds * 1000:.1f} ms jitter")


#: A computer-peripheral-style direct connection (the only setting where
#: software-based attestation's assumptions hold).
DIRECT_LINK = NetworkPath([Hop("direct", 0.0001, 0.00001)])


def campus_path() -> NetworkPath:
    """A LAN with one gateway and one wireless hop."""
    return NetworkPath([
        Hop("ethernet", 0.0005, 0.0002),
        Hop("gateway", 0.002, 0.003),
        Hop("802.15.4", 0.005, 0.008),
    ])


def wan_path() -> NetworkPath:
    """An internet path to a remote deployment."""
    return NetworkPath([
        Hop("isp", 0.010, 0.005),
        Hop("backbone", 0.030, 0.010),
        Hop("cellular", 0.040, 0.050),
        Hop("gateway", 0.002, 0.003),
        Hop("802.15.4", 0.005, 0.008),
    ])
