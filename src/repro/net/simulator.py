"""Discrete-event simulation kernel for protocol scenarios.

A minimal but complete event scheduler: events are (time, sequence,
callback) triples in a heap; :meth:`Simulation.run` pops them in
timestamp order.  Entities (verifier, prover node, adversary) schedule
future work -- message deliveries, replay firings, request floods -- and
the kernel keeps one coherent notion of wall-clock time that prover
devices synchronise their cycle counters against.

Determinism: ties break on insertion order, and all randomness comes from
:class:`repro.crypto.rng.DeterministicRng`, so a scenario with the same
seed replays identically.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from ..errors import SimulationError

__all__ = ["Simulation"]


class Simulation:
    """Event-driven simulation clock.

    >>> sim = Simulation()
    >>> fired = []
    >>> sim.schedule(2.0, lambda: fired.append("b"))
    >>> sim.schedule(1.0, lambda: fired.append("a"))
    >>> sim.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self):
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        self.events_processed = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at ``now + delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        heapq.heappush(self._queue,
                       (self.now + delay, next(self._sequence), callback))

    def schedule_at(self, time: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute simulated ``time``."""
        self.schedule(time - self.now, callback)

    @property
    def pending(self) -> int:
        return len(self._queue)

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        if not self._queue:
            return False
        time, _seq, callback = heapq.heappop(self._queue)
        if time < self.now:
            raise SimulationError("event queue went backwards in time")
        self.now = time
        self.events_processed += 1
        callback()
        return True

    def run(self, until: float | None = None, max_events: int = 1_000_000) -> None:
        """Drain the event queue, optionally stopping at time ``until``.

        ``max_events`` guards against runaway self-scheduling loops.
        """
        if self._running:
            raise SimulationError("run() re-entered from within an event")
        self._running = True
        try:
            processed = 0
            while self._queue:
                next_time = self._queue[0][0]
                if until is not None and next_time > until:
                    break
                self.step()
                processed += 1
                if processed > max_events:
                    raise SimulationError(
                        f"exceeded {max_events} events; runaway scenario?")
            if until is not None and until > self.now:
                self.now = until
        finally:
            self._running = False
