"""Dolev-Yao channel: the external adversary's vantage point.

Section 3.2: the external adversary "can control all communication
between Prv and Vrf ... can drop, insert and delay messages, following
the well-known Dolev-Yao model."  :class:`DolevYaoChannel` gives an
attached :class:`ChannelAdversary` exactly those powers on a per-message
basis, while honest endpoints just see ``send``/``deliver``.

Every message that transits the channel is recorded in a
:class:`~repro.net.trace.Transcript`, which is also how the roaming
adversary's Phase I eavesdropping works: it reads the transcript.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from ..crypto.rng import DeterministicRng
from ..errors import NetworkError
from ..obs.telemetry import NULL_TELEMETRY
from .simulator import Simulation
from .trace import Transcript, TranscriptEntry

__all__ = ["Endpoint", "ChannelAdversary", "PassthroughAdversary",
           "DolevYaoChannel", "Verdict"]


class Endpoint(Protocol):
    """Anything that can receive channel messages."""

    name: str

    def deliver(self, message, sender: str) -> None: ...


@dataclass
class Verdict:
    """An adversary's decision about one in-flight message.

    Attributes
    ----------
    action:
        ``"forward"`` -- deliver after ``extra_delay``;
        ``"drop"`` -- never deliver;
        ``"duplicate"`` -- deliver after ``extra_delay``, then deliver a
        copy ``duplicate_delay`` later (the Section 3.2 insert power
        exercised on a genuine message; with ``duplicate_delay > 0``, a
        delayed duplicate -- i.e. a replay the freshness policy must
        reject).
    extra_delay:
        Seconds of adversarial delay on top of channel latency.
    duplicate_delay:
        Extra spacing between the original and its copy (``"duplicate"``
        only).
    """

    action: str = "forward"
    extra_delay: float = 0.0
    duplicate_delay: float = 0.0

    def __post_init__(self):
        if self.action not in ("forward", "drop", "duplicate"):
            raise NetworkError(f"unknown verdict action {self.action!r}")
        if self.extra_delay < 0 or self.duplicate_delay < 0:
            raise NetworkError("adversarial delay cannot be negative")


class ChannelAdversary(Protocol):
    """Hook consulted for every message crossing the channel."""

    def on_message(self, message, sender: str, receiver: str,
                   time: float) -> Verdict: ...


class PassthroughAdversary:
    """The benign network: forward everything untouched."""

    def on_message(self, message, sender: str, receiver: str,
                   time: float) -> Verdict:
        return Verdict("forward")


class DolevYaoChannel:
    """A bidirectional channel between two endpoints with an adversary.

    Parameters
    ----------
    sim:
        The simulation kernel providing time and delivery scheduling.
    latency_seconds:
        One-way latency of the honest channel.
    adversary:
        The in-path adversary; defaults to benign passthrough.
    """

    def __init__(self, sim: Simulation, *, latency_seconds: float = 0.005,
                 adversary: ChannelAdversary | None = None,
                 path=None, seed: str = "channel-0",
                 telemetry=None):
        """``path`` (a :class:`~repro.net.path.NetworkPath`) makes the
        per-message latency a sample of the multi-hop delay distribution
        instead of the fixed ``latency_seconds``."""
        if latency_seconds < 0:
            raise NetworkError("latency cannot be negative")
        self.sim = sim
        self.latency_seconds = latency_seconds
        self.path = path
        self._latency_rng = DeterministicRng(seed + ":latency")
        self.adversary = adversary if adversary is not None else PassthroughAdversary()
        self.transcript = Transcript()
        self._endpoints: dict[str, Endpoint] = {}
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.delivered = 0
        self.dropped = 0
        self.injected = 0
        self.duplicated = 0

    def _one_way_delay(self) -> float:
        if self.path is not None:
            return self.path.sample(self._latency_rng)
        return self.latency_seconds

    def attach(self, endpoint: Endpoint) -> None:
        if endpoint.name in self._endpoints:
            raise NetworkError(f"endpoint {endpoint.name!r} already attached")
        self._endpoints[endpoint.name] = endpoint

    def endpoint(self, name: str) -> Endpoint:
        return self._endpoints[name]

    def send(self, sender: str, receiver: str, message) -> TranscriptEntry:
        """An honest endpoint puts ``message`` on the wire.

        The adversary sees it first and decides its fate; the transcript
        records it either way (the adversary can always eavesdrop).
        """
        if receiver not in self._endpoints:
            raise NetworkError(f"unknown receiver {receiver!r}")
        entry = self.transcript.record(self.sim.now, sender, receiver, message)
        kind = type(message).__name__
        self.telemetry.count("channel.sent")
        self.telemetry.event("channel-send", self.sim.now, sender=sender,
                             receiver=receiver, message=kind)
        verdict = self.adversary.on_message(message, sender, receiver,
                                            self.sim.now)
        if verdict.action == "drop":
            self.dropped += 1
            entry.outcome = "dropped"
            self.telemetry.count("channel.dropped")
            self.telemetry.event("channel-drop", self.sim.now, sender=sender,
                                 receiver=receiver, message=kind)
            return entry
        delay = self._one_way_delay() + verdict.extra_delay
        entry.outcome = "forwarded" if verdict.extra_delay == 0 else "delayed"

        def deliver():
            self.delivered += 1
            self.telemetry.count("channel.delivered")
            self.telemetry.event("channel-deliver", self.sim.now,
                                 sender=sender, receiver=receiver,
                                 message=kind)
            self.telemetry.set_gauge("channel.pending_events",
                                     self.sim.pending)
            self._endpoints[receiver].deliver(message, sender)

        self.sim.schedule(delay, deliver)
        if verdict.action == "duplicate":
            self._schedule_duplicate(sender, receiver, message, kind,
                                     delay + verdict.duplicate_delay)
        self.telemetry.set_gauge("channel.pending_events", self.sim.pending)
        return entry

    def _schedule_duplicate(self, sender: str, receiver: str, message,
                            kind: str, delay: float) -> None:
        """Deliver an adversarial copy of a forwarded message.

        The copy gets its own transcript entry (outcome ``"duplicated"``)
        so an eavesdropper -- and the regression tests -- see both
        transmissions on the wire.
        """
        copy_entry = self.transcript.record(self.sim.now, sender, receiver,
                                            message)
        copy_entry.outcome = "duplicated"
        self.duplicated += 1
        self.telemetry.count("channel.duplicated")
        self.telemetry.event("channel-duplicate", self.sim.now,
                             sender=sender, receiver=receiver, message=kind)

        def deliver_copy():
            self.delivered += 1
            self.telemetry.count("channel.delivered")
            self.telemetry.event("channel-deliver", self.sim.now,
                                 sender=sender, receiver=receiver,
                                 message=kind, duplicate=True)
            self._endpoints[receiver].deliver(message, sender)

        self.sim.schedule(delay, deliver_copy)

    def inject(self, receiver: str, message, *, spoofed_sender: str,
               delay: float = 0.0) -> None:
        """The adversary inserts a message of its own making.

        Injected traffic is not re-submitted to the adversary hook (it
        already chose to send it) but *is* recorded in the transcript,
        flagged as injected.
        """
        if receiver not in self._endpoints:
            raise NetworkError(f"unknown receiver {receiver!r}")
        entry = self.transcript.record(self.sim.now, spoofed_sender, receiver,
                                       message)
        entry.outcome = "injected"
        self.injected += 1
        kind = type(message).__name__
        self.telemetry.count("channel.injected")
        self.telemetry.event("channel-inject", self.sim.now,
                             sender=spoofed_sender, receiver=receiver,
                             message=kind)

        def deliver():
            self.delivered += 1
            self.telemetry.count("channel.delivered")
            self.telemetry.event("channel-deliver", self.sim.now,
                                 sender=spoofed_sender, receiver=receiver,
                                 message=kind)
            self._endpoints[receiver].deliver(message, spoofed_sender)

        self.sim.schedule(self._one_way_delay() + delay, deliver)
