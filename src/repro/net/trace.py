"""Message transcripts: what an eavesdropper knows.

The roaming adversary's Phase I is pure eavesdropping: "eavesdrops on
genuine Vrf-Prv attestation requests" (Section 3.2).  The
:class:`Transcript` kept by every channel is that knowledge -- attack
code queries it for recorded requests to replay later.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["TranscriptEntry", "Transcript"]


@dataclass
class TranscriptEntry:
    """One observed message."""

    time: float
    sender: str
    receiver: str
    message: object
    outcome: str = "pending"   # forwarded | delayed | dropped | injected | duplicated

    def __repr__(self) -> str:
        return (f"TranscriptEntry(t={self.time:.6f}, {self.sender}->"
                f"{self.receiver}, {self.outcome}, {self.message!r})")


class Transcript:
    """Append-only record of channel traffic."""

    def __init__(self):
        self._entries: list[TranscriptEntry] = []

    def record(self, time: float, sender: str, receiver: str,
               message) -> TranscriptEntry:
        entry = TranscriptEntry(time, sender, receiver, message)
        self._entries.append(entry)
        return entry

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[TranscriptEntry]:
        return iter(self._entries)

    def __getitem__(self, index: int) -> TranscriptEntry:
        return self._entries[index]

    def filter(self, predicate: Callable[[TranscriptEntry], bool]
               ) -> list[TranscriptEntry]:
        """All entries satisfying ``predicate``."""
        return [entry for entry in self._entries if predicate(entry)]

    def to_receiver(self, receiver: str) -> list[TranscriptEntry]:
        """Everything sent towards ``receiver`` (Phase I's loot)."""
        return self.filter(lambda e: e.receiver == receiver)

    def last_to(self, receiver: str) -> TranscriptEntry | None:
        entries = self.to_receiver(receiver)
        return entries[-1] if entries else None
