"""Delta checkpoints: O(dirty) snapshots chained off a parent document.

A full ``repro.snapshot/v1`` document stores every region window image.
At fleet scale that is O(members * writable bytes) of hashing and
encoding per checkpoint even when only a few freshness words moved
since the last one.  This module adds ``repro.snapshot.delta/v1``: a
checkpoint captured *against a parent document* that records, per
region, only the chunks whose :class:`~repro.incremental.DigestTree`
leaves changed since the parent -- the same dirty-leaf machinery that
makes incremental measurement O(dirty + log N) makes checkpointing
O(dirty) too.

Per-region delta record (the ``delta`` key on a region record):

``{"mode": "unchanged"}``
    The region's write-chain fingerprint equals the parent's: nothing
    stored at all (equal fingerprints imply byte-identical contents at
    and above the exclude bound).
``{"mode": "chunks", "chunk_size": C, "index": H, "dirty": [i, ...]}``
    Only chunks whose leaf digests differ from the parent's are stored,
    each keyed in the :class:`~repro.snapshot.blobs.BlobStore` by its
    own SHA-1 (its *content address*) -- so the identical OTA payload
    applied across a fleet is stored once no matter how many members
    dirtied it.  ``index`` keys the concatenated 20-byte leaf-digest
    row, which both materialization and the *next* delta capture read.
``{"mode": "blob"}``
    Whole-window fallback: no digest tree attached (or its geometry
    does not span the fingerprinted window), or the parent offers no
    chunk digests to diff against.  The window travels under the
    region fingerprint exactly like a full snapshot.

The per-member excluded prefix (IDT / ``counter_R`` / ``Clock_MSB``)
always travels verbatim on the region record -- it is tiny, genuinely
per-device, and below the fingerprint bound, so no chunk diffing
applies.

Chain identity: every document is addressed by :func:`document_id`, the
SHA-1 of its canonical JSON; a delta's ``parent_id`` must equal its
parent's id, so a chain is verified end to end before any folding.
:func:`materialize_chain` folds parent -> child overlays into a plain
full document that is **byte-identical** to one captured directly (the
equivalence gates in ``scripts/delta_smoke.py`` and
``repro.perf.snapshot`` enforce this); :func:`compact_chain` is the
user-facing squash.
"""

from __future__ import annotations

import hashlib
import json
import os

from ..errors import SnapshotError
from ..obs.schema import (SNAPSHOT_DELTA_SCHEMA_ID, SNAPSHOT_SCHEMA_ID,
                          validate_snapshot, validate_snapshot_delta)
from .blobs import BlobStore
from .document import load_document, make_document

__all__ = ["DeltaBase", "ParentMember", "capture_region_delta",
           "compact_chain", "document_id", "load_chain",
           "make_delta_document", "materialize_chain", "parent_blob_keys",
           "unwrap_parent", "verify_chain"]

_DIGEST_LEN = 20


def document_id(document: dict) -> str:
    """Content address of a snapshot document: SHA-1 of its canonical
    JSON (sorted keys, no whitespace).  Saving and reloading a document
    preserves its id -- ``save_document`` writes sorted keys and JSON
    scalars round-trip exactly."""
    payload = json.dumps(document, sort_keys=True,
                         separators=(",", ":")).encode()
    return hashlib.sha1(payload).hexdigest()


def make_delta_document(kind: str, state: dict, blobs: BlobStore,
                        parent_id: str, meta: dict | None = None) -> dict:
    """Assemble a ``repro.snapshot.delta/v1`` envelope."""
    document = {"schema": SNAPSHOT_DELTA_SCHEMA_ID, "kind": kind,
                "blobs": blobs.encode(), "state": state,
                "parent_id": parent_id}
    if meta is not None:
        document["meta"] = meta
    return document


def unwrap_parent(document: dict, kind: str) -> tuple[dict, BlobStore]:
    """Validate a parent document (full *or* delta) and return
    ``(state, blobs)``.  A delta parent is fine: diffing only needs the
    parent's fingerprints and chunk-digest indexes, not its images."""
    if (isinstance(document, dict)
            and document.get("schema") == SNAPSHOT_DELTA_SCHEMA_ID):
        errors = validate_snapshot_delta(document)
    else:
        errors = validate_snapshot(document)
    if errors:
        raise SnapshotError("invalid delta parent document: "
                            + "; ".join(errors))
    if document["kind"] != kind:
        raise SnapshotError(
            f"delta parent kind mismatch: document is "
            f"{document['kind']!r}, expected {kind!r}")
    return document["state"], BlobStore.decode(document["blobs"])


def _session_states(state: dict, kind: str) -> list[dict]:
    """The per-member session payloads of a document state, in fleet
    order (fleet shards are contiguous index blocks, so shard-major
    order is global member order)."""
    if kind == "session":
        return [state]
    if kind == "swarm":
        return [member["session"] for member in state["members"]]
    if kind == "fleet":
        return [member["session"] for shard in state["shards"]
                for member in shard["swarm"]["members"]]
    raise SnapshotError(
        f"snapshot kind {kind!r} has no delta form (no region images)")


def _identity(state: dict, kind: str) -> list | None:
    if kind == "session":
        return None
    if kind == "swarm":
        return [(member["device_id"], member["index"])
                for member in state["members"]]
    return [(member["device_id"], member["index"])
            for shard in state["shards"]
            for member in shard["swarm"]["members"]]


class ParentMember:
    """One member's view of a parent checkpoint: its region records
    plus the parent's blob store (for chunk-digest indexes and
    fallback image chunking)."""

    __slots__ = ("regions", "blobs")

    def __init__(self, regions: dict, blobs: BlobStore):
        self.regions = regions
        self.blobs = blobs

    def chunk_digests(self, name: str, chunk_size: int,
                      window_size: int) -> list[bytes] | None:
        """The parent's per-chunk leaf digests for region ``name``
        under the given geometry, or ``None`` when the parent cannot
        provide them (capture then falls back to a whole blob).

        Three sources, cheapest first: a recorded chunk-digest index
        (any delta mode may carry one), or the parent's whole window
        image re-chunked on the fly (full snapshots and blob-mode
        deltas).
        """
        record = self.regions.get(name)
        if record is None:
            return None
        delta = record.get("delta")
        if delta is not None and "index" in delta:
            if delta.get("chunk_size") != chunk_size:
                return None
            try:
                payload = self.blobs.get(delta["index"])
            except SnapshotError:
                return None
            if len(payload) % _DIGEST_LEN:
                return None
            digests = [payload[i:i + _DIGEST_LEN]
                       for i in range(0, len(payload), _DIGEST_LEN)]
        else:
            if delta is not None and delta.get("mode") != "blob":
                return None
            try:
                image = self.blobs.get(record["fingerprint"])
            except SnapshotError:
                return None
            if len(image) != window_size:
                return None
            digests = [hashlib.sha1(image[lo:lo + chunk_size]).digest()
                       for lo in range(0, len(image), chunk_size)]
        expected = (window_size + chunk_size - 1) // chunk_size
        if len(digests) != expected:
            return None
        return digests


class DeltaBase:
    """A parent checkpoint unpacked for delta capture.

    Holds one :class:`ParentMember` per member session (sharing the
    parent's blob store) plus the member identity list used to refuse
    capture against a mismatched fleet.
    """

    __slots__ = ("_members", "identity")

    def __init__(self, members: list[ParentMember], identity: list | None):
        self._members = members
        self.identity = identity

    def member(self, index: int) -> ParentMember:
        return self._members[index]

    def __len__(self) -> int:
        return len(self._members)

    @classmethod
    def from_document(cls, document: dict, kind: str) -> "DeltaBase":
        state, blobs = unwrap_parent(document, kind)
        return cls._from_state(state, kind, blobs)

    @classmethod
    def for_swarm_state(cls, state: dict, blobs: BlobStore) -> "DeltaBase":
        """Build from a bare swarm-kind state payload (fleet shard
        workers receive their shard's slice this way)."""
        return cls._from_state(state, "swarm", blobs)

    @classmethod
    def _from_state(cls, state: dict, kind: str,
                    blobs: BlobStore) -> "DeltaBase":
        members = []
        for session in _session_states(state, kind):
            regions = {record["name"]: record
                       for record in session["device"]["regions"]}
            members.append(ParentMember(regions, blobs))
        return cls(members, _identity(state, kind))


def parent_blob_keys(swarm_state: dict) -> list[str]:
    """Every blob key a swarm-kind parent state may reference during
    delta capture: region fingerprints (image fallback / re-chunking)
    and chunk-digest indexes.  Used to ship each fleet shard only the
    parent payloads its members need."""
    keys = []
    seen = set()
    for member in swarm_state["members"]:
        for record in member["session"]["device"]["regions"]:
            for key in (record["fingerprint"],
                        record.get("delta", {}).get("index")):
                if key is not None and key not in seen:
                    seen.add(key)
                    keys.append(key)
    return keys


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------

def capture_region_delta(region, parent: ParentMember,
                         blobs: BlobStore) -> dict:
    """Record one region against a parent checkpoint; returns the
    ``delta`` entry for the region record, storing chunk payloads and
    the leaf-digest index into ``blobs`` as needed."""
    exclude = region.fingerprint_exclude_below
    window_size = region.size - exclude
    fingerprint_hex = region._fingerprint.hex()
    tree = region.digest_tree
    # The tree must span exactly the fingerprinted window, or its
    # leaves do not address the bytes the fingerprint witnesses.
    eligible = (tree is not None and tree.window_start == exclude
                and tree.window_size == window_size)
    index_hex = None
    leaves = None
    if eligible:
        leaves = tree.leaf_digests(region._data)
        index_payload = b"".join(leaves)
        index_hex = hashlib.sha1(index_payload).hexdigest()
        blobs.put(index_hex, index_payload)

    parent_record = parent.regions.get(region.name)
    geometry_matches = (parent_record is not None
                        and parent_record["size"] == region.size
                        and parent_record["exclude"] == exclude)
    if geometry_matches and parent_record["fingerprint"] == fingerprint_hex:
        delta = {"mode": "unchanged"}
        if eligible:
            delta["chunk_size"] = tree.chunk_size
            delta["index"] = index_hex
        return delta
    if geometry_matches and eligible:
        parent_leaves = parent.chunk_digests(region.name, tree.chunk_size,
                                             window_size)
        if parent_leaves is not None and len(parent_leaves) == len(leaves):
            dirty = [i for i, (old, new)
                     in enumerate(zip(parent_leaves, leaves)) if old != new]
            window = memoryview(region._data)[exclude:]
            for i in dirty:
                lo = i * tree.chunk_size
                hi = min(lo + tree.chunk_size, window_size)
                blobs.put(leaves[i].hex(), bytes(window[lo:hi]))
            return {"mode": "chunks", "chunk_size": tree.chunk_size,
                    "index": index_hex, "dirty": dirty}
    # Fallback: whole window under the fingerprint, as a full snapshot
    # would.  Still carries the index when a tree is attached, so the
    # *next* delta against this one is O(dirty).
    blobs.put(fingerprint_hex, bytes(region._data[exclude:]))
    delta = {"mode": "blob"}
    if eligible:
        delta["chunk_size"] = tree.chunk_size
        delta["index"] = index_hex
    return delta


# ---------------------------------------------------------------------------
# Chains: verify, materialize, compact, load
# ---------------------------------------------------------------------------

def verify_chain(documents: list[dict]) -> None:
    """Check a root-first document list is a well-formed delta chain:
    full root, delta descendants of one kind, each ``parent_id``
    matching the :func:`document_id` of the document before it."""
    if not documents:
        raise SnapshotError("delta chain is empty")
    root = documents[0]
    errors = validate_snapshot(root)
    if errors:
        raise SnapshotError("invalid chain root: " + "; ".join(errors))
    if root["kind"] not in ("session", "swarm", "fleet"):
        raise SnapshotError(
            f"snapshot kind {root['kind']!r} has no delta form")
    previous_id = document_id(root)
    for position, document in enumerate(documents[1:], start=1):
        errors = validate_snapshot_delta(document)
        if errors:
            raise SnapshotError(f"invalid chain document {position}: "
                                + "; ".join(errors))
        if document["kind"] != root["kind"]:
            raise SnapshotError(
                f"chain document {position} kind {document['kind']!r} "
                f"does not match root kind {root['kind']!r}")
        if document["parent_id"] != previous_id:
            raise SnapshotError(
                f"chain broken at document {position}: parent_id "
                f"{document['parent_id']} does not match the previous "
                f"document's id {previous_id}")
        previous_id = document_id(document)


def materialize_chain(documents: list[dict]) -> dict:
    """Fold a root-first delta chain into one full document.

    The result is byte-identical (canonical JSON) to a full snapshot
    captured at the tip: the tip's non-region state travels verbatim,
    and each region image is the root image with every chunk overlay
    applied in chain order, verified against the tip's chunk-digest
    index when one was recorded.
    """
    verify_chain(documents)
    root = documents[0]
    kind = root["kind"]
    tip = documents[-1]
    # Deep copy via JSON round-trip: the fold strips "delta" keys from
    # the tip's region records in place and must not mutate the input.
    state = json.loads(json.dumps(tip["state"]))
    doc_states = [document["state"] for document in documents[:-1]]
    doc_states.append(state)
    doc_sessions = [_session_states(s, kind) for s in doc_states]
    doc_blobs = [BlobStore.decode(document["blobs"])
                 for document in documents]
    member_count = len(doc_sessions[0])
    for position, sessions in enumerate(doc_sessions):
        if len(sessions) != member_count:
            raise SnapshotError(
                f"chain document {position} has {len(sessions)} members; "
                f"root has {member_count}")
    out = BlobStore()
    for m in range(member_count):
        record_maps = [{record["name"]: record
                        for record in sessions[m]["device"]["regions"]}
                       for sessions in doc_sessions]
        for record in doc_sessions[-1][m]["device"]["regions"]:
            name = record["name"]
            records = []
            for position, record_map in enumerate(record_maps):
                link = record_map.get(name)
                if link is None:
                    raise SnapshotError(
                        f"region {name!r} missing from chain document "
                        f"{position}")
                records.append(link)
            image = _fold_region(name, records, doc_blobs)
            record.pop("delta", None)
            # Collision-checked: members sharing a fingerprint must
            # fold to identical images or the chain is corrupt.
            out.put(record["fingerprint"], image)
    meta = tip.get("meta")
    if meta is not None:
        meta = {key: value for key, value in meta.items()
                if key != "parent_path"}
        meta = meta or None
    return make_document(kind, state, out, meta)


def _fold_region(name: str, records: list[dict],
                 doc_blobs: list[BlobStore]) -> bytes:
    base = records[0]
    window_size = base["size"] - base["exclude"]
    image = bytearray(doc_blobs[0].get(base["fingerprint"]))
    if len(image) != window_size:
        raise SnapshotError(
            f"region {name!r}: root image is {len(image)} bytes, window "
            f"is {window_size}")
    for position, (record, blobs) in enumerate(
            zip(records[1:], doc_blobs[1:]), start=1):
        if (record["size"] != base["size"]
                or record["exclude"] != base["exclude"]):
            raise SnapshotError(
                f"region {name!r} geometry changed at chain document "
                f"{position}; delta chains require stable geometry")
        delta = record.get("delta")
        if delta is None:
            raise SnapshotError(
                f"region {name!r} has no delta record in chain document "
                f"{position}")
        mode = delta["mode"]
        if mode == "unchanged":
            continue
        if mode == "blob":
            image = bytearray(blobs.get(record["fingerprint"]))
            if len(image) != window_size:
                raise SnapshotError(
                    f"region {name!r}: blob at chain document {position} "
                    f"is {len(image)} bytes, window is {window_size}")
            continue
        if mode != "chunks":
            raise SnapshotError(
                f"region {name!r}: unknown delta mode {mode!r} at chain "
                f"document {position}")
        chunk_size = delta["chunk_size"]
        payload = blobs.get(delta["index"])
        if len(payload) % _DIGEST_LEN:
            raise SnapshotError(
                f"region {name!r}: malformed chunk-digest index at chain "
                f"document {position}")
        digests = [payload[i:i + _DIGEST_LEN]
                   for i in range(0, len(payload), _DIGEST_LEN)]
        expected = (window_size + chunk_size - 1) // chunk_size
        if len(digests) != expected:
            raise SnapshotError(
                f"region {name!r}: chunk-digest index at chain document "
                f"{position} has {len(digests)} entries, window needs "
                f"{expected}")
        for i in delta["dirty"]:
            if not 0 <= i < expected:
                raise SnapshotError(
                    f"region {name!r}: dirty chunk {i} out of range at "
                    f"chain document {position}")
            chunk = blobs.get(digests[i].hex())
            lo = i * chunk_size
            if len(chunk) != min(chunk_size, window_size - lo):
                raise SnapshotError(
                    f"region {name!r}: chunk {i} at chain document "
                    f"{position} has wrong length")
            image[lo:lo + len(chunk)] = chunk
    tip_delta = records[-1].get("delta")
    if tip_delta is not None and "index" in tip_delta:
        # End-to-end check: the folded image must hash chunk-for-chunk
        # to the tip's recorded leaf digests.
        chunk_size = tip_delta["chunk_size"]
        payload = doc_blobs[-1].get(tip_delta["index"])
        digests = [payload[i:i + _DIGEST_LEN]
                   for i in range(0, len(payload), _DIGEST_LEN)]
        for i, digest in enumerate(digests):
            lo = i * chunk_size
            chunk = bytes(image[lo:lo + chunk_size])
            if hashlib.sha1(chunk).digest() != digest:
                raise SnapshotError(
                    f"region {name!r}: folded chunk {i} does not match "
                    f"the tip checkpoint's digest index")
    return bytes(image)


def compact_chain(documents: list[dict]) -> dict:
    """Squash a root-first delta chain into one full snapshot document
    (restorable everywhere a directly captured one is)."""
    return materialize_chain(documents)


def load_chain(path: str) -> list[dict]:
    """Load a delta document and every ancestor, following each
    document's ``meta.parent_path`` (relative to the file that names
    it) until a full snapshot roots the chain.  Returns the documents
    root-first, linkage verified."""
    documents = []
    seen = set()
    current = os.path.abspath(os.fspath(path))
    while True:
        if current in seen:
            raise SnapshotError(f"delta parent chain cycles at {current}")
        seen.add(current)
        document = load_document(current)
        documents.append(document)
        if document.get("schema") != SNAPSHOT_DELTA_SCHEMA_ID:
            break
        parent_path = (document.get("meta") or {}).get("parent_path")
        if parent_path is None:
            raise SnapshotError(
                f"delta document {current} carries no meta.parent_path; "
                f"pass its parent explicitly")
        current = os.path.normpath(
            os.path.join(os.path.dirname(current), parent_path))
    documents.reverse()
    verify_chain(documents)
    return documents
