"""Content-addressed memory-image store for snapshot documents.

A fleet snapshot would naively cost O(N * writable_bytes): every member
carries a full RAM + flash + ROM image.  But fleet members are built
from one :class:`~repro.mcu.device.DeviceConfig` and mostly share byte
ranges -- the firmware image in flash is identical across the fleet and
honest RAM above the reserved words never diverges.  The repo already
has an exact sharing witness: each region's write-chain
:attr:`~repro.mcu.memory.MemoryRegion.content_fingerprint`, whose seed
binds the region name/geometry and which advances with every mutation
at or above ``fingerprint_exclude_below``.  Equal fingerprints therefore
imply byte-identical contents at and above that bound.

:class:`BlobStore` keys each region image (the bytes at/above the
exclude bound) by its fingerprint, so a 256-member fleet snapshot
stores O(unique region histories) images instead of 256 of each.  The
per-member excluded prefix (IDT / ``counter_R`` / ``Clock_MSB``) is
tiny and genuinely per-device, so it travels with the member record,
not the store.
"""

from __future__ import annotations

import hashlib

from ..errors import SnapshotError
from .codec import b64, unb64

__all__ = ["BlobStore"]


class BlobStore:
    """Deduplicated ``fingerprint-hex -> bytes`` map for region images."""

    def __init__(self):
        self._blobs: dict[str, bytes] = {}

    def __len__(self) -> int:
        return len(self._blobs)

    @property
    def total_bytes(self) -> int:
        """Stored payload size after deduplication."""
        return sum(len(blob) for blob in self._blobs.values())

    def put(self, fingerprint_hex: str, data: bytes) -> None:
        """Store ``data`` under its fingerprint; idempotent for equal
        content, loud for a collision (which would mean the write-chain
        sharing argument is broken)."""
        existing = self._blobs.get(fingerprint_hex)
        if existing is None:
            self._blobs[fingerprint_hex] = bytes(data)
        elif existing != data:
            raise SnapshotError(
                f"blob collision on fingerprint {fingerprint_hex}: two "
                f"different images claim the same write chain (stored: "
                f"{len(existing)} bytes, sha1 "
                f"{hashlib.sha1(existing).hexdigest()}; incoming: "
                f"{len(data)} bytes, sha1 "
                f"{hashlib.sha1(bytes(data)).hexdigest()})")

    def get(self, fingerprint_hex: str) -> bytes:
        try:
            return self._blobs[fingerprint_hex]
        except KeyError:
            raise SnapshotError(
                f"snapshot references missing blob {fingerprint_hex}") \
                from None

    def merge(self, other: "BlobStore") -> None:
        """Union another store in (collision-checked)."""
        for fingerprint_hex, data in other._blobs.items():
            self.put(fingerprint_hex, data)

    def subset(self, keys) -> "BlobStore":
        """A new store holding only the given keys that are present.

        Absent keys are skipped, not an error: a delta-snapshot parent
        legitimately lacks an image blob for regions it recorded as
        ``unchanged``/``chunks`` (the capture path falls back to a whole
        blob when a referenced payload is unavailable).  Used to ship
        each fleet shard only the parent payloads its members reference.
        """
        store = BlobStore()
        for key in keys:
            data = self._blobs.get(key)
            if data is not None:
                store._blobs[key] = data
        return store

    def stats(self) -> dict:
        """JSON-ready size counters (no mutation, nothing evicted)."""
        return {"blobs": len(self._blobs), "bytes": self.total_bytes}

    def publish(self, telemetry) -> None:
        """Export the size counters as gauges on a telemetry registry.

        Sets ``snapshot.blobs`` / ``snapshot.bytes`` (names registered
        in :mod:`repro.obs.schema`).  Deliberately not called from
        ``put``: snapshot capture must not perturb registry dumps, or
        restored runs would diverge from uninterrupted ones.  Call it
        when a report wants a checkpoint-size snapshot.
        """
        telemetry.set_gauge("snapshot.blobs", len(self._blobs))
        telemetry.set_gauge("snapshot.bytes", self.total_bytes)

    def encode(self) -> dict:
        """JSON form: base64 images keyed by fingerprint hex."""
        return {fp: b64(data) for fp, data in sorted(self._blobs.items())}

    @classmethod
    def decode(cls, encoded: dict) -> "BlobStore":
        store = cls()
        for fingerprint_hex, text in encoded.items():
            store.put(fingerprint_hex, unb64(text))
        return store
