"""Service-level snapshot: member sessions plus admission state.

A service snapshot is the member sessions (sharing one deduplicating
:class:`~repro.snapshot.blobs.BlobStore`), the per-tenant token-bucket
levels, the virtual admission clock, the admission counters and the
service-level metrics registry.  Like every snapshot it is captured
between rounds (each member session must be quiescent) and restores by
deterministic-rebuild-then-overwrite.

Placement is deliberately *not* part of the contract: member identity
is checked by ``(device_id, index, tenant)`` only, so a snapshot taken
on a 2-backend service restores into an 8-backend rebuild -- the shard
map decides where sessions run, never what they answer (the PR 5
shard-identity discipline).
"""

from __future__ import annotations

from ..errors import SnapshotError
from ..obs.registry import MetricsRegistry
from ..obs.telemetry import Telemetry
from .blobs import BlobStore
from .session import restore_session, snapshot_session
from .swarm import _restore_cache, _snapshot_cache

__all__ = ["snapshot_service", "restore_service"]


def snapshot_service(service, blobs: BlobStore) -> dict:
    """Capture a service between requests; images go to ``blobs``."""
    return {
        "virtual_now": service.virtual_now,
        "admitted": service.admitted,
        "rejected": service.rejected,
        "peak_in_flight": service.peak_in_flight,
        "members": [{"device_id": member.device_id, "index": member.index,
                     "tenant": member.tenant,
                     "session": snapshot_session(member.session, blobs)}
                    for member in service.members],
        "buckets": {tenant: {"tokens": bucket.tokens,
                             "updated": bucket.updated,
                             "rate": bucket.rate, "burst": bucket.burst}
                    for tenant, bucket in service.buckets.items()},
        "state_cache": (_snapshot_cache(service.state_cache)
                        if service.state_cache is not None else None),
        "service_registry": (service.telemetry.registry.dump()
                             if service.observe else None),
    }


def restore_service(service, snap: dict, blobs: BlobStore) -> None:
    """Overwrite a freshly rebuilt ``service`` with captured state."""
    captured = [(m["device_id"], m["index"], m["tenant"])
                for m in snap["members"]]
    rebuilt = [(m.device_id, m.index, m.tenant) for m in service.members]
    if captured != rebuilt:
        raise SnapshotError(
            f"member set mismatch: snapshot has {len(captured)} members, "
            f"rebuilt service disagrees on identity or tenancy")
    for member, record in zip(service.members, snap["members"]):
        restore_session(member.session, record["session"], blobs)
    if set(snap["buckets"]) != set(service.buckets):
        raise SnapshotError("tenant set mismatch")
    for tenant, state in snap["buckets"].items():
        bucket = service.buckets[tenant]
        if (bucket.rate != state["rate"]
                or bucket.burst != state["burst"]):
            raise SnapshotError(
                f"token bucket for {tenant} was captured with a different "
                f"duty budget (rate/burst mismatch)")
        bucket.tokens = state["tokens"]
        bucket.updated = state["updated"]
    service.virtual_now = snap["virtual_now"]
    service.admitted = snap["admitted"]
    service.rejected = snap["rejected"]
    service.peak_in_flight = snap["peak_in_flight"]
    if snap["state_cache"] is not None:
        if service.state_cache is None:
            raise SnapshotError(
                "snapshot carries a state-digest cache but the rebuilt "
                "service has none attached")
        _restore_cache(service.state_cache, snap["state_cache"])
    elif service.state_cache is not None:
        raise SnapshotError(
            "rebuilt service has a state-digest cache but the snapshot "
            "was taken without one")
    if snap["service_registry"] is not None:
        if not service.observe:
            raise SnapshotError(
                "snapshot carries service telemetry but the rebuilt "
                "service is unobserved")
        service.telemetry = Telemetry(
            registry=MetricsRegistry.from_dump(snap["service_registry"]))
    elif service.observe:
        raise SnapshotError(
            "rebuilt service is observed but the snapshot was taken "
            "without telemetry")
