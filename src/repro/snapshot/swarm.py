"""Swarm-level snapshot: N member sessions plus fleet bookkeeping.

A swarm snapshot is the member sessions (all sharing one deduplicating
:class:`~repro.snapshot.blobs.BlobStore` -- the fleet-scale win), the
per-device circuit breakers, the sweep counter, and the shared
state-digest cache.  The swarm's retry-jitter root RNG is deliberately
*not* captured: the swarm only ever branches per-sweep substreams off
it (``substream(f"{device_id}:{sweeps_run}")``), never consumes it
directly, so rebuilding it from the seed reproduces every future
substream exactly.

Restore order matters for the digest cache: member restore re-installs
region fingerprints, and the cache payload is applied *after* the
rebuilt swarm's spin-up so the spin-up's own hit/miss accounting is
overwritten -- a restored-and-continued fleet reports the same cache
stats as one that never stopped.

:func:`replay_to_seq` implements deterministic replay: restore, then
re-drive sweeps until the merged event trace reaches a target sequence
number, returning the exact record prefix.  Replay is re-execution, so
it works from any snapshot and any reachable target.
"""

from __future__ import annotations

from ..errors import SnapshotError
from .blobs import BlobStore
from .session import restore_session, snapshot_session

__all__ = ["snapshot_swarm", "restore_swarm", "replay_to_seq"]


def snapshot_swarm(swarm, blobs: BlobStore, parent=None) -> dict:
    """Capture a swarm between sweeps; region images go to ``blobs``.

    With a ``parent`` (:class:`repro.snapshot.delta.DeltaBase`), each
    member's region records carry chunk deltas against the parent
    checkpoint instead of whole images -- the parent's member identity
    list must match this swarm's exactly.
    """
    if parent is not None:
        identity = [(member.device_id, member.index)
                    for member in swarm.members]
        if parent.identity != identity:
            raise SnapshotError(
                f"delta parent member set mismatch: parent has "
                f"{parent.identity}, swarm has {identity}")
    return {
        "sweeps_run": swarm.sweeps_run,
        "members": [{"device_id": member.device_id, "index": member.index,
                     "session": snapshot_session(
                         member.session, blobs,
                         parent=(parent.member(i) if parent is not None
                                 else None))}
                    for i, member in enumerate(swarm.members)],
        "breakers": {device_id: _snapshot_breaker(breaker)
                     for device_id, breaker in swarm.breakers.items()},
        "state_cache": (_snapshot_cache(swarm.state_cache)
                        if swarm.state_cache is not None else None),
        "trace_marks": ([list(marks) for marks in swarm._trace_marks]
                        if swarm.observe else None),
    }


def restore_swarm(swarm, snap: dict, blobs: BlobStore) -> None:
    """Overwrite a freshly rebuilt ``swarm`` with captured state."""
    captured = [(m["device_id"], m["index"]) for m in snap["members"]]
    rebuilt = [(m.device_id, m.index) for m in swarm.members]
    if captured != rebuilt:
        raise SnapshotError(
            f"member set mismatch: snapshot has {captured}, rebuilt "
            f"swarm has {rebuilt}")
    for member, record in zip(swarm.members, snap["members"]):
        restore_session(member.session, record["session"], blobs)
    if set(snap["breakers"]) != set(swarm.breakers):
        raise SnapshotError("circuit-breaker set mismatch")
    for device_id, state in snap["breakers"].items():
        _restore_breaker(swarm.breakers[device_id], state)
    swarm.sweeps_run = snap["sweeps_run"]
    marks = snap.get("trace_marks")
    swarm._trace_marks = ([list(row) for row in marks]
                          if marks is not None else [])
    if snap["state_cache"] is not None:
        if swarm.state_cache is None:
            raise SnapshotError(
                "snapshot carries a state-digest cache but the rebuilt "
                "swarm has none attached")
        _restore_cache(swarm.state_cache, snap["state_cache"])
    elif swarm.state_cache is not None:
        # Captured swarm ran uncached: continuing must too, or hit/miss
        # accounting diverges from the uninterrupted run.
        raise SnapshotError(
            "rebuilt swarm has a state-digest cache but the snapshot "
            "was taken without one")


def replay_to_seq(swarm, snap: dict, blobs: BlobStore, target_seq: int, *,
                  stagger_seconds: float = 0.0, max_sweeps: int = 64) -> list:
    """Restore ``swarm`` from ``snap`` and re-drive it until the merged
    trace covers ``target_seq``; return records ``0..target_seq``.

    The restored fleet is swept deterministically until its merged
    event trace contains the target sequence number, so any event of
    the original timeline at or after the checkpoint can be
    reproduced exactly.  Raises :class:`SnapshotError` if the target is
    not reached within ``max_sweeps`` (e.g. a quarantined-out fleet
    that no longer emits events).
    """
    if target_seq < 0:
        raise SnapshotError("replay target seq cannot be negative")
    restore_swarm(swarm, snap, blobs)
    records = swarm.merged_trace_records()
    for _ in range(max_sweeps):
        if len(records) > target_seq:
            break
        swarm.sweep(stagger_seconds=stagger_seconds)
        records = swarm.merged_trace_records()
    if len(records) <= target_seq:
        raise SnapshotError(
            f"replay reached only {len(records)} events after "
            f"{max_sweeps} sweeps; target seq {target_seq} unreachable")
    return records[:target_seq + 1]


# ---------------------------------------------------------------------------
# Pieces
# ---------------------------------------------------------------------------

def _snapshot_breaker(breaker) -> dict:
    return {"state": breaker.state,
            "consecutive_failures": breaker.consecutive_failures,
            "probes_skipped": breaker.probes_skipped,
            "transitions": [list(t) for t in breaker.transitions]}


def _restore_breaker(breaker, state: dict) -> None:
    breaker.state = state["state"]
    breaker.consecutive_failures = state["consecutive_failures"]
    breaker.probes_skipped = state["probes_skipped"]
    breaker.transitions = [tuple(t) for t in state["transitions"]]


def _snapshot_cache(cache) -> dict:
    # Insertion order carries the FIFO-eviction semantics.  Two key
    # shapes exist: history keys are tuples of (start, end, fingerprint)
    # span triples and encode as the original list-of-triples; content
    # keys (incremental measurement, see ``Device._content_digest_key``)
    # are ("content", (start, end, chunk_size, arity, root), ...) and
    # encode tagged as ["content", [[...], ...]].  Decode dispatches on
    # the first element -- a string only ever means a content key, so
    # old documents (whose first element is a triple list) still load.
    return {"hits": cache.hits, "misses": cache.misses,
            "max_entries": cache.max_entries,
            "entries": [[_encode_cache_key(key), digest.hex()]
                        for key, digest in cache._entries.items()]}


def _encode_cache_key(key: tuple) -> list:
    if key and key[0] == "content":
        return ["content",
                [[start, end, chunk_size, arity, root.hex()]
                 for start, end, chunk_size, arity, root in key[1:]]]
    return [[start, end, fingerprint.hex()]
            for start, end, fingerprint in key]


def _decode_cache_key(spans: list) -> tuple:
    if spans and spans[0] == "content":
        return ("content",
                *((start, end, chunk_size, arity, bytes.fromhex(root))
                  for start, end, chunk_size, arity, root in spans[1]))
    return tuple((start, end, bytes.fromhex(fingerprint))
                 for start, end, fingerprint in spans)


def _restore_cache(cache, state: dict) -> None:
    if cache.max_entries != state["max_entries"]:
        raise SnapshotError("state-digest cache capacity mismatch")
    cache._entries.clear()
    for spans, digest in state["entries"]:
        cache._entries[_decode_cache_key(spans)] = bytes.fromhex(digest)
    cache.hits = state["hits"]
    cache.misses = state["misses"]
