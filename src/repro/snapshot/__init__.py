"""Checkpoint/restore with deterministic replay (``repro.snapshot``).

Serializable, versioned snapshots of the *entire* simulation state --
device memory (content-addressed and deduplicated across a fleet),
EA-MPU registers, clocks and interrupt state, freshness state, RNG
stream positions, circuit breakers, telemetry -- at session, swarm and
fleet granularity.

The core contract is **byte-identity**: restoring a snapshot into a
freshly rebuilt object and continuing the run produces digests, cycle
counts, energy, registry dumps and event traces identical to a run
that never stopped.  Restore is therefore deterministic rebuild plus
field overwrite, never deserialization of live objects; snapshots are
plain JSON and refuse (``SnapshotError``) anything they cannot
reproduce exactly -- pending simulator events, mismatched rebuilds,
unknown adversary types.

Entry points:

* ``Session.snapshot()`` / ``Swarm.snapshot()`` /
  ``FleetEngine.snapshot()`` -- capture to an envelope dict;
* the matching ``.restore(document)`` methods -- overwrite a rebuilt
  object;
* :func:`replay_to_seq` -- restore and re-drive a swarm until its
  merged event trace reaches a target sequence number;
* ``snapshot(parent=...)`` on each entry point -- **delta** capture
  (``repro.snapshot.delta/v1``): record only the chunks whose digest-
  tree leaves changed since a parent checkpoint, with
  :func:`materialize_chain` / :func:`compact_chain` folding a chain
  back into a byte-identical full document (see
  :mod:`repro.snapshot.delta`);
* :func:`bisect_replay` -- binary-search the merged-trace seq axis for
  the first record matching a predicate, restarting probes from the
  nearest checkpoint (see :mod:`repro.snapshot.bisect`);
* ``python -m repro snapshot save|restore|replay|compact|bisect`` --
  the same flows from the command line, with the rebuild spec embedded
  in the file.
"""

from .bisect import bisect_replay, checkpoint_trace_length, linear_scan
from .blobs import BlobStore
from .codec import (decode_message, encode_adversary, encode_message,
                    restore_adversary, restore_rng, rng_state)
from .delta import (DeltaBase, ParentMember, capture_region_delta,
                    compact_chain, document_id, load_chain,
                    make_delta_document, materialize_chain,
                    parent_blob_keys, unwrap_parent, verify_chain)
from .device import restore_device, snapshot_device
from .document import (build_swarm_from_spec, flatten_fleet_state,
                       load_document, make_document, save_document,
                       swarm_spec, unwrap_document)
from .service import restore_service, snapshot_service
from .session import restore_session, snapshot_session
from .swarm import replay_to_seq, restore_swarm, snapshot_swarm

__all__ = ["BlobStore", "snapshot_device", "restore_device",
           "snapshot_session", "restore_session", "snapshot_swarm",
           "restore_swarm", "snapshot_service", "restore_service",
           "replay_to_seq", "make_document",
           "unwrap_document", "save_document", "load_document",
           "flatten_fleet_state", "swarm_spec", "build_swarm_from_spec",
           "rng_state", "restore_rng", "encode_message", "decode_message",
           "encode_adversary", "restore_adversary",
           "DeltaBase", "ParentMember", "capture_region_delta",
           "compact_chain", "document_id", "load_chain",
           "make_delta_document", "materialize_chain", "parent_blob_keys",
           "unwrap_parent", "verify_chain",
           "bisect_replay", "checkpoint_trace_length", "linear_scan"]
