"""Replay bisection: find the first trace event matching a predicate.

Deterministic replay (``replay_to_seq``) can reproduce any event of a
recorded timeline -- but locating *which* event first went wrong by
replaying from seq 0 costs the whole timeline.  With a series of
checkpoints along the run, :func:`bisect_replay` binary-searches the
merged-trace seq axis instead, restarting every probe from the nearest
checkpoint at or before the probe target, so the events actually
re-generated are O(checkpoint spacing * log N) instead of O(N).

The cost model is honest about what checkpoints already contain: a
checkpoint stores the full merged-trace prefix up to its capture point,
so probing a seq *inside* a stored prefix re-generates nothing -- only
probe targets beyond the nearest checkpoint's stored trace pay sweeps.
``events_replayed`` counts exactly those re-generated events, which is
the number a linear scan from the oldest checkpoint
(:func:`linear_scan`) pays in full.

Checkpoints must be observed (``observe=True`` swarms): the stored
per-member trace lengths anchor each document on the seq axis.
Documents may be full snapshots or delta chains -- a root-first list
mixing both is materialized checkpoint by checkpoint.
"""

from __future__ import annotations

from ..errors import SnapshotError
from ..obs.schema import SNAPSHOT_DELTA_SCHEMA_ID
from .delta import _session_states, materialize_chain

__all__ = ["bisect_replay", "checkpoint_trace_length", "linear_scan"]


def checkpoint_trace_length(document: dict) -> int:
    """How many merged-trace records a checkpoint already contains
    (its position on the fleet-wide seq axis)."""
    sessions = _session_states(document["state"], document["kind"])
    total = 0
    for session in sessions:
        telemetry = session.get("telemetry")
        if telemetry is None:
            raise SnapshotError(
                "bisection needs observed checkpoints (the captured "
                "swarm must have been built with observe=True)")
        total += len(telemetry["trace"]["records"])
    return total


def _materialize_all(documents: list[dict]) -> list[dict]:
    """Turn a root-first checkpoint list (full documents and/or delta
    descendants) into restorable full documents, one per checkpoint.
    A full document restarts the chain base; a delta document folds
    onto everything since the last full one."""
    full = []
    chain_start = 0
    for index, document in enumerate(documents):
        if document.get("schema") == SNAPSHOT_DELTA_SCHEMA_ID:
            if index == 0:
                raise SnapshotError(
                    "checkpoint list starts with a delta document; the "
                    "oldest checkpoint must be a full snapshot")
            full.append(materialize_chain(documents[chain_start:index + 1]))
        else:
            chain_start = index
            full.append(document)
    return full


def bisect_replay(swarm, documents: list[dict], predicate, *,
                  hi: int | None = None, stagger_seconds: float = 0.0,
                  max_sweeps: int = 64) -> dict:
    """Binary-search the merged-trace seq axis for the first record
    where ``predicate(record)`` is true, probing via ``swarm``.

    ``documents`` is a root-first list of checkpoints of one timeline
    (oldest first; full snapshots or delta descendants).  ``swarm``
    must be a freshly built twin of the captured fleet; it is restored
    repeatedly and left at the final probe's state.  ``hi`` optionally
    caps the search to seqs ``<= hi`` known to contain a match;
    without it an upper bound is established from the newest
    checkpoint, sweeping forward until the predicate first matches.

    Returns ``{"seq", "record", "probes", "events_replayed"}`` where
    ``events_replayed`` counts only *re-generated* events (records
    beyond a restored checkpoint's stored trace) -- the axis on which
    bisection beats :func:`linear_scan`.

    Raises :class:`SnapshotError` if the predicate never matches
    within ``max_sweeps`` of the newest checkpoint, or if the
    checkpoints are not ordered oldest to newest.
    """
    if not documents:
        raise SnapshotError("bisection needs at least one checkpoint")
    documents = _materialize_all(documents)
    lengths = [checkpoint_trace_length(document) for document in documents]
    for earlier, later in zip(lengths, lengths[1:]):
        if later < earlier:
            raise SnapshotError(
                "checkpoints must be ordered oldest to newest (stored "
                "trace lengths decreased)")
    probes = 0
    events_replayed = 0
    best = None

    def scan(records, limit):
        for record in records[:limit]:
            if predicate(record):
                return record
        return None

    if hi is None:
        swarm.restore(documents[-1])
        records = swarm.merged_trace_records()
        match = scan(records, len(records))
        sweeps = 0
        while match is None:
            if sweeps >= max_sweeps:
                raise SnapshotError(
                    f"predicate never matched within {max_sweeps} sweeps "
                    f"of the newest checkpoint")
            swarm.sweep(stagger_seconds=stagger_seconds)
            sweeps += 1
            records = swarm.merged_trace_records()
            match = scan(records, len(records))
        events_replayed += len(records) - lengths[-1]
        best = match
        hi = match["seq"]

    lo = 0
    while lo < hi:
        mid = (lo + hi) // 2
        nearest = 0
        for index, length in enumerate(lengths):
            if length <= mid + 1:
                nearest = index
        probes += 1
        records = swarm.replay_to_seq(documents[nearest], mid,
                                      stagger_seconds=stagger_seconds,
                                      max_sweeps=max_sweeps)
        events_replayed += (len(swarm.merged_trace_records())
                            - lengths[nearest])
        match = scan(records, mid + 1)
        if match is not None:
            hi = match["seq"]
            best = match
        else:
            lo = mid + 1
    if best is None or best["seq"] != lo:
        raise SnapshotError(
            f"bisection converged on seq {lo} without a matching record")
    return {"seq": lo, "record": best, "probes": probes,
            "events_replayed": events_replayed}


def linear_scan(swarm, document: dict, predicate, *,
                stagger_seconds: float = 0.0,
                max_sweeps: int = 64) -> dict:
    """The baseline bisection beats: restore the oldest checkpoint and
    sweep forward, scanning every record in order, until the predicate
    first matches.  Same return shape as :func:`bisect_replay` (minus
    ``probes``); ``events_replayed`` counts re-generated events."""
    documents = _materialize_all([document])
    document = documents[0]
    base = checkpoint_trace_length(document)
    swarm.restore(document)
    records = swarm.merged_trace_records()
    scanned = 0
    sweeps = 0
    while True:
        for record in records[scanned:]:
            if predicate(record):
                return {"seq": record["seq"], "record": record,
                        "events_replayed": max(0, len(records) - base)}
        scanned = len(records)
        if sweeps >= max_sweeps:
            raise SnapshotError(
                f"predicate never matched within {max_sweeps} sweeps of "
                f"the checkpoint")
        swarm.sweep(stagger_seconds=stagger_seconds)
        sweeps += 1
        records = swarm.merged_trace_records()
