"""Session-level snapshot: one prover/verifier pair and its channel.

Captures everything that evolves during attestation rounds on top of
the device itself: simulator clock, channel transcript and fault-model
RNG positions, verifier freshness state (counters, nonce RNG, challenge
RNG), the prover trust anchor's stats/rate-limit/nonce history, the
verifier node's outstanding requests, and the attached telemetry
(metrics registry + event trace).

Quiescence contract: a session snapshot is only defined at a protocol
boundary -- no scheduled events in flight (``sim.pending == 0``) and no
execution context on the CPU stack.  Draining instead of refusing would
advance simulated time and break byte-identity with an uninterrupted
run, so :func:`snapshot_session` raises :class:`SnapshotError` rather
than guessing.  Every path the swarm/fleet layers snapshot from
(sweep boundaries) satisfies the contract by construction.
"""

from __future__ import annotations

from ..core.messages import AttestationRequest
from ..core.verifier import VerificationResult
from ..errors import SnapshotError
from ..net.trace import Transcript, TranscriptEntry
from ..obs.registry import MetricsRegistry
from ..obs.trace import EventTrace, TraceEvent
from .blobs import BlobStore
from .codec import (b64, decode_message, encode_adversary, encode_message,
                    restore_adversary, restore_rng, rng_state, unb64)
from .device import restore_device, snapshot_device

__all__ = ["snapshot_session", "restore_session"]


def snapshot_session(session, blobs: BlobStore, parent=None) -> dict:
    """Capture a quiescent session; region images go to ``blobs``.

    With a ``parent`` (:class:`repro.snapshot.delta.ParentMember`), the
    device's region records carry chunk deltas against the parent
    checkpoint instead of whole images (see ``repro.snapshot.delta``).
    """
    if session.sim.pending:
        raise SnapshotError(
            f"cannot snapshot with {session.sim.pending} simulation "
            f"event(s) still scheduled; run the simulation to a protocol "
            f"boundary first")
    if session.device.cpu._context_stack:
        raise SnapshotError(
            "cannot snapshot while the CPU is executing inside a context")
    return {
        "sim": {"now": session.sim.now,
                "events_processed": session.sim.events_processed},
        "device": snapshot_device(session.device, blobs, parent=parent),
        "channel": _snapshot_channel(session.channel),
        "verifier": _snapshot_verifier(session.verifier),
        "verifier_node": _snapshot_verifier_node(session.verifier_node),
        "anchor": _snapshot_anchor(session.anchor),
        "telemetry": _snapshot_telemetry(session.telemetry),
    }


def restore_session(session, snap: dict, blobs: BlobStore) -> None:
    """Overwrite a freshly rebuilt session with captured state.

    ``session`` must have been built with the same ``build_session``
    parameters (and have learned its reference state the same way) as
    the captured one; restore then replaces every runtime-mutable
    field, after which continuing the session is byte-identical to
    never having stopped.
    """
    session.sim.now = snap["sim"]["now"]
    session.sim.events_processed = snap["sim"]["events_processed"]
    restore_device(session.device, snap["device"], blobs)
    _restore_channel(session.channel, snap["channel"])
    _restore_verifier(session.verifier, snap["verifier"])
    _restore_verifier_node(session.verifier_node, snap["verifier_node"])
    _restore_anchor(session.anchor, snap["anchor"])
    _restore_telemetry(session.telemetry, snap["telemetry"])


# ---------------------------------------------------------------------------
# Channel (transcript, counters, fault state)
# ---------------------------------------------------------------------------

def _snapshot_channel(channel) -> dict:
    return {
        "latency_rng": rng_state(channel._latency_rng),
        "delivered": channel.delivered,
        "dropped": channel.dropped,
        "injected": channel.injected,
        "duplicated": channel.duplicated,
        "adversary": encode_adversary(channel.adversary),
        "transcript": [{"time": entry.time, "sender": entry.sender,
                        "receiver": entry.receiver, "outcome": entry.outcome,
                        "message": encode_message(entry.message)}
                       for entry in channel.transcript._entries],
    }


def _restore_channel(channel, state: dict) -> None:
    restore_rng(channel._latency_rng, state["latency_rng"])
    channel.delivered = state["delivered"]
    channel.dropped = state["dropped"]
    channel.injected = state["injected"]
    channel.duplicated = state["duplicated"]
    restore_adversary(channel.adversary, state["adversary"])
    transcript = Transcript()
    for record in state["transcript"]:
        transcript._entries.append(TranscriptEntry(
            record["time"], record["sender"], record["receiver"],
            decode_message(record["message"]), record["outcome"]))
    channel.transcript = transcript


# ---------------------------------------------------------------------------
# Verifier and its protocol node
# ---------------------------------------------------------------------------

def _snapshot_verifier(verifier) -> dict:
    return {
        "requests_issued": verifier.requests_issued,
        "responses_validated": verifier.responses_validated,
        "timeouts": verifier.timeouts,
        "reference_measurements": sorted(
            m.hex() for m in verifier.reference_measurements),
        "next_counter": verifier.freshness_state.next_counter,
        "nonce_rng": rng_state(verifier.freshness_state.rng),
        "challenge_rng": rng_state(verifier._challenge_rng),
    }


def _restore_verifier(verifier, state: dict) -> None:
    verifier.requests_issued = state["requests_issued"]
    verifier.responses_validated = state["responses_validated"]
    verifier.timeouts = state["timeouts"]
    verifier.reference_measurements = {
        bytes.fromhex(m) for m in state["reference_measurements"]}
    verifier.freshness_state.next_counter = state["next_counter"]
    restore_rng(verifier.freshness_state.rng, state["nonce_rng"])
    restore_rng(verifier._challenge_rng, state["challenge_rng"])


def _snapshot_verifier_node(node) -> dict:
    return {
        "outstanding": [b64(request.to_bytes())
                        for request in node._outstanding],
        # Insertion order carries the FIFO-eviction semantics of the
        # request-time table, so it is serialized as ordered pairs.
        "request_times": [[challenge.hex(), when]
                          for challenge, when in node._request_times.items()],
        "results": [[r.authentic, r.state_known_good, r.detail]
                    for r in node.results],
        "last_result_time": node.last_result_time,
        "last_round_seconds": node.last_round_seconds,
    }


def _restore_verifier_node(node, state: dict) -> None:
    node._outstanding = [AttestationRequest.from_bytes(unb64(text))
                         for text in state["outstanding"]]
    node._request_times = {bytes.fromhex(challenge): when
                           for challenge, when in state["request_times"]}
    node.results = [VerificationResult(authentic, state_known_good, detail)
                    for authentic, state_known_good, detail
                    in state["results"]]
    node.last_result_time = state["last_result_time"]
    node.last_round_seconds = state["last_round_seconds"]


# ---------------------------------------------------------------------------
# Prover trust anchor
# ---------------------------------------------------------------------------

def _snapshot_anchor(anchor) -> dict:
    nonces = anchor.state._nonces
    return {
        "last_attest_seconds": anchor._last_attest_seconds,
        "busy_intervals": [[start, end]
                           for start, end in anchor.busy_intervals],
        "stats": {"received": anchor.stats.received,
                  "accepted": anchor.stats.accepted,
                  "rejected": dict(anchor.stats.rejected),
                  "validation_cycles": anchor.stats.validation_cycles,
                  "attestation_cycles": anchor.stats.attestation_cycles},
        # The nonce history's lazy-deletion deque keeps stale entries
        # until they surface in pop_oldest; the full deque travels so
        # future evictions replay identically.
        "nonces": {"order": [n.hex() for n in nonces._order],
                   "members": sorted(n.hex() for n in nonces._members),
                   "stored_bytes": nonces.stored_bytes},
    }


def _restore_anchor(anchor, state: dict) -> None:
    from collections import deque
    anchor._last_attest_seconds = state["last_attest_seconds"]
    anchor.busy_intervals = [(start, end)
                             for start, end in state["busy_intervals"]]
    stats = state["stats"]
    anchor.stats.received = stats["received"]
    anchor.stats.accepted = stats["accepted"]
    anchor.stats.rejected = dict(stats["rejected"])
    anchor.stats.validation_cycles = stats["validation_cycles"]
    anchor.stats.attestation_cycles = stats["attestation_cycles"]
    nonces = anchor.state._nonces
    nonce_state = state["nonces"]
    nonces._order = deque(bytes.fromhex(n) for n in nonce_state["order"])
    nonces._members = {bytes.fromhex(n) for n in nonce_state["members"]}
    nonces.stored_bytes = nonce_state["stored_bytes"]


# ---------------------------------------------------------------------------
# Telemetry (metrics registry + event trace)
# ---------------------------------------------------------------------------

def _snapshot_telemetry(telemetry) -> dict | None:
    if not telemetry.enabled or telemetry.registry is None:
        return None
    trace = telemetry.trace
    return {
        "registry": telemetry.registry.dump(),
        "trace": {"records": trace.as_records(),
                  "seq": trace._seq,
                  "dropped_events": trace.dropped_events,
                  "max_events": trace.max_events},
    }


def _restore_telemetry(telemetry, state: dict | None) -> None:
    if state is None:
        if telemetry.enabled and telemetry.registry is not None:
            raise SnapshotError(
                "snapshot has no telemetry but the rebuilt session "
                "observes; rebuild without telemetry or re-capture")
        return
    if not telemetry.enabled or telemetry.registry is None:
        raise SnapshotError(
            "snapshot carries telemetry but the rebuilt session does "
            "not observe; rebuild with a Telemetry sink attached")
    telemetry.registry = MetricsRegistry.from_dump(state["registry"])
    trace_state = state["trace"]
    trace = EventTrace(max_events=trace_state["max_events"])
    # extend_records() re-sequences, which would break replay-to-seq
    # anchoring; events are rebuilt verbatim with their original seqs.
    for record in trace_state["records"]:
        fields = {key: value for key, value in record.items()
                  if key not in ("seq", "time", "kind")}
        trace.events.append(TraceEvent(record["seq"], record["time"],
                                       record["kind"], fields))
    trace._seq = trace_state["seq"]
    trace.dropped_events = trace_state["dropped_events"]
    telemetry.trace = trace
