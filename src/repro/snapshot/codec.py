"""Low-level value codecs shared by every snapshot layer.

Snapshots are dependency-free JSON documents, so every non-JSON value
gets an explicit, reversible encoding here:

* raw bytes -- base64 (``b64``/``unb64``) for bulk payloads, hex for
  20-byte fingerprints and nonces (readable in diffs);
* :class:`~repro.crypto.rng.DeterministicRng` -- its four 20-byte HMAC
  chain values, so a restored stream continues *exactly* where the
  captured one stopped (and its ``substream`` children stay anchored to
  the same root);
* wire messages -- their canonical ``to_bytes`` encodings, which
  round-trip exactly (``ATRQ``/``ATRP`` magics);
* channel adversaries -- a type-tagged record of only the *mutable*
  state (RNG positions, Gilbert-Elliott burst flag); the configuration
  itself is rebuilt by the caller, and restore refuses a type mismatch.

Every ``restore_*`` function overwrites state on an already-rebuilt
object instead of constructing one: restore is deterministic rebuild
plus overwrite, never deserialization of arbitrary types.
"""

from __future__ import annotations

import base64

from ..core.messages import AttestationRequest, AttestationResponse
from ..errors import SnapshotError

__all__ = ["b64", "unb64", "rng_state", "restore_rng", "encode_message",
           "decode_message", "encode_adversary", "restore_adversary"]


def b64(data: bytes) -> str:
    return base64.b64encode(bytes(data)).decode("ascii")


def unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


# ---------------------------------------------------------------------------
# Deterministic RNG streams
# ---------------------------------------------------------------------------

def rng_state(rng) -> dict:
    """Capture a :class:`DeterministicRng`'s full HMAC-chain state."""
    return {"key": rng._key.hex(), "value": rng._value.hex(),
            "root_key": rng._root_key.hex(),
            "root_value": rng._root_value.hex()}


def restore_rng(rng, state: dict) -> None:
    """Overwrite ``rng`` with a captured chain state."""
    rng._key = bytes.fromhex(state["key"])
    rng._value = bytes.fromhex(state["value"])
    rng._root_key = bytes.fromhex(state["root_key"])
    rng._root_value = bytes.fromhex(state["root_value"])


# ---------------------------------------------------------------------------
# Wire messages
# ---------------------------------------------------------------------------

def encode_message(message) -> dict:
    """Encode a request/response via its exact wire representation."""
    if isinstance(message, AttestationRequest):
        return {"kind": "req", "data": b64(message.to_bytes())}
    if isinstance(message, AttestationResponse):
        return {"kind": "rsp", "data": b64(message.to_bytes())}
    raise SnapshotError(
        f"cannot snapshot message of type {type(message).__name__}")


def decode_message(record: dict):
    data = unb64(record["data"])
    if record["kind"] == "req":
        return AttestationRequest.from_bytes(data)
    if record["kind"] == "rsp":
        return AttestationResponse.from_bytes(data)
    raise SnapshotError(f"unknown message kind {record['kind']!r}")


# ---------------------------------------------------------------------------
# Channel adversaries / fault models
# ---------------------------------------------------------------------------

def encode_adversary(adversary) -> dict | None:
    """Capture the mutable state of a channel adversary.

    Only state that evolves at runtime is recorded; static parameters
    (loss rates, delays) are reproduced by rebuilding the session with
    the same factory.  ``None`` and stateless pass-through adversaries
    encode as type tags with no payload.
    """
    from ..net.faults import FaultModel, FaultPipeline, GilbertElliottLoss
    if adversary is None:
        return None
    name = type(adversary).__name__
    if isinstance(adversary, FaultPipeline):
        return {"type": name,
                "models": [encode_adversary(m) for m in adversary.models]}
    if isinstance(adversary, GilbertElliottLoss):
        return {"type": name, "rng": rng_state(adversary._rng),
                "in_burst": adversary.in_burst}
    if isinstance(adversary, FaultModel):
        return {"type": name, "rng": rng_state(adversary._rng)}
    if name == "PassthroughAdversary":
        return {"type": name}
    raise SnapshotError(f"cannot snapshot adversary type {name}")


def restore_adversary(adversary, state: dict | None) -> None:
    """Overwrite the mutable state of a rebuilt adversary."""
    from ..net.faults import FaultModel, FaultPipeline, GilbertElliottLoss
    if state is None:
        if adversary is not None and not _is_passthrough(adversary):
            raise SnapshotError(
                "snapshot has no adversary state but the rebuilt session "
                f"has a {type(adversary).__name__}")
        return
    name = type(adversary).__name__
    if name != state["type"]:
        raise SnapshotError(
            f"adversary type mismatch: snapshot has {state['type']}, "
            f"rebuilt session has {name}")
    if isinstance(adversary, FaultPipeline):
        if len(adversary.models) != len(state["models"]):
            raise SnapshotError("fault pipeline length mismatch")
        for model, model_state in zip(adversary.models, state["models"]):
            restore_adversary(model, model_state)
        return
    if isinstance(adversary, GilbertElliottLoss):
        restore_rng(adversary._rng, state["rng"])
        adversary.in_burst = state["in_burst"]
        return
    if isinstance(adversary, FaultModel):
        restore_rng(adversary._rng, state["rng"])
        return
    # Stateless pass-through: nothing to overwrite.


def _is_passthrough(adversary) -> bool:
    return type(adversary).__name__ == "PassthroughAdversary"
