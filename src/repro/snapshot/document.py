"""Snapshot documents: versioned JSON envelopes, file I/O, fleet merge.

Every snapshot -- session, swarm or fleet -- ships in one envelope::

    {"schema": "repro.snapshot/v1",
     "kind": "session" | "swarm" | "fleet",
     "blobs": {fingerprint-hex: base64-image, ...},
     "state": {...kind-specific payload...},
     "meta": {...optional caller extras, e.g. the CLI rebuild spec...}}

The envelope is plain JSON (no pickling, no arbitrary types), so
snapshots are diffable, greppable, and safe to load from untrusted
disks: restore rebuilds objects deterministically and only *overwrites*
fields, it never instantiates types named by the document.

A fleet document records per-shard swarm payloads (each with its own
state-digest cache), so restoring into a :class:`FleetEngine` with the
same shard partition resumes every worker exactly -- including cache
hit/miss accounting.  :func:`flatten_fleet_state` merges the shards
into a single swarm payload for sequential restore on any machine,
dropping only the per-shard caches (host-side accounting; the restored
sequential swarm runs uncached like the seed path).
"""

from __future__ import annotations

import json
import os
import tempfile

from ..errors import SnapshotError
from ..obs.schema import (SNAPSHOT_DELTA_SCHEMA_ID, SNAPSHOT_SCHEMA_ID,
                          validate_snapshot, validate_snapshot_delta)
from .blobs import BlobStore

__all__ = ["make_document", "unwrap_document", "save_document",
           "load_document", "flatten_fleet_state", "swarm_spec",
           "build_swarm_from_spec"]


def make_document(kind: str, state: dict, blobs: BlobStore,
                  meta: dict | None = None) -> dict:
    document = {"schema": SNAPSHOT_SCHEMA_ID, "kind": kind,
                "blobs": blobs.encode(), "state": state}
    if meta is not None:
        document["meta"] = meta
    return document


def unwrap_document(document: dict, kind: str) -> tuple[dict, BlobStore]:
    """Validate an envelope and return ``(state, blobs)``."""
    errors = validate_snapshot(document)
    if errors:
        raise SnapshotError("invalid snapshot document: "
                            + "; ".join(errors))
    if document["kind"] != kind:
        raise SnapshotError(
            f"snapshot kind mismatch: document is {document['kind']!r}, "
            f"expected {kind!r}")
    return document["state"], BlobStore.decode(document["blobs"])


def save_document(document: dict, path: str) -> None:
    """Write ``document`` atomically: an interrupted save (crash, kill,
    serialization error mid-write) can never leave a truncated document
    at ``path`` -- the bytes land in a same-directory temp file first and
    are published with one ``os.replace``."""
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, temp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory)
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(document, handle, sort_keys=True)
            handle.write("\n")
        os.replace(temp_path, path)
    except BaseException:
        try:
            os.unlink(temp_path)
        except OSError:
            pass
        raise


def load_document(path: str) -> dict:
    with open(path) as handle:
        document = json.load(handle)
    if (isinstance(document, dict)
            and document.get("schema") == SNAPSHOT_DELTA_SCHEMA_ID):
        errors = validate_snapshot_delta(document)
    else:
        errors = validate_snapshot(document)
    if errors:
        raise SnapshotError(f"invalid snapshot document {path}: "
                            + "; ".join(errors))
    return document


def flatten_fleet_state(state: dict) -> dict:
    """Merge a fleet document's shard payloads into one swarm payload.

    Members concatenate in shard order (shards are contiguous index
    blocks, so this is global member order), breakers union, and the
    per-shard digest caches are dropped -- the flattened payload
    restores into an *uncached* sequential swarm.
    """
    members = []
    breakers = {}
    for shard in state["shards"]:
        members.extend(shard["swarm"]["members"])
        breakers.update(shard["swarm"]["breakers"])
    shard_marks = [shard["swarm"].get("trace_marks")
                   for shard in state["shards"]]
    if any(marks is not None for marks in shard_marks):
        # Sweep s of the flattened fleet = the shards' sweep-s
        # watermarks concatenated in shard (== member) order.
        trace_marks = [[mark for marks in shard_marks
                        for mark in marks[sweep]]
                       for sweep in range(len(shard_marks[0]))]
    else:
        trace_marks = None
    return {"sweeps_run": state["sweeps_run"], "members": members,
            "breakers": breakers, "state_cache": None,
            "trace_marks": trace_marks}


# ---------------------------------------------------------------------------
# CLI rebuild specs: enough plain JSON to rebuild the swarm a snapshot
# was taken from, so ``repro snapshot restore`` needs no re-typed flags.
# ---------------------------------------------------------------------------

def swarm_spec(*, size: int, profile: str = "roam-hardened",
               auth_scheme: str = "speck-64/128-cbc-mac",
               policy: str = "counter", ram_kb: int = 16,
               flash_kb: int = 32, app_kb: int = 4, retry: bool = False,
               faults: bool = False, incremental: bool = False,
               stagger_seconds: float = 0.0,
               seed: str = "cli-snapshot") -> dict:
    """A JSON-ready description of a CLI-built fleet."""
    return {"size": size, "profile": profile, "auth_scheme": auth_scheme,
            "policy": policy, "ram_kb": ram_kb, "flash_kb": flash_kb,
            "app_kb": app_kb, "retry": retry, "faults": faults,
            "incremental": incremental,
            "stagger_seconds": stagger_seconds, "seed": seed}


def build_swarm_from_spec(spec: dict):
    """Deterministically rebuild the swarm a spec describes.

    Same spec, same swarm: the builder funnels every parameter through
    the deterministic constructors, so a snapshot taken from one build
    restores cleanly into another.
    """
    from ..core.resilience import RetryPolicy
    from ..mcu.device import DeviceConfig
    from ..mcu.profiles import ALL_PROFILES
    from ..perf.fleet import lossy_link
    from ..services.swarm import Swarm

    profiles = {p.name: p for p in ALL_PROFILES}
    try:
        profile = profiles[spec["profile"]]
    except KeyError:
        raise SnapshotError(
            f"unknown protection profile {spec['profile']!r}") from None
    retry = None
    if spec["retry"]:
        retry = RetryPolicy(attempt_timeout_seconds=5.0, max_retries=2,
                            base_backoff_seconds=1.0, jitter_fraction=0.5)
    return Swarm(spec["size"], profile=profile,
                 auth_scheme=spec["auth_scheme"],
                 policy_name=spec["policy"],
                 device_config=DeviceConfig(
                     ram_size=spec["ram_kb"] * 1024,
                     flash_size=spec["flash_kb"] * 1024,
                     app_size=spec["app_kb"] * 1024),
                 retry=retry,
                 adversary_factory=lossy_link if spec["faults"] else None,
                 observe=True,
                 incremental=spec.get("incremental", False),
                 seed=spec["seed"])
