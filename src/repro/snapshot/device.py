"""Device-level snapshot: every mutable hardware block of the prover.

The capture/restore contract mirrors Simics-style checkpointing:
*restore never constructs a device*.  The caller rebuilds a device from
the same :class:`~repro.mcu.device.DeviceConfig` (construction,
provisioning and boot are deterministic), and :func:`restore_device`
then overwrites exactly the state that evolves at runtime:

* memory region contents and their write-chain fingerprints (images
  deduplicated through a :class:`~repro.snapshot.blobs.BlobStore`);
* the EA-MPU register file (written behind the lockdown check -- this
  is the checkpoint mechanism restoring hardware flops, not software
  reconfiguring a locked MPU) and its decoded-rule cache;
* CPU cycle count, battery/energy accounting, boot log;
* clock and timer state (counter offsets, software-clock wrap counts);
* interrupt-controller queues, logs and the mask register;
* execution contexts created after boot (e.g. malware contexts).

Deliberately **not** captured: ``mpu._violations`` -- a host-side
diagnostic list of raised exceptions, never read back by simulated
code; restored runs start with an empty list.
"""

from __future__ import annotations

from ..errors import SnapshotError
from ..mcu.cpu import ExecutionContext
from .blobs import BlobStore
from .codec import b64, unb64

__all__ = ["snapshot_device", "restore_device"]

#: Contexts recreated by deterministic construction + boot; anything
#: else in ``device._contexts`` was made at runtime and must travel.
_BUILTIN_CONTEXTS = frozenset({"boot", "Code_Attest", "Code_Clock", "app"})


def snapshot_device(device, blobs: BlobStore, parent=None) -> dict:
    """Capture ``device``'s mutable state; region images go to ``blobs``.

    With a ``parent`` (:class:`repro.snapshot.delta.ParentMember`),
    region records carry a ``delta`` entry instead of putting the whole
    window image into ``blobs`` -- only chunks whose digest-tree leaves
    changed since the parent checkpoint are stored (see
    :func:`repro.snapshot.delta.capture_region_delta`).  The per-member
    prefix (below the fingerprint-exclude bound) always travels
    verbatim either way.
    """
    if parent is not None:
        from .delta import capture_region_delta
    regions = []
    for region in device.memory:
        if region._data is None:
            continue  # MMIO: peripheral state is captured below
        exclude = region.fingerprint_exclude_below
        fingerprint = region._fingerprint.hex()
        record = {"name": region.name, "size": region.size,
                  "exclude": exclude, "fingerprint": fingerprint,
                  "prefix": b64(bytes(region._data[:exclude]))}
        if parent is not None:
            record["delta"] = capture_region_delta(region, parent, blobs)
        else:
            blobs.put(fingerprint, bytes(region._data[exclude:]))
        regions.append(record)
    snap = {
        "boot_profile": (device.boot_profile.name
                         if device.boot_profile is not None else None),
        "boot_log": list(device.boot_log),
        "cpu_cycles": device.cpu.cycle_count,
        "energy_last_cycle": device._energy_last_cycle,
        "battery": {"consumed_mj": device.battery.consumed_mj,
                    "active_cycles": device.battery.active_cycles,
                    "sleep_seconds": device.battery.sleep_seconds},
        "regions": regions,
        "mpu": b64(bytes(device.mpu._registers)),
        "contexts": [_encode_context(ctx)
                     for name, ctx in sorted(device._contexts.items())
                     if name not in _BUILTIN_CONTEXTS],
        "clock": _snapshot_clock(device.clock),
        "interrupts": _snapshot_interrupts(device.interrupts),
    }
    return snap


def restore_device(device, snap: dict, blobs: BlobStore) -> None:
    """Overwrite a freshly rebuilt ``device`` with captured state."""
    profile = (device.boot_profile.name
               if device.boot_profile is not None else None)
    if profile != snap["boot_profile"]:
        raise SnapshotError(
            f"boot profile mismatch: snapshot has {snap['boot_profile']!r},"
            f" rebuilt device booted {profile!r}")

    for record in snap["regions"]:
        try:
            region = device.memory.region(record["name"])
        except KeyError:
            raise SnapshotError(
                f"snapshot region {record['name']!r} does not exist on "
                f"the rebuilt device") from None
        if (region.size != record["size"]
                or region.fingerprint_exclude_below != record["exclude"]):
            raise SnapshotError(
                f"region {record['name']!r} geometry mismatch")
        exclude = record["exclude"]
        image = blobs.get(record["fingerprint"])
        if len(image) != region.size - exclude:
            raise SnapshotError(
                f"region {record['name']!r} image length mismatch")
        # Direct overwrite, *not* store(): the write chain is not
        # recomputable from content, so the captured fingerprint is
        # reinstated verbatim alongside the bytes it witnesses.
        region._data[:exclude] = unb64(record["prefix"])
        region._data[exclude:] = image
        region._fingerprint = bytes.fromhex(record["fingerprint"])
        # The overwrite bypassed note_write, so any attached digest tree
        # no longer describes the bytes.  Roots are pure functions of
        # content, so invalidate-and-rebuild on next use is byte-identical
        # to a round-tripped tree -- no tree state in the document.
        if region.digest_tree is not None:
            region.digest_tree.invalidate()

    registers = unb64(snap["mpu"])
    if len(registers) != len(device.mpu._registers):
        raise SnapshotError("MPU register file size mismatch")
    device.mpu._registers[:] = registers
    device.mpu._decoded = None

    device.boot_log = list(snap["boot_log"])
    device.cpu.cycle_count = snap["cpu_cycles"]
    device._energy_last_cycle = snap["energy_last_cycle"]
    battery = snap["battery"]
    device.battery.consumed_mj = battery["consumed_mj"]
    device.battery.active_cycles = battery["active_cycles"]
    device.battery.sleep_seconds = battery["sleep_seconds"]

    for name in [n for n in device._contexts if n not in _BUILTIN_CONTEXTS]:
        del device._contexts[name]
    for record in snap["contexts"]:
        device._contexts[record["name"]] = _decode_context(record)

    _restore_clock(device.clock, snap["clock"])
    _restore_interrupts(device.interrupts, snap["interrupts"])


# ---------------------------------------------------------------------------
# Pieces
# ---------------------------------------------------------------------------

def _encode_context(ctx: ExecutionContext) -> dict:
    return {"name": ctx.name, "start": ctx.code_start, "end": ctx.code_end,
            "uninterruptible": ctx.uninterruptible,
            "entry_points": (list(ctx.entry_points)
                             if ctx.entry_points is not None else None)}


def _decode_context(record: dict) -> ExecutionContext:
    entry_points = record["entry_points"]
    return ExecutionContext(
        record["name"], record["start"], record["end"],
        uninterruptible=record["uninterruptible"],
        entry_points=(tuple(entry_points) if entry_points is not None
                      else None))


def _snapshot_counter(counter) -> dict:
    return {"base": counter._base,
            "last_unwrapped": counter._last_unwrapped}


def _restore_counter(counter, state: dict) -> None:
    counter._base = state["base"]
    counter._last_unwrapped = state["last_unwrapped"]


def _snapshot_clock(clock) -> dict | None:
    if clock is None:
        return None
    state = {"kind": clock.kind, "counter": _snapshot_counter(clock.counter)}
    if clock.kind == "software":
        state["wraps_signalled"] = clock.wraps_signalled
        state["wraps_serviced"] = clock.wraps_serviced
    return state


def _restore_clock(clock, state: dict | None) -> None:
    if state is None:
        if clock is not None:
            raise SnapshotError("snapshot has no clock state but the "
                                "rebuilt device has a clock")
        return
    if clock is None or clock.kind != state["kind"]:
        raise SnapshotError("clock kind mismatch between snapshot and "
                            "rebuilt device")
    _restore_counter(clock.counter, state["counter"])
    if clock.kind == "software":
        clock.wraps_signalled = state["wraps_signalled"]
        clock.wraps_serviced = state["wraps_serviced"]


def _snapshot_interrupts(interrupts) -> dict:
    return {"pending": list(interrupts._pending),
            "mask_bits": interrupts.mask._bits,
            "coalesced": [list(entry) for entry in interrupts.coalesced_log],
            "dispatched": [list(entry) for entry in interrupts.dispatch_log],
            "dropped": [list(entry) for entry in interrupts.dropped_log]}


def _restore_interrupts(interrupts, state: dict) -> None:
    interrupts._pending = list(state["pending"])
    interrupts.mask._bits = state["mask_bits"]
    interrupts.coalesced_log = [tuple(entry) for entry in state["coalesced"]]
    interrupts.dispatch_log = [tuple(entry) for entry in state["dispatched"]]
    interrupts.dropped_log = [tuple(entry) for entry in state["dropped"]]
