"""Host-side fast-path engine selection.

The simulator separates two clocks that must never mix:

* **simulated time** -- the cycle costs charged to the modelled MCU
  (Table 1 calibration; see :mod:`repro.crypto.costmodel`).  These are
  the paper's numbers and every experiment depends on them;
* **host time** -- how long the Python process takes to re-execute a
  measurement.  Host time is pure overhead: fleet sweeps and flood
  scenarios re-run the 512 KB HMAC thousands of times.

This module selects how the *host* executes measurement-heavy work.
Three engines exist, all producing bit-identical digests and identical
simulated accounting (``blocks_processed``, consumed cycles, telemetry):

``naive``
    The seed implementation: one Python-level compression call per
    64-byte block, per-chunk copied bus reads.  Kept as the reference
    the fast paths are continuously checked against, and as the
    baseline ``benchmarks/bench_wallclock.py`` reports speedups over.
``pure``
    Optimized pure Python: the unrolled batch compression core
    (:func:`repro.crypto.sha1.compress_blocks`), zero-copy
    ``memoryview`` streaming, HMAC pad-midstate caching, bulk memory
    walks.
``accel``
    Everything ``pure`` does, but bulk SHA-1 compression is delegated
    to :mod:`hashlib` (same FIPS 180-4 function, C speed).  This is the
    default: the from-scratch compression function remains the
    reference implementation, exercised by the ``naive``/``pure``
    engines and the cross-check tests.

Selection: the ``REPRO_FAST_PATH`` environment variable at import time
(``0``/``off``/``naive``, ``1``/``pure``, ``2``/``on``/``accel``), or
:func:`set_engine` / :func:`forced` at runtime.  See
``docs/performance.md``.
"""

from __future__ import annotations

import contextlib
import os

__all__ = ["ENGINES", "engine", "set_engine", "is_fast", "forced",
           "incremental_enabled", "set_incremental", "forced_incremental"]

ENGINES = ("naive", "pure", "accel")

_ENV_VAR = "REPRO_FAST_PATH"

_ALIASES = {
    "0": "naive", "off": "naive", "false": "naive", "no": "naive",
    "naive": "naive",
    "1": "pure", "pure": "pure",
    "2": "accel", "on": "accel", "true": "accel", "yes": "accel",
    "accel": "accel", "": "accel",
}


def _from_env() -> str:
    raw = os.environ.get(_ENV_VAR, "accel").strip().lower()
    return _ALIASES.get(raw, "accel")


_engine = _from_env()


def engine() -> str:
    """The currently selected host execution engine."""
    return _engine


def set_engine(name: str) -> str:
    """Select the host engine; returns the previous selection.

    Only affects objects created afterwards -- in-flight hash objects
    keep the engine they were constructed with, so a mid-stream switch
    can never corrupt a digest.
    """
    if name not in ENGINES:
        raise ValueError(f"unknown fast-path engine {name!r}; "
                         f"expected one of {ENGINES}")
    global _engine
    previous = _engine
    _engine = name
    return previous


def is_fast() -> bool:
    """Whether any fast path (``pure`` or ``accel``) is active."""
    return _engine != "naive"


@contextlib.contextmanager
def forced(name: str):
    """Context manager pinning the engine for a block (tests, benches)."""
    previous = set_engine(name)
    try:
        yield
    finally:
        set_engine(previous)


# -- incremental measurement toggle ------------------------------------------
#
# Orthogonal to the engine choice: whether devices with
# ``enable_incremental()`` may use their digest trees as a
# content-addressed second cache key (see ``repro.incremental``).  Like
# the engine toggle this is a host-execution concern only -- digests and
# simulated accounting are byte-identical either way -- and honours the
# same kill-switch idiom: ``REPRO_INCREMENTAL=0`` disables the content
# path globally, forcing every cache miss down the full walk.

_INCR_ENV_VAR = "REPRO_INCREMENTAL"

_INCR_FALSE = {"0", "off", "false", "no"}


def _incremental_from_env() -> bool:
    raw = os.environ.get(_INCR_ENV_VAR, "1").strip().lower()
    return raw not in _INCR_FALSE


_incremental = _incremental_from_env()


def incremental_enabled() -> bool:
    """Whether the content-addressed incremental path may be used."""
    return _incremental


def set_incremental(on: bool) -> bool:
    """Enable/disable the incremental path; returns the previous state."""
    global _incremental
    previous = _incremental
    _incremental = bool(on)
    return previous


@contextlib.contextmanager
def forced_incremental(on: bool):
    """Context manager pinning the incremental toggle for a block."""
    previous = set_incremental(on)
    try:
        yield
    finally:
        set_incremental(previous)
