"""repro: prover-side secure remote attestation for low-end devices.

A from-scratch reproduction of Brasser, Rasmussen, Sadeghi & Tsudik,
*"Remote Attestation for Low-End Embedded Devices: the Prover's
Perspective"* (DAC 2016): the attestation protocol with prover-side DoS
protection, the roaming adversary, and the hardware countermeasures
(EA-MPU rules, secure boot, protected clocks), all running on a
behavioural MCU simulator with Table 1-calibrated cycle costs.

Quick start::

    from repro import build_session, ROAM_HARDENED

    session = build_session(profile=ROAM_HARDENED,
                            auth_scheme="speck-64/128-cbc-mac",
                            policy_name="counter")
    session.learn_reference_state()
    result = session.attest_once()
    assert result.trusted

Subpackages
-----------
``repro.core``
    The attestation protocol: messages, request authentication,
    freshness policies, prover trust anchor, verifier, sessions.
``repro.crypto``
    From-scratch SHA-1 / HMAC / AES-128 / Speck 64/128 / secp160r1
    ECDSA, plus the Table 1 cycle-cost model.
``repro.mcu``
    The simulated prover: memory, EA-MPU, interrupts, clocks, secure
    boot, energy.
``repro.net``
    Discrete-event Dolev-Yao network.
``repro.obs``
    Telemetry: metrics registry, structured event trace, export
    schemas (attach with ``build_session(telemetry=Telemetry())``).
``repro.attacks``
    ``Adv_ext`` and ``Adv_roam`` with runnable scenarios.
``repro.hwcost``
    Table 3 / Section 6.3 hardware cost model.
``repro.services``
    Extensions: clock sync, IoT swarms, secure code update, erasure.
"""

from .core import (AttestationRequest, AttestationResponse, Session,
                   VerificationResult, build_session)
from .errors import (ClockError, ConfigurationError, CryptoError,
                     DeviceError, MemoryAccessViolation, MPULockedError,
                     NetworkError, ProtocolError, ReproError, RequestRejected,
                     SecureBootError, SimulationError, VerificationFailed)
from .mcu import (ALL_PROFILES, BASELINE, Device, DeviceConfig, EXT_HARDENED,
                  ProtectionProfile, ROAM_HARDENED, UNPROTECTED)
from .obs import EventTrace, MetricsRegistry, Telemetry

__version__ = "1.0.0"

__all__ = [
    "ALL_PROFILES", "AttestationRequest", "AttestationResponse", "BASELINE",
    "ClockError", "ConfigurationError", "CryptoError", "Device",
    "DeviceConfig", "DeviceError", "EXT_HARDENED", "EventTrace",
    "MPULockedError", "MemoryAccessViolation", "MetricsRegistry",
    "NetworkError", "ProtectionProfile", "ProtocolError", "ROAM_HARDENED",
    "ReproError", "RequestRejected", "SecureBootError", "Session",
    "SimulationError", "Telemetry", "UNPROTECTED", "VerificationFailed",
    "VerificationResult", "build_session", "__version__",
]
