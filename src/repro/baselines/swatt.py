"""SWATT-style software-based attestation: the baseline the paper rejects.

Section 2: software-based attestation (SWATT, Pioneer) computes a
time-bounded checksum over memory using a challenge-seeded pseudo-random
walk; cheating (e.g. redirecting reads around a malware region) forces
extra work per access, and the *verifier detects the slowdown* -- no
hardware trust anchor needed.  But, as the paper notes, the schemes "only
work if the verifier communicates directly to the prover, with no
intermediate hops": the timing margin that separates honest from cheating
provers is a few percent of the computation time, and network jitter of
the same order washes it out.

This module makes that argument executable:

* :class:`SwattProver` -- the checksum routine on the simulated device,
  with per-access cycle accounting;
* :class:`CheatingSwattProver` -- a compromised prover hiding a malware
  region behind an address-redirection check (the classic attack cost: a
  compare-and-branch per memory access, modelled as a constant per-access
  cycle overhead);
* :class:`SwattVerifier` -- challenge issue + response-time thresholding,
  with a jitter allowance a network-facing verifier is forced to grant;
* :func:`evaluate_over_network` -- accept/reject accuracy as a function
  of channel jitter, reproducing the direct-link-works /
  multi-hop-fails collapse.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.rng import DeterministicRng
from ..crypto.sha1 import SHA1
from ..errors import ConfigurationError
from ..mcu.device import Device

__all__ = ["SwattChallenge", "SwattResponse", "SwattProver",
           "CheatingSwattProver", "ToctouSwattProver", "SwattVerifier",
           "NetworkTimingModel", "evaluate_over_network",
           "evaluate_over_paths", "AccuracyPoint"]

#: Honest per-access cost of the checksum loop (load + mix), in cycles.
ACCESS_CYCLES = 12

#: Extra cycles a cheating prover pays per access for the address
#: redirection check (SWATT's analysis: one compare + branch, a ~17 %
#: slowdown of the loop body).
CHEAT_OVERHEAD_CYCLES = 2

_M32 = 0xFFFFFFFF


def _xorshift32(x: int) -> int:
    x ^= (x << 13) & _M32
    x ^= x >> 17
    x ^= (x << 5) & _M32
    return x & _M32


def checksum_walk(seed: bytes, iterations: int, image: bytes) -> bytes:
    """The SWATT checksum: a seeded pseudo-random walk over ``image``.

    Per access: one xorshift step selects the address, the byte is mixed
    into a rotating accumulator; the final state is hashed.  O(1) Python
    work per access -- the *simulated* cost is charged separately by the
    prover at :data:`ACCESS_CYCLES` per access.
    """
    if not image:
        raise ConfigurationError("cannot checksum an empty image")
    x = int.from_bytes(SHA1(seed).digest()[:4], "big") or 1
    accumulator = int.from_bytes(SHA1(b"acc" + seed).digest()[:8], "big")
    size = len(image)
    for _ in range(iterations):
        x = _xorshift32(x)
        index = x % size
        accumulator = (((accumulator << 7) | (accumulator >> 57))
                       + image[index] + index) & 0xFFFFFFFFFFFFFFFF
    return SHA1(seed + accumulator.to_bytes(8, "big")).digest()


@dataclass(frozen=True)
class SwattChallenge:
    """Verifier challenge: seed + number of pseudo-random accesses."""

    seed: bytes
    iterations: int


@dataclass(frozen=True)
class SwattResponse:
    """Checksum plus the measured response latency in seconds."""

    checksum: bytes
    latency_seconds: float


class SwattProver:
    """Honest prover: checksum over a pseudo-random walk of its memory."""

    def __init__(self, device: Device):
        self.device = device
        self.context = device.context("Code_Attest")

    def _memory_image(self) -> bytes:
        parts = []
        for start, end in self.device.attested_spans():
            region = self.device.memory.find(start)
            parts.append(region.raw_read(start - region.start, end - start))
        return b"".join(parts)

    def access_cycles(self) -> int:
        return ACCESS_CYCLES

    def respond(self, challenge: SwattChallenge) -> SwattResponse:
        """Compute the checksum, charging device time."""
        image = self._memory_image()
        start = self.device.cpu.elapsed_seconds
        digest = checksum_walk(challenge.seed, challenge.iterations, image)
        self.device.cpu.consume_cycles(
            challenge.iterations * self.access_cycles())
        return SwattResponse(checksum=digest,
                             latency_seconds=self.device.cpu.elapsed_seconds
                             - start)


class CheatingSwattProver(SwattProver):
    """Compromised prover hiding a malware region.

    Keeps a pristine copy of the bytes it overwrote and serves checksum
    reads from the copy -- producing the *correct* checksum -- at the cost
    of an address check on every access (:data:`CHEAT_OVERHEAD_CYCLES`).
    Detection therefore rests entirely on the verifier noticing the
    slowdown.
    """

    def __init__(self, device: Device, *, malware_size: int = 1024):
        super().__init__(device)
        if malware_size <= 0:
            raise ConfigurationError("malware must occupy some memory")
        app_start, app_end = device.firmware.span("app")
        if app_end - app_start < malware_size:
            raise ConfigurationError("malware larger than the application")
        region = device.flash
        offset = app_end - malware_size - region.start
        self.pristine = region.raw_read(offset, malware_size)
        region.load(offset, b"\xEB" * malware_size)
        self._window_start = app_end - malware_size
        self.malware_size = malware_size

    def _memory_image(self) -> bytes:
        """The cheater reads real memory but *serves pristine bytes*."""
        image = bytearray(super()._memory_image())
        offset = 0
        for start, end in self.device.attested_spans():
            if start <= self._window_start < end:
                window = offset + (self._window_start - start)
                image[window:window + self.malware_size] = self.pristine
                break
            offset += end - start
        return bytes(image)

    def access_cycles(self) -> int:
        return ACCESS_CYCLES + CHEAT_OVERHEAD_CYCLES


class ToctouSwattProver(SwattProver):
    """Time-of-check-time-of-use attacker (the paper's footnote 1).

    Instead of hiding behind read redirection, this malware simply
    *uninstalls itself* when a challenge arrives, lets the honest
    checksum routine run over genuinely clean memory at genuine speed,
    and reinstalls afterwards.  Both the checksum and the timing check
    pass -- software-based attestation is blind to it even over a direct
    link, which is why [Kovah et al., IEEE S&P 2011] treat TOCTOU as a
    fundamental limitation of the approach.  (The paper's hardware-
    anchored protocol does not fix TOCTOU either -- no snapshot scheme
    can -- but it also never claims to; its guarantees are about the
    measured instant and about prover-side DoS.)
    """

    def __init__(self, device: Device, *, malware_size: int = 1024):
        super().__init__(device)
        if malware_size <= 0:
            raise ConfigurationError("malware must occupy some memory")
        app_start, app_end = device.firmware.span("app")
        if app_end - app_start < malware_size:
            raise ConfigurationError("malware larger than the application")
        region = device.flash
        self._offset = app_end - malware_size - region.start
        self.pristine = region.raw_read(self._offset, malware_size)
        self.malware_size = malware_size
        self.reinstalls = 0
        self._install()

    def _install(self) -> None:
        self.device.flash.load(self._offset, b"\xEB" * self.malware_size)

    def _uninstall(self) -> None:
        self.device.flash.load(self._offset, self.pristine)

    @property
    def installed(self) -> bool:
        probe = self.device.flash.raw_read(self._offset, self.malware_size)
        return probe == b"\xEB" * self.malware_size

    def respond(self, challenge: SwattChallenge) -> SwattResponse:
        """Uninstall, answer honestly, reinstall."""
        self._uninstall()
        try:
            return super().respond(challenge)
        finally:
            self._install()
            self.reinstalls += 1


class SwattVerifier:
    """Challenge issue and time-bounded response validation.

    ``jitter_allowance_seconds`` is the slack a network-facing verifier
    must grant so honest provers behind a jittery channel are not mass-
    rejected -- and exactly the slack a cheating prover hides in.
    """

    def __init__(self, *, iterations: int = 40_000,
                 frequency_hz: int = 24_000_000,
                 margin: float = 0.5,
                 jitter_allowance_seconds: float = 0.0,
                 seed: str = "swatt-verifier"):
        if not 0.0 < margin < 1.0:
            raise ConfigurationError("margin must be in (0, 1)")
        if iterations < 1:
            raise ConfigurationError("need at least one access")
        self.iterations = iterations
        self.frequency_hz = frequency_hz
        self.margin = margin
        self.jitter_allowance_seconds = jitter_allowance_seconds
        self._rng = DeterministicRng(seed)

    def challenge(self) -> SwattChallenge:
        return SwattChallenge(seed=self._rng.bytes(16),
                              iterations=self.iterations)

    @property
    def honest_seconds(self) -> float:
        return self.iterations * ACCESS_CYCLES / self.frequency_hz

    @property
    def cheating_seconds(self) -> float:
        return (self.iterations * (ACCESS_CYCLES + CHEAT_OVERHEAD_CYCLES)
                / self.frequency_hz)

    @property
    def threshold_seconds(self) -> float:
        """Accept at honest + margin * overhead + jitter allowance."""
        return (self.honest_seconds
                + self.margin * (self.cheating_seconds - self.honest_seconds)
                + self.jitter_allowance_seconds)

    def expected_checksum(self, challenge: SwattChallenge,
                          golden_image: bytes) -> bytes:
        """The verifier holds a byte-exact copy of the expected memory --
        the software-attestation assumption."""
        return checksum_walk(challenge.seed, challenge.iterations,
                             golden_image)

    def accept(self, challenge: SwattChallenge, response: SwattResponse,
               golden_image: bytes) -> bool:
        """Checksum must match AND the response must beat the clock."""
        if response.checksum != self.expected_checksum(challenge,
                                                       golden_image):
            return False
        return response.latency_seconds <= self.threshold_seconds


@dataclass(frozen=True)
class NetworkTimingModel:
    """Round-trip delay the verifier cannot separate from compute time."""

    base_latency_seconds: float
    jitter_seconds: float      # uniform in [0, jitter]

    def sample(self, rng: DeterministicRng) -> float:
        return self.base_latency_seconds + rng.uniform(
            0.0, self.jitter_seconds)


@dataclass
class AccuracyPoint:
    """Detection quality of SWATT at one network jitter level."""

    jitter_seconds: float
    false_accepts: int      # cheater passed
    false_rejects: int      # honest prover failed
    trials: int

    @property
    def accuracy(self) -> float:
        return 1.0 - (self.false_accepts + self.false_rejects) / (
            2 * self.trials)


def evaluate_over_paths(*, device_factory, paths: dict,
                        trials: int = 10, iterations: int = 40_000,
                        seed: str = "swatt-paths") -> dict:
    """SWATT accuracy per named :class:`~repro.net.path.NetworkPath`.

    Convenience wrapper over :func:`evaluate_over_network`: each path
    contributes its total jitter span; returns ``{name: AccuracyPoint}``.
    """
    jitters = [path.jitter_span_seconds for path in paths.values()]
    points = evaluate_over_network(device_factory=device_factory,
                                   jitters=jitters, trials=trials,
                                   iterations=iterations, seed=seed)
    return dict(zip(paths.keys(), points))


def evaluate_over_network(*, device_factory, jitters: list[float],
                          trials: int = 10, iterations: int = 40_000,
                          seed: str = "swatt-net") -> list[AccuracyPoint]:
    """Measure SWATT accept/reject accuracy across channel jitter levels.

    The verifier knows the base latency (subtracted) and grants half the
    jitter span as allowance, the best single-threshold policy against
    uniform jitter.  With negligible jitter the timing margin separates
    honest from cheating provers perfectly; once jitter approaches the
    cheat overhead (iterations * 2 cycles = 3.3 ms at the defaults),
    accuracy collapses towards coin-flipping -- the paper's "not viable
    for attestation performed over a network".
    """
    rng = DeterministicRng(seed)
    points = []
    golden = SwattProver(device_factory())._memory_image()
    for jitter in jitters:
        network = NetworkTimingModel(base_latency_seconds=0.005,
                                     jitter_seconds=jitter)
        verifier = SwattVerifier(iterations=iterations,
                                 jitter_allowance_seconds=jitter / 2,
                                 seed=f"{seed}-{jitter}")
        false_accepts = 0
        false_rejects = 0
        provers = {False: SwattProver(device_factory()),
                   True: CheatingSwattProver(device_factory())}
        for _trial in range(trials):
            for cheating, prover in provers.items():
                challenge = verifier.challenge()
                response = prover.respond(challenge)
                observed = SwattResponse(
                    checksum=response.checksum,
                    latency_seconds=response.latency_seconds
                    + network.sample(rng)
                    - network.base_latency_seconds)
                accepted = verifier.accept(challenge, observed, golden)
                if cheating and accepted:
                    false_accepts += 1
                if not cheating and not accepted:
                    false_rejects += 1
        points.append(AccuracyPoint(jitter_seconds=jitter,
                                    false_accepts=false_accepts,
                                    false_rejects=false_rejects,
                                    trials=trials))
    return points
