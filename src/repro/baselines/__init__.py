"""Baseline schemes the paper positions itself against (Section 2)."""

from .swatt import (AccuracyPoint, CheatingSwattProver, NetworkTimingModel,
                    SwattChallenge, SwattProver, SwattResponse,
                    SwattVerifier, ToctouSwattProver, checksum_walk,
                    evaluate_over_network, evaluate_over_paths)

__all__ = [
    "AccuracyPoint", "CheatingSwattProver", "NetworkTimingModel",
    "SwattChallenge", "SwattProver", "SwattResponse", "SwattVerifier",
    "ToctouSwattProver", "checksum_walk", "evaluate_over_network",
    "evaluate_over_paths",
]
