"""Static analysis of the prover's protection configuration and codebase.

Two passes, one report:

``repro.analysis.invariants``
    Pure interval reasoning over a booted device's EA-MPU rule table:
    does this configuration actually stop ``Adv_roam``?  Verdicts map
    failing invariants onto the paper's attack names (key forgery,
    counter rollback, clock reset), with concrete counterexample
    addresses.
``repro.analysis.lint``
    AST-level determinism/consistency rules for the repo itself: no
    host clock or host RNG in simulated paths, exact integer cycle
    accounting, telemetry names drawn from the exported schema, no new
    uses of deprecated aliases.
``repro.analysis.dataflow`` / ``repro.analysis.taint``
    A reusable AST-based interprocedural dataflow engine (call graph,
    per-function transfer summaries, monotone fixpoint) and its
    key-confidentiality client: ``K_Attest`` must never reach a
    host-boundary sink (KEY001), shape a telemetered branch (KEY002),
    or leave through an undeclared export path (KEY003).
``repro.analysis.canary``
    The dynamic cross-check: provision a fleet with a canary key, run
    real rounds, scan every serialized artifact for any encoding of it.
``repro.analysis.report``
    Combines everything into the deterministic ``repro.analysis/v1``
    JSON document validated by :mod:`repro.obs.schema`.

CLI: ``repro verify-profile``, ``repro lint``, ``repro taint`` and the
unified ``repro analyze``; CI gates: ``scripts/analysis_smoke.py`` and
``scripts/taint_smoke.py``.
"""

from .canary import (CANARY_MASTER_KEY, CanaryHit, CanaryReport,
                     needles_for_key, run_canary_hunt, scan_text)
from .dataflow import (DataflowClient, DataflowEngine, DataflowResult,
                       FunctionSummary, Program, SetLattice, Violation,
                       analyze_program)
from .invariants import (ATTACK_FOR_INVARIANT, EXPECTED_FAILURES,
                         INVARIANT_ORDER, Counterexample, InvariantVerdict,
                         MachineModel, ProfileReport, analyze_device,
                         analyze_model, expected_failures, verify_profile,
                         verify_shipped_profiles)
from .lint import (DEFAULT_LINT_DIRS, LintReport, LintViolation, Waiver,
                   lint_file, lint_source, lint_tree, load_waivers)
from .report import build_report, render_report_json
from .taint import (KNOWN_BOUNDARY_MODULES, KeyConfidentialityClient,
                    TaintPolicy, TaintReport, analyze_taint_tree,
                    load_policy)

__all__ = [
    "ATTACK_FOR_INVARIANT", "EXPECTED_FAILURES", "INVARIANT_ORDER",
    "Counterexample", "InvariantVerdict", "MachineModel", "ProfileReport",
    "analyze_device", "analyze_model", "expected_failures",
    "verify_profile", "verify_shipped_profiles",
    "DEFAULT_LINT_DIRS", "LintReport", "LintViolation", "Waiver",
    "lint_file", "lint_source", "lint_tree", "load_waivers",
    "build_report", "render_report_json",
    "DataflowClient", "DataflowEngine", "DataflowResult",
    "FunctionSummary", "Program", "SetLattice", "Violation",
    "analyze_program",
    "KNOWN_BOUNDARY_MODULES", "KeyConfidentialityClient", "TaintPolicy",
    "TaintReport", "analyze_taint_tree", "load_policy",
    "CANARY_MASTER_KEY", "CanaryHit", "CanaryReport", "needles_for_key",
    "run_canary_hunt", "scan_text",
]
