"""Static analysis of the prover's protection configuration and codebase.

Two passes, one report:

``repro.analysis.invariants``
    Pure interval reasoning over a booted device's EA-MPU rule table:
    does this configuration actually stop ``Adv_roam``?  Verdicts map
    failing invariants onto the paper's attack names (key forgery,
    counter rollback, clock reset), with concrete counterexample
    addresses.
``repro.analysis.lint``
    AST-level determinism/consistency rules for the repo itself: no
    host clock or host RNG in simulated paths, exact integer cycle
    accounting, telemetry names drawn from the exported schema, no new
    uses of deprecated aliases.
``repro.analysis.report``
    Combines both into the deterministic ``repro.analysis/v1`` JSON
    document validated by :mod:`repro.obs.schema`.

CLI: ``repro verify-profile`` and ``repro lint``; CI gate:
``scripts/analysis_smoke.py``.
"""

from .invariants import (ATTACK_FOR_INVARIANT, EXPECTED_FAILURES,
                         INVARIANT_ORDER, Counterexample, InvariantVerdict,
                         MachineModel, ProfileReport, analyze_device,
                         analyze_model, expected_failures, verify_profile,
                         verify_shipped_profiles)
from .lint import (DEFAULT_LINT_DIRS, LintReport, LintViolation, Waiver,
                   lint_file, lint_source, lint_tree, load_waivers)
from .report import build_report, render_report_json

__all__ = [
    "ATTACK_FOR_INVARIANT", "EXPECTED_FAILURES", "INVARIANT_ORDER",
    "Counterexample", "InvariantVerdict", "MachineModel", "ProfileReport",
    "analyze_device", "analyze_model", "expected_failures",
    "verify_profile", "verify_shipped_profiles",
    "DEFAULT_LINT_DIRS", "LintReport", "LintViolation", "Waiver",
    "lint_file", "lint_source", "lint_tree", "load_waivers",
    "build_report", "render_report_json",
]
