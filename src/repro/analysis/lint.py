"""AST-based determinism and consistency linter for the repro tree.

The simulator's claims are only reproducible if simulated time stays
simulated: cycle accounting must be exact integer arithmetic, simulated
code paths must never consult the host clock or host RNG, and telemetry
names must match the exported schema or dashboards silently read zeros.
These are invariants of the *codebase*, so they are enforced the same
way the EA-MPU configuration is -- statically.

Rules
-----

``DET001``
    No host-clock calls (``time.time``/``time.monotonic``/
    ``datetime.now``/... and their async twins ``asyncio.sleep``/
    ``loop.time()``) inside simulated-path modules.  The host-clock
    boundary is not a directory: each module allowed to touch host time
    or host process pools carries its own justified entry in
    :data:`HOST_BOUNDARY_MODULES`; a new ``repro.perf`` module is
    flagged until it is added there.  The service tier's injected
    ``clock`` callable is the one sanctioned async boundary.
``DET002``
    No stdlib ``random`` in the same scope: simulated randomness must
    come from a seeded generator passed in explicitly.
``FLT001``
    No float arithmetic inside cycle- or tick-accounting functions
    (name ends in ``_cycles`` or ``_ticks``, or is ``consume_cycles``):
    float literals, true division, and ``float()`` all risk drift;
    ``//`` and integer ceil division are exact.  Functions converting
    to/from wall units (``ms``/``seconds`` in the name) are the
    sanctioned boundary.
``TEL001``
    Literal metric names passed to ``.count``/``.set_gauge``/
    ``.observe`` on a telemetry-ish receiver must exist in
    :data:`repro.obs.schema.METRIC_NAMES`; literal kinds passed to
    ``.event`` must exist in :data:`repro.obs.trace.EVENT_KINDS`.
``DEP001``
    No new uses of deprecated aliases: ``retry_delay_seconds``,
    ``MonitorPolicy(max_retries=...)``, ``.unresponsive``.

Violations can be waived by a checked-in JSON waiver list (one entry =
one rule+path pair with a justification); the definition sites of the
deprecated aliases themselves are waived this way rather than
special-cased in rule logic.
"""

from __future__ import annotations

import ast
import json
from dataclasses import dataclass
from pathlib import Path

from ..obs.schema import LINT_RULE_IDS, METRIC_NAMES
from ..obs.trace import EVENT_KINDS

__all__ = ["LintViolation", "Waiver", "LintReport", "load_waivers",
           "lint_source", "lint_file", "lint_tree", "iter_python_files",
           "DEFAULT_LINT_DIRS", "HOST_BOUNDARY_MODULES"]

#: Directories scanned by default, relative to the repo root.
DEFAULT_LINT_DIRS = ("src", "scripts", "benchmarks", "examples", "tests")

_HOST_CLOCK_CALLS = {
    ("time", "time"), ("time", "monotonic"), ("time", "monotonic_ns"),
    ("time", "perf_counter"), ("time", "perf_counter_ns"),
    ("time", "time_ns"), ("time", "process_time"),
    ("datetime", "now"), ("datetime", "utcnow"), ("datetime", "today"),
    ("date", "today"),
    # Async host time: the service tier runs on asyncio, where
    # ``asyncio.sleep`` and ``loop.time()`` smuggle the host clock in
    # just as surely as ``time.monotonic`` -- attestd's injected
    # ``clock`` callable is the only sanctioned async time boundary.
    ("asyncio", "sleep"), ("loop", "time"),
}

_TELEMETRY_METRIC_METHODS = {"count", "set_gauge", "observe"}

_DEPRECATED_ATTRIBUTES = {
    "retry_delay_seconds": "use the retry= RetryPolicy instead",
    "unresponsive": "use no_response + refused",
}


@dataclass(frozen=True)
class LintViolation:
    rule: str
    path: str            # repo-relative, POSIX separators
    line: int
    col: int
    message: str
    waiver_reason: str | None = None

    def as_dict(self) -> dict:
        entry = {"rule": self.rule, "path": self.path, "line": self.line,
                 "col": self.col, "message": self.message}
        if self.waiver_reason is not None:
            entry["waiver_reason"] = self.waiver_reason
        return entry

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)


@dataclass(frozen=True)
class Waiver:
    rule: str
    path: str
    reason: str

    def matches(self, violation: LintViolation) -> bool:
        return (violation.rule == self.rule
                and violation.path == self.path)


@dataclass(frozen=True)
class LintReport:
    files_scanned: int
    violations: tuple[LintViolation, ...]   # unwaived, sorted
    waived: tuple[LintViolation, ...]       # waived, sorted
    #: Waivers that matched no violation at all: the code they excused
    #: is gone, so the entry is rot and fails the run (see
    #: ``repro lint --allow-stale``).
    stale_waivers: tuple[Waiver, ...] = ()

    @property
    def clean(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        return {"files_scanned": self.files_scanned, "clean": self.clean,
                "violations": [v.as_dict() for v in self.violations],
                "waived": [v.as_dict() for v in self.waived],
                "stale_waivers": [{"rule": w.rule, "path": w.path,
                                   "reason": w.reason}
                                  for w in self.stale_waivers]}


def load_waivers(path: Path) -> list[Waiver]:
    """Load the checked-in waiver list (missing file = no waivers)."""
    if not path.exists():
        return []
    entries = json.loads(path.read_text())
    waivers = []
    for entry in entries:
        rule = entry["rule"]
        if rule not in LINT_RULE_IDS:
            raise ValueError(f"waiver references unknown rule {rule!r}")
        if not entry.get("reason"):
            raise ValueError(f"waiver for {rule} on {entry['path']} "
                             f"has no justification")
        waivers.append(Waiver(rule=rule, path=entry["path"],
                              reason=entry["reason"]))
    return waivers


# ---------------------------------------------------------------------------
# Rule implementations (each yields (rule, line, col, message) tuples)
# ---------------------------------------------------------------------------

def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """Flatten ``a.b.c`` into ("a", "b", "c"); None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


#: Modules that own a host-time / host-parallelism boundary, each with
#: the justification for its exemption from DET001/DET002.  This is an
#: explicit allowlist, not a directory waiver: adding a module under
#: ``src/repro/perf/`` does NOT exempt it -- it must be listed here with
#: a reason, so every host-clock site in the simulator tree is accounted
#: for.
HOST_BOUNDARY_MODULES = {
    "src/repro/perf/__init__.py":
        "perf package docstring/exports for the host wall-clock harness",
    "src/repro/perf/wallclock.py":
        "measures host wall-clock of the measurement engines; simulated "
        "time never flows out of it (equivalence_check proves digests "
        "and cycle counts are unchanged)",
    "src/repro/perf/fleet.py":
        "host-parallel fleet layer: times spin-up/sweeps with "
        "time.perf_counter and drives ProcessPoolExecutor shards; all "
        "simulated state lives in the sharded Swarms, and "
        "equivalence_check proves shard merges are byte-identical to "
        "the sequential seed path",
    "src/repro/perf/service.py":
        "service-tier load benchmark: times request serving with "
        "time.perf_counter and stamps per-request host latency via a "
        "clock injected into AttestationService.serve; admission "
        "decisions and session outcomes stay schedule-deterministic "
        "(equivalence_check proves the serviced run is byte-identical "
        "to the sequential library path)",
    "src/repro/perf/incremental.py":
        "incremental-attestation benchmark harness: times full-walk vs "
        "dirty-region sweeps with time.perf_counter; simulated "
        "accounting is compared byte-for-byte between the two paths "
        "(equivalence_check), never derived from host time",
    "src/repro/perf/snapshot.py":
        "delta-checkpoint benchmark harness: times full vs delta "
        "snapshot capture with time.perf_counter; the captured "
        "documents themselves are host-time-free, and measure_point "
        "refuses to report unless the delta chain materializes "
        "byte-identical to the full snapshot (equivalence_check "
        "additionally proves restore-and-continue matches the live "
        "run)",
}


def _is_simulated_path(path: str) -> bool:
    """Modules where host time/randomness is forbidden outright."""
    return (path.startswith("src/repro/")
            and path not in HOST_BOUNDARY_MODULES)


def _check_host_clock(tree: ast.AST, path: str):
    if not _is_simulated_path(path):
        return
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        if dotted is None or len(dotted) < 2:
            continue
        if (dotted[-2], dotted[-1]) in _HOST_CLOCK_CALLS:
            yield ("DET001", node.lineno, node.col_offset,
                   f"host clock call {'.'.join(dotted)}() in simulated "
                   f"path (host time belongs in repro.perf)")


def _check_host_random(tree: ast.AST, path: str):
    if not _is_simulated_path(path):
        return
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "random":
                    yield ("DET002", node.lineno, node.col_offset,
                           "stdlib random imported in simulated path "
                           "(pass a seeded Random in explicitly)")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "random":
                yield ("DET002", node.lineno, node.col_offset,
                       "stdlib random imported in simulated path "
                       "(pass a seeded Random in explicitly)")


def _is_cycle_function(name: str) -> bool:
    if "ms" in name or "seconds" in name:
        return False   # sanctioned wall-unit conversion boundary
    # ``*_leaves`` covers the digest-tree accounting functions
    # (``covering_leaves`` and friends): leaf index arithmetic must be
    # exact for the incremental/full equivalence to hold, so it gets the
    # same no-float discipline as cycle accounting.
    return (name.endswith("_cycles") or name.endswith("_ticks")
            or name.endswith("_leaves") or name == "consume_cycles")


def _check_float_cycles(tree: ast.AST, path: str):
    if not path.startswith("src/repro/"):
        return
    for func in ast.walk(tree):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_cycle_function(func.name):
            continue
        for node in ast.walk(func):
            if (isinstance(node, ast.Constant)
                    and isinstance(node.value, float)):
                yield ("FLT001", node.lineno, node.col_offset,
                       f"float literal {node.value!r} in cycle-accounting "
                       f"function {func.name}()")
            elif (isinstance(node, ast.BinOp)
                    and isinstance(node.op, ast.Div)):
                yield ("FLT001", node.lineno, node.col_offset,
                       f"true division in cycle-accounting function "
                       f"{func.name}() (use // or ceil-div)")
            elif (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "float"):
                yield ("FLT001", node.lineno, node.col_offset,
                       f"float() conversion in cycle-accounting "
                       f"function {func.name}()")


def _telemetry_receiver(node: ast.AST) -> bool:
    """Heuristic: the receiver looks like a Telemetry object."""
    dotted = _dotted(node)
    if dotted is None:
        return False
    return any("telemetry" in part.lower() for part in dotted)


def _check_telemetry_names(tree: ast.AST, path: str):
    if not path.startswith("src/repro/"):
        return
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        method = node.func.attr
        if method not in _TELEMETRY_METRIC_METHODS and method != "event":
            continue
        if not _telemetry_receiver(node.func.value):
            continue
        if not node.args:
            continue
        first = node.args[0]
        if not (isinstance(first, ast.Constant)
                and isinstance(first.value, str)):
            continue   # dynamic names are out of static reach
        name = first.value
        if method == "event":
            if name not in EVENT_KINDS:
                yield ("TEL001", first.lineno, first.col_offset,
                       f"event kind {name!r} not in "
                       f"repro.obs.trace.EVENT_KINDS")
        elif name not in METRIC_NAMES:
            yield ("TEL001", first.lineno, first.col_offset,
                   f"metric name {name!r} not in "
                   f"repro.obs.schema.METRIC_NAMES")


def _check_deprecated(tree: ast.AST, path: str):
    for node in ast.walk(tree):
        if isinstance(node, ast.Attribute):
            hint = _DEPRECATED_ATTRIBUTES.get(node.attr)
            if hint is not None:
                yield ("DEP001", node.lineno, node.col_offset,
                       f"deprecated attribute .{node.attr} ({hint})")
        elif isinstance(node, ast.Call):
            callee = _dotted(node.func)
            for kw in node.keywords:
                if kw.arg == "retry_delay_seconds":
                    yield ("DEP001", kw.value.lineno,
                           kw.value.col_offset,
                           "deprecated keyword retry_delay_seconds= "
                           "(use retry= with a RetryPolicy)")
                elif (kw.arg == "max_retries" and callee is not None
                        and callee[-1] == "MonitorPolicy"):
                    yield ("DEP001", kw.value.lineno,
                           kw.value.col_offset,
                           "deprecated MonitorPolicy(max_retries=) "
                           "(use retry= with a RetryPolicy)")


_ALL_CHECKS = (_check_host_clock, _check_host_random, _check_float_cycles,
               _check_telemetry_names, _check_deprecated)


# ---------------------------------------------------------------------------
# Drivers
# ---------------------------------------------------------------------------

def lint_source(source: str, path: str) -> list[LintViolation]:
    """Lint one module's source text.  ``path`` is repo-relative."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [LintViolation(rule="DET001", path=path,
                              line=exc.lineno or 0, col=exc.offset or 0,
                              message=f"unparseable module: {exc.msg}")]
    found = []
    for check in _ALL_CHECKS:
        for rule, line, col, message in check(tree, path):
            found.append(LintViolation(rule=rule, path=path, line=line,
                                       col=col, message=message))
    return found


def lint_file(file_path: Path, repo_root: Path) -> list[LintViolation]:
    rel = file_path.relative_to(repo_root).as_posix()
    return lint_source(file_path.read_text(), rel)


def iter_python_files(repo_root: Path,
                      dirs: tuple[str, ...] = DEFAULT_LINT_DIRS
                      ) -> list[Path]:
    """Deterministically ordered ``.py`` files under the given dirs."""
    files: list[Path] = []
    for name in dirs:
        base = repo_root / name
        if not base.exists():
            continue
        files.extend(p for p in base.rglob("*.py")
                     if "__pycache__" not in p.parts
                     and not any(part.endswith(".egg-info")
                                 for part in p.parts))
    return sorted(set(files))


def lint_tree(repo_root: Path, *,
              dirs: tuple[str, ...] = DEFAULT_LINT_DIRS,
              waivers: list[Waiver] | None = None) -> LintReport:
    """Lint every Python file under ``dirs`` and apply waivers."""
    waivers = waivers or []
    files = iter_python_files(repo_root, dirs)
    kept: list[LintViolation] = []
    waived: list[LintViolation] = []
    used: set[Waiver] = set()
    for file_path in files:
        for violation in lint_file(file_path, repo_root):
            matched = next((w for w in waivers if w.matches(violation)),
                           None)
            if matched is not None:
                used.add(matched)
                waived.append(LintViolation(
                    rule=violation.rule, path=violation.path,
                    line=violation.line, col=violation.col,
                    message=violation.message,
                    waiver_reason=matched.reason))
            else:
                kept.append(violation)
    kept.sort(key=LintViolation.sort_key)
    waived.sort(key=LintViolation.sort_key)
    stale = tuple(sorted((w for w in waivers if w not in used),
                         key=lambda w: (w.path, w.rule)))
    return LintReport(files_scanned=len(files),
                      violations=tuple(kept), waived=tuple(waived),
                      stale_waivers=stale)
