"""Static protection-invariant verifier for EA-MPU configurations.

The paper's defense against ``Adv_roam`` (Sections 5 and 6) is a
*configuration*: EA-MPU rules plus secure boot that make ``K_Attest``,
``counter_R`` and the real-time clock accessible only from the
attestation code region.  Until now the repo could only demonstrate a
:class:`~repro.mcu.profiles.ProtectionProfile` correct by *running* the
three-phase roaming attack.  This module checks the same properties
statically -- pure interval reasoning over the programmed
:class:`~repro.mcu.mpu.MPURule` table, no simulation -- in the spirit of
formally-verified RA co-designs (VRASED): the access-control matrix is
small enough to verify exhaustively.

The adversary model mirrors ``repro.attacks.roaming``: malware executes
from any writable, executable memory (low-end MCUs lack no-execute), may
position its code anywhere inside that memory, and issues arbitrary
reads/writes that the EA-MPU arbitrates.  Hardware/debug accesses bypass
the MPU and are out of scope, exactly as in the dynamic model.  When the
device lacks SMART-style entry-point enforcement
(``DeviceConfig.enforce_entry_points=False``), a code-reuse jump into
trusted code inherits its EA-MPU privileges, so trusted code ranges are
*added* to the attacker-reachable code set.

Each invariant yields an :class:`InvariantVerdict` with a concrete
:class:`Counterexample` (protected address + attacker code address) on
failure, and the attack-mapped invariants name the
``repro.attacks.roaming`` strategy / Table 2 row they correspond to --
``tests/analysis/test_static_vs_dynamic.py`` cross-checks the static
verdicts against the simulated ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..mcu.device import Device, DeviceConfig
from ..mcu.mpu import (MPURule, intersect_intervals, merge_intervals,
                       subtract_intervals)
from ..mcu.profiles import ALL_PROFILES, ProtectionProfile
from ..obs.schema import INVARIANT_NAMES

__all__ = ["Span", "Counterexample", "InvariantVerdict", "ProfileReport",
           "MachineModel", "INVARIANT_ORDER", "ATTACK_FOR_INVARIANT",
           "EXPECTED_FAILURES", "expected_failures",
           "analyze_device", "analyze_model",
           "verify_profile", "verify_shipped_profiles"]

Span = tuple[int, int]

#: Stable presentation/report order of the invariant catalog.
INVARIANT_ORDER = (
    "rule-budget",
    "secure-boot-coverage",
    "mpu-lockdown",
    "no-widening-overlap",
    "key-confidentiality",
    "counter-rollback-protection",
    "clock-integrity",
)

#: Invariant -> the ``repro.attacks.roaming`` strategy whose Phase II
#: preparation succeeds exactly when the invariant fails (the Section
#: 5/6 grid; ``key-forgery`` is the key-extraction column of Table 2's
#: escalation argument).
ATTACK_FOR_INVARIANT = {
    "key-confidentiality": "key-forgery",
    "counter-rollback-protection": "counter-rollback",
    "clock-integrity": "clock-reset",
}

#: Ground truth for the four shipped profiles: which invariants each one
#: is *expected* to fail (clock-design independent).  ``repro
#: verify-profile`` and ``scripts/analysis_smoke.py`` gate on this.
EXPECTED_FAILURES = {
    "unprotected": frozenset({"mpu-lockdown", "key-confidentiality",
                              "counter-rollback-protection",
                              "clock-integrity"}),
    "baseline": frozenset({"counter-rollback-protection",
                           "clock-integrity"}),
    "ext-hardened": frozenset({"clock-integrity"}),
    "roam-hardened": frozenset(),
}


def expected_failures(profile_name: str,
                      clock_kind: str = "hw64") -> frozenset[str]:
    """Ground-truth failure set adjusted for the clock design.

    A clockless device (``clock_kind="none"``) has no timestamp
    freshness to subvert, so ``clock-integrity`` holds vacuously there
    even on otherwise-unhardened profiles.
    """
    failures = EXPECTED_FAILURES[profile_name]
    if clock_kind == "none":
        failures = failures - {"clock-integrity"}
    return failures


@dataclass(frozen=True)
class Counterexample:
    """A concrete witness that an invariant is violated.

    ``address`` is the protected byte the adversary can touch;
    ``code_address`` is a location its code can execute from while doing
    so (``None`` when the violation is not an access, e.g. a blown rule
    budget).
    """

    address: int
    access: str                    # "read" | "write"
    code_address: int | None
    detail: str

    def as_dict(self) -> dict:
        entry = {"address": self.address, "access": self.access,
                 "detail": self.detail}
        if self.code_address is not None:
            entry["code_address"] = self.code_address
        return entry


@dataclass(frozen=True)
class InvariantVerdict:
    """Outcome of one invariant check against one machine model."""

    invariant: str
    holds: bool
    detail: str
    attack: str | None = None
    counterexample: Counterexample | None = None

    def as_dict(self) -> dict:
        entry = {"invariant": self.invariant, "holds": self.holds,
                 "detail": self.detail}
        if self.attack is not None:
            entry["attack"] = self.attack
        if self.counterexample is not None:
            entry["counterexample"] = self.counterexample.as_dict()
        return entry


@dataclass(frozen=True)
class ProfileReport:
    """All invariant verdicts for one booted configuration."""

    profile: str
    clock_kind: str
    verdicts: tuple[InvariantVerdict, ...]

    @property
    def holds(self) -> bool:
        return all(v.holds for v in self.verdicts)

    def verdict(self, invariant: str) -> InvariantVerdict:
        for v in self.verdicts:
            if v.invariant == invariant:
                return v
        raise KeyError(invariant)

    def failed(self) -> frozenset[str]:
        """Names of the invariants that do not hold."""
        return frozenset(v.invariant for v in self.verdicts if not v.holds)

    def failed_attacks(self) -> frozenset[str]:
        """Attack names enabled by the failing attack-mapped invariants."""
        return frozenset(v.attack for v in self.verdicts
                         if not v.holds and v.attack is not None)

    def as_dict(self) -> dict:
        return {"profile": self.profile, "clock_kind": self.clock_kind,
                "holds": self.holds,
                "verdicts": [v.as_dict() for v in self.verdicts]}


@dataclass(frozen=True)
class MachineModel:
    """Everything the static passes need to know about a configuration.

    Extracted from a booted :class:`~repro.mcu.device.Device` by
    :meth:`from_device`; tests may also construct models directly to
    seed misconfigurations no shipped boot path produces.
    """

    profile: str
    clock_kind: str                    # DeviceConfig vocabulary
    rules: tuple[MPURule, ...]
    mpu_enabled: bool
    mpu_locked: bool
    max_rules: int
    enforce_entry_points: bool
    trusted_code: dict[str, Span]      # boot / Code_Attest / Code_Clock
    attacker_code: tuple[Span, ...]    # where adversary code can execute
    rom_span: Span
    measured_spans: tuple[Span, ...]   # covered by the boot reference
    key_span: Span
    counter_span: Span
    mpu_register_span: Span
    clock_device_kind: str | None      # "hardware" | "software" | None
    clock_register_span: Span | None
    clock_msb_span: Span | None
    idt_span: Span | None
    irq_mask_span: Span | None

    @classmethod
    def from_device(cls, device: Device) -> "MachineModel":
        trusted = {name: device.firmware.span(name)
                   for name in ("boot", "Code_Attest", "Code_Clock")}
        attacker = merge_intervals(
            [(r.start, r.end) for r in device.memory.writable_regions()
             if r.executable])
        if not device.cpu.enforce_entry_points:
            # Without single-entry enforcement a code-reuse jump into
            # trusted code executes with its privileges (Section 6.2).
            attacker = merge_intervals(attacker + list(trusted.values()))
        clock = device.clock
        profile = (device.boot_profile.name
                   if device.boot_profile is not None else "unbooted")
        return cls(
            profile=profile,
            clock_kind=device.config.clock_kind,
            rules=tuple(device.mpu.rules()),
            mpu_enabled=device.mpu.enabled,
            mpu_locked=device.mpu.locked,
            max_rules=device.mpu.max_rules,
            enforce_entry_points=device.cpu.enforce_entry_points,
            trusted_code=trusted,
            attacker_code=tuple(attacker),
            rom_span=(device.rom.start, device.rom.end),
            measured_spans=(device.firmware.span("app"),),
            key_span=device.key_span,
            counter_span=device.counter_span,
            mpu_register_span=device.mpu_register_span,
            clock_device_kind=clock.kind if clock is not None else None,
            clock_register_span=device.clock_register_span,
            clock_msb_span=device.clock_msb_span,
            idt_span=device.idt_span,
            irq_mask_span=device.irq_mask_span,
        )


# ---------------------------------------------------------------------------
# Interval reachability: the core of every access invariant
# ---------------------------------------------------------------------------

def _rule_allows(rule: MPURule, access: str) -> bool:
    return rule.allow_read if access == "read" else rule.allow_write


def _code_reach(rule: MPURule, code: list[Span] | tuple[Span, ...]
                ) -> list[Span]:
    """Sub-spans of ``code`` from which ``rule``'s selector is matchable.

    Containment semantics: an execution context of at least one byte
    placed anywhere inside the intersection lies fully inside the rule's
    code range, so any non-empty intersection is reachable.  The empty
    selector (``code_start == code_end``) matches no software.
    """
    if rule.code_start == rule.code_end:
        return []
    return intersect_intervals([(rule.code_start, rule.code_end)],
                               list(code))


def attacker_reachable(model: MachineModel, span: Span,
                       access: str) -> list[Span]:
    """Sub-spans of ``span`` that adversary-resident code can ``access``.

    EA-MPU semantics (mirroring
    :meth:`~repro.mcu.mpu.ExecutionAwareMPU.check_access`): a byte
    covered by no rule is ordinary memory, accessible to anyone; a
    covered byte is accessible iff some covering rule allows the access
    kind *and* its code selector is reachable from attacker code.  With
    the MPU disabled everything is reachable.
    """
    lo, hi = span
    if lo >= hi:
        return []
    if not model.mpu_enabled:
        return [span]
    covered: list[Span] = []
    granted: list[Span] = []
    for rule in model.rules:
        overlap = rule.data_overlap(lo, hi)
        if overlap is None:
            continue
        covered.append(overlap)
        if _rule_allows(rule, access) and _code_reach(rule,
                                                      model.attacker_code):
            granted.append(overlap)
    uncovered = subtract_intervals([span], merge_intervals(covered))
    return merge_intervals(uncovered + granted)


def context_allowed(model: MachineModel, code_span: Span, span: Span,
                    access: str) -> bool:
    """Whether code executing in ``code_span`` may ``access`` all of
    ``span`` (the functional direction: the trust anchor must still be
    able to do its job)."""
    lo, hi = span
    if lo >= hi or not model.mpu_enabled:
        return True
    covered: list[Span] = []
    granted: list[Span] = []
    for rule in model.rules:
        overlap = rule.data_overlap(lo, hi)
        if overlap is None:
            continue
        covered.append(overlap)
        if _rule_allows(rule, access) and rule.code_matches(*code_span):
            granted.append(overlap)
    denied = subtract_intervals(merge_intervals(covered),
                                merge_intervals(granted))
    return not intersect_intervals(denied, [span])


def _witness(model: MachineModel, reachable: list[Span], span: Span,
             access: str, what: str) -> Counterexample:
    """Build a concrete counterexample for the first reachable byte."""
    address = reachable[0][0]
    code_address = None
    for rule in model.rules:
        if (rule.covers(address) and _rule_allows(rule, access)):
            reach = _code_reach(rule, model.attacker_code)
            if reach:
                code_address = reach[0][0]
                detail = (f"rule[{rule.index}] grants {access} of "
                          f"{what} byte {address:#x} to code at "
                          f"{code_address:#x}")
                return Counterexample(address, access, code_address, detail)
    if model.attacker_code:
        code_address = model.attacker_code[0][0]
    covered_state = ("EA-MPU disabled" if not model.mpu_enabled
                     else "no rule covers it")
    detail = (f"{what} byte {address:#x} is ordinary memory "
              f"({covered_state}): malware at "
              f"{code_address:#x} may {access} it"
              if code_address is not None else
              f"{what} byte {address:#x} is unprotected ({covered_state})")
    return Counterexample(address, access, code_address, detail)


# ---------------------------------------------------------------------------
# The invariant catalog
# ---------------------------------------------------------------------------

def _check_rule_budget(model: MachineModel) -> InvariantVerdict:
    """Active rules fit the hardware rule file (#r of Table 3)."""
    name = "rule-budget"
    count = len(model.rules)
    if count > model.max_rules:
        return InvariantVerdict(name, False,
                                f"{count} active rules exceed the "
                                f"hardware maximum of {model.max_rules}")
    bad = [r.index for r in model.rules
           if not (0 <= r.index < model.max_rules)]
    if bad:
        return InvariantVerdict(name, False,
                                f"rule indices {bad} outside the "
                                f"{model.max_rules}-slot register file")
    return InvariantVerdict(name, True,
                            f"{count}/{model.max_rules} rule slots used")


def _check_secure_boot_coverage(model: MachineModel) -> InvariantVerdict:
    """Attestation (and SW-clock) code is immutable or measured.

    Section 6.2: secure boot verifies that correct software is loaded
    before it programs the EA-MPU.  Trusted code must therefore live in
    ROM (hardware-immutable) or inside the span the boot reference
    measurement covers -- otherwise the rules anchor trust in code
    nothing vouches for.
    """
    name = "secure-boot-coverage"
    required = ["Code_Attest"]
    if model.clock_device_kind == "software":
        required.append("Code_Clock")
    vouched = merge_intervals([model.rom_span] + list(model.measured_spans))
    for module in required:
        span = model.trusted_code[module]
        uncovered = subtract_intervals([span], vouched)
        if uncovered:
            address = uncovered[0][0]
            return InvariantVerdict(
                name, False,
                f"{module} byte {address:#x} is neither in ROM nor "
                f"covered by the boot reference measurement",
                counterexample=Counterexample(
                    address, "write", None,
                    f"{module} partially outside ROM and the measured "
                    f"image"))
    return InvariantVerdict(name, True,
                            " and ".join(required) + " in ROM or within "
                            "the measured image")


def _check_mpu_lockdown(model: MachineModel) -> InvariantVerdict:
    """The EA-MPU's own configuration is immutable after boot.

    The Figure 1a lockdown idiom: either the sticky hardware lock is
    set, or a rule makes the register file read-only to all software.
    Without it, malware simply reprograms the rules away.
    """
    name = "mpu-lockdown"
    if not model.mpu_enabled:
        return InvariantVerdict(
            name, False, "EA-MPU disabled: no protection is in force and "
            "its configuration is freely writable",
            counterexample=Counterexample(
                model.mpu_register_span[0], "write",
                model.attacker_code[0][0] if model.attacker_code else None,
                "any software may write the EA-MPU register file"))
    if model.mpu_locked:
        return InvariantVerdict(name, True,
                                "sticky hardware lock bit set")
    reachable = attacker_reachable(model, model.mpu_register_span, "write")
    if reachable:
        return InvariantVerdict(
            name, False,
            "EA-MPU configuration registers writable by untrusted code",
            counterexample=_witness(model, reachable,
                                    model.mpu_register_span, "write",
                                    "EA-MPU register"))
    return InvariantVerdict(name, True,
                            "register file read-only to all software")


def _check_no_widening_overlap(model: MachineModel) -> InvariantVerdict:
    """No rule overlap re-grants an access another rule denies outright.

    EA-MPU grants are a union: any covering rule that matches grants the
    access, so a read-only rule (the Figure 1a lockdown idiom) is
    silently nullified by an overlapping rule that hands write access on
    the same bytes to attacker-reachable code.  Only outright denials
    count as the restrictive side: a narrow-selector *grant* (the
    SW-clock's ``Code_Clock`` write carve-out inside the all-software
    read-only ``Clock_MSB`` rule) expresses no exclusivity -- span
    exclusivity is what the key/counter/clock invariants check.
    """
    name = "no-widening-overlap"
    if not model.mpu_enabled:
        return InvariantVerdict(name, True, "EA-MPU disabled: vacuous")
    for restrictive in model.rules:
        for widening in model.rules:
            if widening.index == restrictive.index:
                continue
            overlap = widening.data_overlap(restrictive.data_start,
                                            restrictive.data_end)
            if overlap is None:
                continue
            for access in ("read", "write"):
                if _rule_allows(restrictive, access):
                    continue   # restrictive side must deny outright
                if not _rule_allows(widening, access):
                    continue
                reach = _code_reach(widening, model.attacker_code)
                if not reach:
                    continue
                address, code_address = overlap[0], reach[0][0]
                return InvariantVerdict(
                    name, False,
                    f"rule[{widening.index}] re-grants {access} of "
                    f"[{overlap[0]:#x}, {overlap[1]:#x}) that "
                    f"rule[{restrictive.index}] restricts",
                    counterexample=Counterexample(
                        address, access, code_address,
                        f"overlapping rule[{widening.index}] admits "
                        f"attacker code at {code_address:#x}"))
    return InvariantVerdict(name, True,
                            "no overlap widens access to untrusted code")


def _check_key_confidentiality(model: MachineModel) -> InvariantVerdict:
    """``K_Attest`` is unreadable outside ``Code_Attest`` (Section 6.1).

    Failure enables the key-forgery column of the Section 5 argument:
    with the key, ``Adv_roam`` mints authentic ``attreq`` messages and
    every freshness defence is moot.
    """
    name = "key-confidentiality"
    attack = ATTACK_FOR_INVARIANT[name]
    reachable = attacker_reachable(model, model.key_span, "read")
    if reachable:
        return InvariantVerdict(
            name, False, "K_Attest readable by untrusted code",
            attack=attack,
            counterexample=_witness(model, reachable, model.key_span,
                                    "read", "K_Attest"))
    if not context_allowed(model, model.trusted_code["Code_Attest"],
                           model.key_span, "read"):
        return InvariantVerdict(
            name, False, "over-restriction: Code_Attest itself cannot "
            "read K_Attest, so attestation cannot run", attack=attack)
    return InvariantVerdict(name, True,
                            "K_Attest readable only from Code_Attest",
                            attack=attack)


def _check_counter_rollback(model: MachineModel) -> InvariantVerdict:
    """``counter_R`` writable only by ``Code_Attest`` (Section 6).

    Failure enables Section 5's counter-rollback: Phase II malware
    rewinds the stored counter below an eavesdropped request's value,
    and the later replay is accepted -- undetectably after the fact.
    """
    name = "counter-rollback-protection"
    attack = ATTACK_FOR_INVARIANT[name]
    reachable = attacker_reachable(model, model.counter_span, "write")
    if reachable:
        return InvariantVerdict(
            name, False, "counter_R writable by untrusted code "
            "(rollback possible)", attack=attack,
            counterexample=_witness(model, reachable, model.counter_span,
                                    "write", "counter_R"))
    attest = model.trusted_code["Code_Attest"]
    if not (context_allowed(model, attest, model.counter_span, "read")
            and context_allowed(model, attest, model.counter_span,
                                "write")):
        return InvariantVerdict(
            name, False, "over-restriction: Code_Attest cannot update "
            "counter_R, so freshness state cannot advance", attack=attack)
    return InvariantVerdict(name, True,
                            "counter_R read/write confined to Code_Attest",
                            attack=attack)


def _check_clock_integrity(model: MachineModel) -> InvariantVerdict:
    """The real-time clock cannot be set back or stopped (Section 6.3).

    Failure enables Section 5's clock-reset: malware rewinds the clock
    by ``delta`` so a recorded request's timestamp falls back inside the
    acceptance window.  For the Figure 1b SW-clock the attack surface is
    threefold: the ``Clock_MSB`` word, the IDT entry of the wrap
    interrupt, and the interrupt mask register -- all three must be
    locked, and ``Code_Clock`` must retain its write path.
    """
    name = "clock-integrity"
    attack = ATTACK_FOR_INVARIANT[name]
    if model.clock_device_kind is None:
        return InvariantVerdict(
            name, True, "no real-time clock: timestamp freshness "
            "unavailable, nothing to protect", attack=attack)
    if model.clock_device_kind == "hardware":
        reachable = attacker_reachable(model, model.clock_register_span,
                                       "write")
        if reachable:
            return InvariantVerdict(
                name, False, "hardware clock register writable by "
                "untrusted code", attack=attack,
                counterexample=_witness(model, reachable,
                                        model.clock_register_span,
                                        "write", "clock register"))
        return InvariantVerdict(name, True,
                                "wide hardware clock register read-only "
                                "to all software", attack=attack)
    # SW-clock (Figure 1b)
    surfaces = (("Clock_MSB", model.clock_msb_span),
                ("IDT", model.idt_span),
                ("interrupt mask register", model.irq_mask_span))
    for what, span in surfaces:
        reachable = attacker_reachable(model, span, "write")
        if reachable:
            return InvariantVerdict(
                name, False, f"SW-clock sabotage possible: {what} "
                f"writable by untrusted code", attack=attack,
                counterexample=_witness(model, reachable, span, "write",
                                        what))
    clock_code = model.trusted_code["Code_Clock"]
    if not context_allowed(model, clock_code, model.clock_msb_span,
                           "write"):
        return InvariantVerdict(
            name, False, "over-restriction: Code_Clock cannot update "
            "Clock_MSB, so the SW-clock stops at the first wrap",
            attack=attack)
    return InvariantVerdict(name, True,
                            "Clock_MSB, IDT and mask locked; Code_Clock "
                            "retains its write path", attack=attack)


_CHECKS = {
    "rule-budget": _check_rule_budget,
    "secure-boot-coverage": _check_secure_boot_coverage,
    "mpu-lockdown": _check_mpu_lockdown,
    "no-widening-overlap": _check_no_widening_overlap,
    "key-confidentiality": _check_key_confidentiality,
    "counter-rollback-protection": _check_counter_rollback,
    "clock-integrity": _check_clock_integrity,
}

assert set(_CHECKS) == set(INVARIANT_ORDER) == INVARIANT_NAMES


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def analyze_model(model: MachineModel) -> ProfileReport:
    """Run the whole invariant catalog against one machine model."""
    verdicts = tuple(_CHECKS[name](model) for name in INVARIANT_ORDER)
    return ProfileReport(profile=model.profile,
                         clock_kind=model.clock_kind, verdicts=verdicts)


def analyze_device(device: Device) -> ProfileReport:
    """Statically verify a provisioned, booted device's configuration."""
    return analyze_model(MachineModel.from_device(device))


def _analysis_config(clock_kind: str) -> DeviceConfig:
    """A small, fast-to-boot device matching the scenario harness."""
    return DeviceConfig(ram_size=16 * 1024, flash_size=32 * 1024,
                        app_size=4 * 1024, clock_kind=clock_kind)


def verify_profile(profile: ProtectionProfile, *, clock_kind: str = "hw64",
                   config: DeviceConfig | None = None) -> ProfileReport:
    """Boot a reference device under ``profile`` and verify it statically.

    Booting is configuration, not simulation: secure boot programs the
    rule table exactly as a deployment would, and the verifier then
    reasons over that table without running any attack.
    """
    if config is None:
        config = _analysis_config(clock_kind)
    device = Device(config)
    device.provision(b"K" * 16)
    device.boot(profile)
    return analyze_device(device)


def verify_shipped_profiles(*, clock_kinds: tuple[str, ...] = ("hw64", "sw")
                            ) -> list[ProfileReport]:
    """Verify all four shipped profiles across ``clock_kinds``.

    Report order is deterministic: profiles in escalation-ladder order,
    clock kinds in the given order.
    """
    reports = []
    for profile in ALL_PROFILES:
        for clock_kind in clock_kinds:
            reports.append(verify_profile(profile, clock_kind=clock_kind))
    return reports
