"""Key-confidentiality taint analysis over the simulator tree.

The paper's Section 5 confidentiality claim -- ``K_Attest`` never
leaves the prover's protected memory -- is enforced *inside* the
simulation by the EA-MPU (and verified statically by
:mod:`repro.analysis.invariants`).  This module closes the other half
of the trust boundary: our own host-side code must not exfiltrate key
material through telemetry, traces, reports, wire messages or
exception text.  It is a client of the interprocedural engine in
:mod:`repro.analysis.dataflow`.

Rules
-----

``KEY001``
    A key-tagged value reaches a forbidden host-boundary sink
    (telemetry counter/gauge/event, trace record, ``json.dump``,
    ``print``, channel send, blob store, exception text).
``KEY002``
    A key-tagged value decides a branch whose outcome is telemetered:
    the *content* of the key shapes observable behaviour even though
    its bytes never cross (a timing/shape leak).
``KEY003``
    An undeclared sink signature: a module under ``src/repro/``
    performs host-boundary writes (``print``/``json.dump``/write-mode
    ``open``/``write_text``/``pickle.dump``) without being declared in
    :data:`KNOWN_BOUNDARY_MODULES` or the checked-in
    ``taint-policy.json`` -- new export paths must be enumerated before
    the dataflow rules can claim coverage.

Sources, sinks, sanitizers
--------------------------

*Sources* are the KDF outputs (``derive_device_key``, ``hkdf*``), the
hardware key reads (``read_key``/``read_attestation_key``), and
``raw_read`` applied to key-span addresses.  ``Device.key_span`` /
``key_address`` reads yield the distinct ``KEYADDR`` tag: key
*addresses* are public layout facts (the invariant verifier prints
them in counterexamples); only dereferenced key *bytes* carry ``KEY``.
*Sanitizers* are the MAC/digest finalizations (``hmac_sha1``,
``cbc_mac``, ``.digest()``/``.hexdigest()``, cipher ``.encrypt``):
their output is safe to emit by construction.  The snapshot
``BlobStore`` is a *policy sink* -- region images legitimately contain
the key because the simulated memory IS the trust boundary -- declared
with a mandatory justification in ``taint-policy.json``, mirroring the
``lint-waivers.json`` discipline.  Stale policy entries (matching no
current sink site or boundary op) fail the run, so the policy file
cannot rot.

Known static blind spots, covered by the dynamic canary hunt
(:mod:`repro.analysis.canary`): subscript stores (memory byte planes),
module-global caches (the HMAC midstate pad cache) and closures.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

import ast

from .dataflow import (BOTTOM, CallContext, DataflowClient, Program,
                       SinkSite, Violation, analyze_program)

__all__ = ["KEY", "KEYADDR", "TaintPolicy", "PolicySink", "BoundaryModule",
           "TaintReport", "KeyConfidentialityClient", "load_policy",
           "analyze_taint_tree", "KNOWN_BOUNDARY_MODULES",
           "SOURCE_FUNCTIONS", "SANITIZER_FUNCTIONS", "SOURCE_ATTRS"]

#: Tag carried by key *bytes* (the secret).
KEY = "key"
#: Tag carried by key *addresses* (public layout; never a violation).
KEYADDR = "key-addr"

#: Functions whose return value is key material, matched by (dotted or
#: resolved) name -- the KDF surface plus the hardware key reads.
SOURCE_FUNCTIONS = frozenset({
    "derive_device_key", "hkdf", "hkdf_extract", "hkdf_expand",
    "read_key", "read_attestation_key",
})

#: Finalization functions whose output is safe to emit: MAC tags,
#: digests and ciphertext are the *point* of having the key.
SANITIZER_FUNCTIONS = frozenset({
    "hmac_sha1", "cbc_mac", "digest", "hexdigest", "encrypt",
    "encrypt_block", "decrypt_block", "constant_time_compare",
})

#: Attribute reads that intrinsically carry a tag.
SOURCE_ATTRS = {
    "key_span": frozenset({KEYADDR}),
    "key_address": frozenset({KEYADDR}),
}

#: Modules with built-in permission to perform host-boundary writes,
#: with the justification for each -- the same explicit-allowlist
#: discipline as :data:`repro.analysis.lint.HOST_BOUNDARY_MODULES`.
#: Presentation-layer modules (``cli.py``, ``perf/*``) are declared in
#: ``taint-policy.json`` instead, where their entries are stale-checked.
KNOWN_BOUNDARY_MODULES = {
    "src/repro/obs/trace.py":
        "EventTrace.export_jsonl is the declared trace export; its "
        "payloads are covered by the trace sink rules and the canary "
        "scan",
    "src/repro/snapshot/document.py":
        "the snapshot writer; region images route through the "
        "BlobStore policy sink and everything else is scanned by the "
        "canary hunt",
}

#: Sink kinds whose presence inside a branch makes a key-dependent
#: condition a KEY002 (the branch outcome is observable).
_BRANCH_SINK_KINDS = frozenset({"telemetry", "trace"})

#: The analyzer's own dynamic cross-check is excluded from the static
#: scan: the canary hunter *must* derive keys, encode them every way a
#: leak could, and plant a deliberate telemetry leak in ``leak=True``
#: mode -- every one of those lines is a true positive by design.  Its
#: confidentiality obligations are checked by its own verdicts (a hunt
#: whose clean run is not clean fails the smoke gate), not by KEY001.
EXCLUDED_SELF_MODULES = frozenset({
    "src/repro/analysis/canary.py",
})

#: Boundary write operations KEY003 looks for (AST level).
_WRITE_MODES = ("w", "a", "x")


# ---------------------------------------------------------------------------
# Policy file (taint-policy.json)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PolicySink:
    """One declared legitimate sink: kind + path + justification."""

    kind: str
    path: str
    reason: str

    def matches_violation(self, violation: Violation) -> bool:
        return violation.sink == self.kind and violation.path == self.path

    def matches_site(self, site: SinkSite) -> bool:
        return site.kind == self.kind and site.path == self.path


@dataclass(frozen=True)
class BoundaryModule:
    path: str
    reason: str


@dataclass(frozen=True)
class TaintPolicy:
    sinks: tuple[PolicySink, ...]
    boundary_modules: tuple[BoundaryModule, ...]

    @property
    def boundary_paths(self) -> frozenset:
        return frozenset(m.path for m in self.boundary_modules)


def load_policy(path: Path) -> TaintPolicy:
    """Load ``taint-policy.json`` (missing file = empty policy)."""
    if not path.exists():
        return TaintPolicy(sinks=(), boundary_modules=())
    data = json.loads(path.read_text())
    sinks = []
    for entry in data.get("policy_sinks", []):
        if not entry.get("reason"):
            raise ValueError(f"policy sink {entry.get('kind')!r} on "
                             f"{entry.get('path')!r} has no justification")
        sinks.append(PolicySink(kind=entry["kind"], path=entry["path"],
                                reason=entry["reason"]))
    modules = []
    for entry in data.get("boundary_modules", []):
        if not entry.get("reason"):
            raise ValueError(f"boundary module {entry.get('path')!r} "
                             f"has no justification")
        modules.append(BoundaryModule(path=entry["path"],
                                      reason=entry["reason"]))
    return TaintPolicy(sinks=tuple(sinks), boundary_modules=tuple(modules))


# ---------------------------------------------------------------------------
# The dataflow client
# ---------------------------------------------------------------------------

def _dotted_contains(ctx: CallContext, needle: str) -> bool:
    if ctx.dotted is None:
        return False
    return any(needle in part.lower() for part in ctx.dotted[:-1])


class KeyConfidentialityClient(DataflowClient):
    SINK_RULE = "KEY001"
    BRANCH_RULE = "KEY002"
    secret_tags = frozenset({KEY})
    branch_sink_kinds = _BRANCH_SINK_KINDS

    def transform_call(self, ctx: CallContext):
        name = ctx.name
        if name in SOURCE_FUNCTIONS:
            return frozenset({KEY})
        if name == "raw_read":
            # Dereferencing a key-span address yields key bytes; any
            # other raw_read is ordinary (public) memory content.
            if KEYADDR in ctx.all_tags:
                return frozenset({KEY})
            return BOTTOM
        if name in SANITIZER_FUNCTIONS:
            return BOTTOM
        return None

    def sink_kind(self, ctx: CallContext):
        name = ctx.name
        if name is None:
            return None
        if (name in ("count", "set_gauge", "observe", "event")
                and _dotted_contains(ctx, "telemetry")):
            return "telemetry"
        if (name == "record"
                and (_dotted_contains(ctx, "trace")
                     or _dotted_contains(ctx, "transcript"))):
            return "trace"
        if name in ("dump", "dumps") and ctx.dotted is not None \
                and len(ctx.dotted) >= 2 and ctx.dotted[-2] == "json":
            return "json-report"
        if name == "print" and ctx.dotted is not None \
                and len(ctx.dotted) == 1:
            return "stdout"
        if name == "put" and (_dotted_contains(ctx, "blob")
                              or _dotted_contains(ctx, "store")
                              or (ctx.enclosing_class is not None
                                  and "Blob" in ctx.enclosing_class)):
            return "blob-store"
        if (name in ("send", "deliver", "inject")
                and _dotted_contains(ctx, "channel")):
            return "channel"
        if name == "write_text":
            return "file-write"
        return None

    def attr_source(self, attr: str) -> frozenset:
        return SOURCE_ATTRS.get(attr, BOTTOM)

    def storable_tags(self, tags: frozenset) -> frozenset:
        # Key *addresses* are public layout facts; letting them into
        # the name-joined attribute map would mark every ``.start`` /
        # ``.address`` in the program key-adjacent and turn ordinary
        # bus reads into false key sources.
        return tags - frozenset({KEYADDR})


# ---------------------------------------------------------------------------
# KEY003: undeclared boundary modules (a direct AST pass)
# ---------------------------------------------------------------------------

def _is_write_open(node: ast.Call) -> bool:
    mode = None
    if len(node.args) >= 2 and isinstance(node.args[1], ast.Constant):
        mode = node.args[1].value
    for kw in node.keywords:
        if kw.arg == "mode" and isinstance(kw.value, ast.Constant):
            mode = kw.value.value
    return isinstance(mode, str) and any(m in mode for m in _WRITE_MODES)


def _boundary_ops(tree: ast.AST) -> list[tuple[int, int, str]]:
    """(line, col, op) for every host-boundary write in a module."""
    ops: list[tuple[int, int, str]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            if func.id == "print":
                ops.append((node.lineno, node.col_offset, "print"))
            elif func.id == "open" and _is_write_open(node):
                ops.append((node.lineno, node.col_offset, "open-write"))
        elif isinstance(func, ast.Attribute):
            base = func.value
            if (func.attr in ("dump", "dumps")
                    and isinstance(base, ast.Name)
                    and base.id in ("json", "pickle")
                    and not (base.id == "json" and func.attr == "dumps")):
                ops.append((node.lineno, node.col_offset,
                            f"{base.id}.{func.attr}"))
            elif func.attr == "write_text":
                ops.append((node.lineno, node.col_offset, "write_text"))
            elif func.attr == "open" and _is_write_open(node):
                ops.append((node.lineno, node.col_offset, "open-write"))
    return ops


def _undeclared_boundaries(program_files, root: Path,
                           policy: TaintPolicy):
    """KEY003 violations + the set of policy paths that matched."""
    violations: list[Violation] = []
    matched_paths: set[str] = set()
    declared = set(KNOWN_BOUNDARY_MODULES) | policy.boundary_paths
    for path in program_files:
        file_path = root / path
        if not file_path.exists():
            continue
        try:
            tree = ast.parse(file_path.read_text(), filename=path)
        except SyntaxError:
            continue
        ops = _boundary_ops(tree)
        if not ops:
            continue
        if path in declared:
            if path in policy.boundary_paths:
                matched_paths.add(path)
            continue
        line, col, op = min(ops)
        violations.append(Violation(
            rule="KEY003", path=path, line=line, col=col, sink=op,
            message=f"undeclared host-boundary write {op} "
                    f"({len(ops)} site{'s' if len(ops) != 1 else ''}); "
                    f"declare the module in taint-policy.json or "
                    f"KNOWN_BOUNDARY_MODULES",
            chain=(f"{path}:{line}",)))
    return violations, matched_paths


# ---------------------------------------------------------------------------
# Report
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TaintReport:
    files_scanned: int
    violations: tuple[Violation, ...]       # unwaived, sorted
    waived: tuple[tuple[Violation, str], ...]  # (violation, reason)
    sinks: tuple[tuple[str, str, int], ...]    # (kind, path, site count)
    stale_policy: tuple[dict, ...]
    rounds: int

    @property
    def clean(self) -> bool:
        return not self.violations

    def as_dict(self) -> dict:
        waived = []
        for violation, reason in self.waived:
            entry = violation.as_dict()
            entry["waiver_reason"] = reason
            waived.append(entry)
        return {
            "files_scanned": self.files_scanned,
            "clean": self.clean,
            "violations": [v.as_dict() for v in self.violations],
            "waived": waived,
            "sinks": [{"kind": kind, "path": path, "count": count}
                      for kind, path, count in self.sinks],
            "stale_policy": list(self.stale_policy),
            "rounds": self.rounds,
        }


def analyze_taint_tree(root: Path, *,
                       dirs: tuple[str, ...] = ("src/repro",),
                       policy: TaintPolicy | None = None) -> TaintReport:
    """Run the full key-confidentiality analysis over ``root``."""
    policy = policy if policy is not None else TaintPolicy((), ())
    program = Program.from_tree(root, dirs=dirs,
                                exclude=EXCLUDED_SELF_MODULES)
    result = analyze_program(program, KeyConfidentialityClient())

    kept: list[Violation] = []
    waived: list[tuple[Violation, str]] = []
    used_sinks: set[PolicySink] = set()
    for violation in result.violations:
        matched = next((p for p in policy.sinks
                        if p.matches_violation(violation)), None)
        if matched is not None:
            used_sinks.add(matched)
            waived.append((violation, matched.reason))
        else:
            kept.append(violation)

    key003, matched_boundaries = _undeclared_boundaries(
        result.files, root, policy)
    kept.extend(key003)
    kept.sort(key=Violation.sort_key)

    # Stale-policy detection: a declared sink must match a catalogued
    # sink site (tainted or not); a declared boundary module must
    # actually contain boundary ops.
    stale: list[dict] = []
    for sink in policy.sinks:
        if sink in used_sinks:
            continue
        if not any(sink.matches_site(site) for site in result.sink_sites):
            stale.append({"kind": "policy-sink", "path": sink.path,
                          "sink": sink.kind,
                          "detail": "matches no catalogued sink site"})
    for module in policy.boundary_modules:
        if module.path not in matched_boundaries:
            stale.append({"kind": "boundary-module", "path": module.path,
                          "detail": "module has no host-boundary writes "
                                    "(or is not scanned)"})
    stale.sort(key=lambda e: (e["kind"], e["path"]))

    site_counts: dict[tuple[str, str], int] = {}
    for site in result.sink_sites:
        key = (site.kind, site.path)
        site_counts[key] = site_counts.get(key, 0) + 1
    sinks = tuple(sorted(
        (kind, path, count)
        for (kind, path), count in site_counts.items()))

    return TaintReport(
        files_scanned=len(result.files),
        violations=tuple(kept),
        waived=tuple(sorted(waived, key=lambda w: w[0].sort_key())),
        sinks=sinks,
        stale_policy=tuple(stale),
        rounds=result.rounds)
