"""Deterministic machine-readable report for the static-analysis passes.

One JSON document (``repro.analysis/v1``) combines the per-profile
invariant verdicts with the repo lint results, validated by
:func:`repro.obs.schema.validate_analysis_report`.  The encoding is
byte-identical for identical inputs: entries are emitted in a fixed
order, keys are sorted, and nothing host-dependent (timestamps, absolute
paths, dict iteration order) leaks in -- CI diffs two runs to prove it.
"""

from __future__ import annotations

import json

from ..obs.schema import validate_analysis_report
from .invariants import ProfileReport
from .lint import LintReport

__all__ = ["build_report", "render_report_json"]


def build_report(profile_reports: list[ProfileReport] | tuple,
                 lint_report: LintReport,
                 taint_report=None) -> dict:
    """Assemble and validate the combined analysis report.

    ``taint_report`` (a :class:`repro.analysis.taint.TaintReport`) is
    optional so the lint-only callers keep their exact bytes; when
    given, the document gains a ``taint`` section.
    """
    profiles = [r.as_dict() for r in
                sorted(profile_reports,
                       key=lambda r: (r.profile, r.clock_kind))]
    report = {
        "schema": "repro.analysis/v1",
        "profiles": profiles,
        "lint": lint_report.as_dict(),
    }
    if taint_report is not None:
        report["taint"] = taint_report.as_dict()
    errors = validate_analysis_report(report)
    if errors:
        raise ValueError("analysis report violates its schema: "
                         + "; ".join(errors))
    return report


def render_report_json(report: dict) -> str:
    """Canonical JSON encoding (sorted keys, fixed separators)."""
    return json.dumps(report, indent=2, sort_keys=True,
                      separators=(",", ": ")) + "\n"
