"""Reusable AST-based interprocedural dataflow over a Python tree.

The engine computes, for every function and method under the analyzed
directories, a *transfer summary* -- which parameters flow to the return
value, which reach a client-declared sink, which influence a branch
around a sink, and which are stored into object attributes -- and
iterates the whole program to a fixpoint over a monotone powerset
lattice of client-defined *tags*.  A client (see
:mod:`repro.analysis.taint`) supplies the semantics:

* ``transform_call`` turns calls into **sources** (return a tag set) or
  **sanitizers** (return the empty set);
* ``sink_kind`` classifies calls as **sinks**;
* ``attr_source`` tags attribute reads (e.g. ``device.key_span``);
* ``secret_tags`` says which tags constitute a violation when they
  reach a sink or a sink-adjacent branch.

Design choices, all biased toward *zero false positives* on the shipped
tree (the analyzer gates CI; a noisy gate gets deleted):

* **Field-sensitive stores, name-joined reads.**  ``obj.attr = value``
  taints the attribute *name* globally; ``expr.attr`` reads join the
  tags stored under that name anywhere.  Object taint does **not**
  bleed through attribute reads -- a ``Session`` built from a key is
  not itself secret, only its ``key`` field is.
* **Resolved constructors return clean objects.**  ``Cls(key)`` applies
  ``__init__``'s (or the dataclass fields') attribute effects and
  returns bottom; *unresolved* calls conservatively join their argument
  tags into the result, so ``key.hex()`` or ``b"".join(keys)`` stay
  tainted.
* **Subscript stores are not tracked** (``buf[i] = v``): memory-region
  byte planes would otherwise taint every counter read fleet-wide.
  The dynamic canary hunt (:mod:`repro.analysis.canary`) covers flows
  the static story deliberately drops.
* **Chains are depth-capped** so summaries stay a finite lattice and
  recursive call graphs terminate.

Termination: every per-function summary and the global attribute map
only ever grow, all grow inside finite sets (tags x parameters x
depth-capped witness chains), and rounds stop at the first unchanged
iteration (with a generous safety cap).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["SetLattice", "Program", "FunctionInfo", "FunctionSummary",
           "CallContext", "DataflowClient", "Violation", "SinkSite",
           "DataflowResult", "DataflowEngine", "analyze_program",
           "BOTTOM", "DEFAULT_UNTAINTING_BUILTINS", "MAX_CHAIN_DEPTH",
           "MAX_ROUNDS"]

#: The lattice bottom: no tags.
BOTTOM: frozenset = frozenset()

#: Builtins whose result reflects *shape*, not content -- calling them
#: on tainted data yields clean data (``len(key)`` is public).
DEFAULT_UNTAINTING_BUILTINS = frozenset({
    "len", "isinstance", "issubclass", "bool", "type", "id", "hash",
    "hasattr", "callable", "range", "ord",
})

#: Receiver methods that mutate their receiver in place; an
#: ``x.append(tainted)`` expression statement taints ``x``.
_MUTATOR_METHODS = frozenset({
    "append", "add", "extend", "insert", "update", "setdefault",
    "appendleft", "push",
})

#: Witness chains are truncated at this many frames so the summary
#: lattice stays finite under recursion.
MAX_CHAIN_DEPTH = 6

#: Hard safety cap on whole-program fixpoint rounds (the monotone
#: argument makes this unreachable in practice).
MAX_ROUNDS = 100


class SetLattice:
    """The powerset lattice over hashable tags (join = union)."""

    bottom = BOTTOM

    @staticmethod
    def join(*sets) -> frozenset:
        return frozenset().union(*sets)

    @staticmethod
    def leq(a: frozenset, b: frozenset) -> bool:
        return a <= b


def _is_param(tag) -> bool:
    return isinstance(tag, tuple) and len(tag) == 2 and tag[0] == "param"


def _concrete(tags: frozenset) -> frozenset:
    return frozenset(t for t in tags if not _is_param(t))


def _param_indices(tags: frozenset) -> tuple[int, ...]:
    return tuple(sorted(t[1] for t in tags if _is_param(t)))


def _dotted(node: ast.AST) -> tuple[str, ...] | None:
    """Flatten ``a.b.c`` into ``("a", "b", "c")``; None otherwise."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


# ---------------------------------------------------------------------------
# Program model
# ---------------------------------------------------------------------------

@dataclass
class FunctionInfo:
    """One analyzable function or method."""

    qual: str                    # "path::Class.name" or "path::name"
    path: str                    # repo-relative, POSIX separators
    module: str                  # dotted module name
    class_name: str | None
    name: str
    node: ast.AST                # FunctionDef | AsyncFunctionDef
    params: tuple[str, ...]      # positional + kw-only, in order
    vararg: str | None
    kwarg: str | None
    lineno: int

    @property
    def is_method(self) -> bool:
        return self.class_name is not None


@dataclass
class ClassInfo:
    name: str
    path: str
    methods: dict                # method name -> qual
    dataclass_fields: tuple[str, ...]
    has_init: bool


class Program:
    """Parsed modules, import maps and a call-resolution oracle."""

    def __init__(self) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.classes: dict[str, ClassInfo] = {}          # "path::Cls"
        self.classes_by_name: dict[str, list[str]] = {}  # name -> keys
        self.methods_by_name: dict[str, list[str]] = {}  # name -> quals
        self.module_funcs: dict[str, dict[str, str]] = {}
        self.module_classes: dict[str, dict[str, str]] = {}
        self.imports: dict[str, dict[str, str]] = {}     # alias -> module
        self.from_imports: dict[str, dict[str, tuple[str, str]]] = {}
        self.files: list[str] = []

    # -- construction ------------------------------------------------------

    @classmethod
    def from_sources(cls, sources: dict[str, str]) -> "Program":
        """Build from ``{repo-relative path: source text}``."""
        program = cls()
        for path in sorted(sources):
            program._add_module(path, sources[path])
        return program

    @classmethod
    def from_tree(cls, root: Path,
                  dirs: tuple[str, ...] = ("src/repro",),
                  exclude: frozenset = frozenset()) -> "Program":
        """Parse every ``.py`` file under ``root/<dir>`` deterministically."""
        sources: dict[str, str] = {}
        for name in dirs:
            base = root / name
            if not base.exists():
                continue
            for file_path in sorted(base.rglob("*.py")):
                if "__pycache__" in file_path.parts:
                    continue
                rel = file_path.relative_to(root).as_posix()
                if rel in exclude:
                    continue
                sources[rel] = file_path.read_text()
        return cls.from_sources(sources)

    @staticmethod
    def _module_name(path: str) -> str:
        parts = path[:-3].split("/")          # strip ".py"
        if parts and parts[0] == "src":
            parts = parts[1:]
        if parts and parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def _add_module(self, path: str, source: str) -> None:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return
        self.files.append(path)
        module = self._module_name(path)
        self.module_funcs.setdefault(path, {})
        self.module_classes.setdefault(path, {})
        self.imports.setdefault(path, {})
        self.from_imports.setdefault(path, {})

        for node in tree.body:
            self._add_toplevel(path, module, node)

    def _add_toplevel(self, path: str, module: str, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                self.imports[path][local] = (alias.name if alias.asname
                                             else alias.name.split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            target = self._resolve_from(module, node)
            if target is None:
                return
            for alias in node.names:
                local = alias.asname or alias.name
                self.from_imports[path][local] = (target, alias.name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self._add_function(path, module, None, node)
        elif isinstance(node, ast.ClassDef):
            self._add_class(path, module, node)

    @staticmethod
    def _resolve_from(module: str, node: ast.ImportFrom) -> str | None:
        if node.level == 0:
            return node.module
        parts = module.split(".")
        if node.level > len(parts):
            return None
        base = parts[:len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def _add_function(self, path: str, module: str, class_name: str | None,
                      node) -> FunctionInfo:
        args = node.args
        params = tuple(a.arg for a in args.posonlyargs + args.args
                       + args.kwonlyargs)
        qual = (f"{path}::{class_name}.{node.name}" if class_name
                else f"{path}::{node.name}")
        info = FunctionInfo(
            qual=qual, path=path, module=module, class_name=class_name,
            name=node.name, node=node, params=params,
            vararg=args.vararg.arg if args.vararg else None,
            kwarg=args.kwarg.arg if args.kwarg else None,
            lineno=node.lineno)
        self.functions[qual] = info
        if class_name is None:
            self.module_funcs[path][node.name] = qual
        return info

    def _add_class(self, path: str, module: str, node: ast.ClassDef) -> None:
        key = f"{path}::{node.name}"
        is_dataclass = any(
            (isinstance(d, ast.Name) and d.id == "dataclass")
            or (isinstance(d, ast.Attribute) and d.attr == "dataclass")
            or (isinstance(d, ast.Call) and _dotted(d.func) is not None
                and _dotted(d.func)[-1] == "dataclass")
            for d in node.decorator_list)
        fields: list[str] = []
        methods: dict[str, str] = {}
        has_init = False
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._add_function(path, module, node.name, item)
                methods[item.name] = info.qual
                self.methods_by_name.setdefault(item.name, []).append(
                    info.qual)
                if item.name == "__init__":
                    has_init = True
            elif (is_dataclass and isinstance(item, ast.AnnAssign)
                    and isinstance(item.target, ast.Name)):
                fields.append(item.target.id)
        self.classes[key] = ClassInfo(
            name=node.name, path=path, methods=methods,
            dataclass_fields=tuple(fields), has_init=has_init)
        self.classes_by_name.setdefault(node.name, []).append(key)
        self.module_classes[path][node.name] = key

    # -- call resolution ---------------------------------------------------

    def _lookup_symbol(self, path: str, name: str):
        """Resolve a bare name in ``path`` to ('func'|'class', key)."""
        qual = self.module_funcs.get(path, {}).get(name)
        if qual is not None:
            return ("func", qual)
        ckey = self.module_classes.get(path, {}).get(name)
        if ckey is not None:
            return ("class", ckey)
        imported = self.from_imports.get(path, {}).get(name)
        if imported is not None:
            target_module, orig = imported
            target_path = self._path_for_module(target_module)
            if target_path is not None:
                return self._lookup_symbol(target_path, orig)
        return None

    def _path_for_module(self, module: str) -> str | None:
        for path in self.files:
            if self._module_name(path) == module:
                return path
        return None

    def resolve_call(self, func: ast.AST, path: str,
                     class_name: str | None):
        """Resolve a call's func expression.

        Returns a list of ``('func'|'class', key)`` targets; empty means
        unresolved (the engine then propagates argument tags).
        """
        if isinstance(func, ast.Name):
            hit = self._lookup_symbol(path, func.id)
            return [hit] if hit is not None else []
        dotted = _dotted(func)
        if dotted is None:
            return []
        if dotted[0] == "self" and class_name is not None and len(dotted) == 2:
            ckey = self.module_classes.get(path, {}).get(class_name)
            if ckey is not None:
                qual = self.classes[ckey].methods.get(dotted[1])
                if qual is not None:
                    return [("func", qual)]
        if len(dotted) == 2:
            # module alias attr (import repro.x as y; y.f()).
            target = self.imports.get(path, {}).get(dotted[0])
            if target is not None:
                target_path = self._path_for_module(target)
                if target_path is not None:
                    hit = self._lookup_symbol(target_path, dotted[1])
                    if hit is not None:
                        return [hit]
            # from-imported class used as Cls.method receiver.
            hit = self._lookup_symbol(path, dotted[0])
            if hit is not None and hit[0] == "class":
                qual = self.classes[hit[1]].methods.get(dotted[1])
                if qual is not None:
                    return [("func", qual)]
        # Fallback: any class in the program defining this method name.
        method_quals = self.methods_by_name.get(dotted[-1], [])
        return [("func", q) for q in sorted(method_quals)]


# ---------------------------------------------------------------------------
# Summaries and results
# ---------------------------------------------------------------------------

@dataclass
class FunctionSummary:
    """Monotone transfer facts for one function."""

    returns: frozenset = BOTTOM          # concrete tags always returned
    return_params: frozenset = BOTTOM    # {int}: params flowing to return
    # {param index -> {(sink kind, witness chain)}}
    sink_params: dict = field(default_factory=dict)
    # {param index -> {witness chain}} for tainted-branch-near-sink
    branch_params: dict = field(default_factory=dict)
    # {(attr name, param index)} stored into object attributes
    attr_stores: frozenset = BOTTOM

    def merge(self, other: "FunctionSummary") -> bool:
        """Join ``other`` in; True if anything grew."""
        changed = False
        if not other.returns <= self.returns:
            self.returns = self.returns | other.returns
            changed = True
        if not other.return_params <= self.return_params:
            self.return_params = self.return_params | other.return_params
            changed = True
        for idx, hits in other.sink_params.items():
            if not hits or hits <= self.sink_params.get(idx, set()):
                continue
            self.sink_params.setdefault(idx, set()).update(hits)
            changed = True
        for idx, hits in other.branch_params.items():
            if not hits or hits <= self.branch_params.get(idx, set()):
                continue
            self.branch_params.setdefault(idx, set()).update(hits)
            changed = True
        if not other.attr_stores <= self.attr_stores:
            self.attr_stores = self.attr_stores | other.attr_stores
            changed = True
        return changed

    def as_dict(self) -> dict:
        return {
            "returns": sorted(map(str, self.returns)),
            "return_params": sorted(self.return_params),
            "sink_params": {str(i): sorted(map(str, hits))
                            for i, hits in sorted(self.sink_params.items())},
            "branch_params": {str(i): sorted(map(str, hits))
                              for i, hits
                              in sorted(self.branch_params.items())},
            "attr_stores": sorted(map(str, self.attr_stores)),
        }


@dataclass(frozen=True)
class CallContext:
    """What a client sees about one call site."""

    path: str
    line: int
    col: int
    dotted: tuple[str, ...] | None     # flattened func expr, if any
    name: str | None                   # last dotted component
    resolved: tuple[str, ...]          # resolved function quals
    arg_tags: tuple[frozenset, ...]    # positional argument tags
    receiver_tags: frozenset           # tags of the method receiver
    all_tags: frozenset                # join of everything
    enclosing_class: str | None
    enclosing_qual: str


class DataflowClient:
    """Default no-op client; subclass and override."""

    SINK_RULE = "SINK"
    BRANCH_RULE = "BRANCH"
    secret_tags: frozenset = BOTTOM
    branch_sink_kinds: frozenset = frozenset()
    untainting_builtins: frozenset = DEFAULT_UNTAINTING_BUILTINS

    def transform_call(self, ctx: CallContext):
        """Tag set for sources/sanitizers, or None for default flow."""
        return None

    def sink_kind(self, ctx: CallContext):
        """Sink kind label for this call, or None."""
        return None

    def attr_source(self, attr: str) -> frozenset:
        """Tags intrinsically carried by reads of attribute ``attr``."""
        return BOTTOM

    def storable_tags(self, tags: frozenset) -> frozenset:
        """Filter tags before they enter the global attribute map.

        Lets a client keep shallow tags (e.g. key *addresses*) out of
        the name-joined attribute store, where they would otherwise
        bleed into every same-named attribute program-wide.
        """
        return tags


@dataclass(frozen=True)
class Violation:
    rule: str
    path: str
    line: int
    col: int
    sink: str
    message: str
    chain: tuple[str, ...]

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule, self.sink)

    def as_dict(self) -> dict:
        return {"rule": self.rule, "path": self.path, "line": self.line,
                "col": self.col, "sink": self.sink,
                "message": self.message, "chain": list(self.chain)}


@dataclass(frozen=True)
class SinkSite:
    kind: str
    path: str
    line: int
    col: int


@dataclass
class DataflowResult:
    violations: tuple[Violation, ...]
    sink_sites: tuple[SinkSite, ...]
    summaries: dict
    attr_tags: dict
    rounds: int
    files: tuple[str, ...]


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------

class DataflowEngine:
    def __init__(self, program: Program, client: DataflowClient) -> None:
        self.program = program
        self.client = client
        self.summaries: dict[str, FunctionSummary] = {
            qual: FunctionSummary() for qual in program.functions}
        self.attr_tags: dict[str, frozenset] = {}
        self._violations: list[Violation] = []
        self._sink_sites: set[SinkSite] = set()
        self._collect = False

    # -- public ------------------------------------------------------------

    def run(self) -> DataflowResult:
        rounds = 0
        for rounds in range(1, MAX_ROUNDS + 1):
            if not self._one_round():
                break
        self._collect = True
        self._violations = []
        self._sink_sites = set()
        self._one_round()
        self._collect = False
        seen = set()
        unique = []
        for v in sorted(self._violations, key=Violation.sort_key):
            key = v.sort_key()
            if key not in seen:
                seen.add(key)
                unique.append(v)
        return DataflowResult(
            violations=tuple(unique),
            sink_sites=tuple(sorted(
                self._sink_sites,
                key=lambda s: (s.path, s.line, s.col, s.kind))),
            summaries=self.summaries,
            attr_tags=dict(self.attr_tags),
            rounds=rounds,
            files=tuple(self.program.files))

    # -- fixpoint ----------------------------------------------------------

    def _one_round(self) -> bool:
        changed = False
        for qual in sorted(self.program.functions):
            info = self.program.functions[qual]
            summary = _FunctionPass(self, info).run()
            if self.summaries[qual].merge(summary):
                changed = True
        return changed

    def _join_attr(self, attr: str, tags: frozenset) -> None:
        if not tags:
            return
        have = self.attr_tags.get(attr, BOTTOM)
        if not tags <= have:
            self.attr_tags[attr] = have | tags

    def _emit(self, rule: str, path: str, line: int, col: int,
              sink: str, message: str, chain: tuple[str, ...]) -> None:
        if self._collect:
            self._violations.append(Violation(
                rule=rule, path=path, line=line, col=col, sink=sink,
                message=message, chain=chain[:MAX_CHAIN_DEPTH]))

    def _site(self, kind: str, path: str, line: int, col: int) -> None:
        if self._collect:
            self._sink_sites.add(SinkSite(kind, path, line, col))


class _FunctionPass:
    """One abstract-interpretation pass over a single function body."""

    def __init__(self, engine: DataflowEngine, info: FunctionInfo) -> None:
        self.engine = engine
        self.program = engine.program
        self.client = engine.client
        self.info = info
        self.summary = FunctionSummary()
        self.env: dict[str, frozenset] = {}
        params = list(info.params)
        if info.vararg:
            params.append(info.vararg)
        if info.kwarg:
            params.append(info.kwarg)
        self.all_params = params
        for index, name in enumerate(params):
            self.env[name] = frozenset({("param", index)})

    def run(self) -> FunctionSummary:
        body = self.info.node.body
        # Two passes over the body cover intra-function back edges
        # (a variable assigned inside a loop and read earlier).
        for _ in range(2):
            self._block(body)
        return self.summary

    # -- statements --------------------------------------------------------

    def _block(self, stmts) -> None:
        for stmt in stmts:
            self._stmt(stmt)

    def _stmt(self, node) -> None:
        if isinstance(node, ast.Assign):
            tags = self._eval(node.value)
            for target in node.targets:
                self._bind(target, tags)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None:
                self._bind(node.target, self._eval(node.value))
        elif isinstance(node, ast.AugAssign):
            tags = self._eval(node.value)
            if isinstance(node.target, ast.Name):
                self._bind(node.target, tags)
            else:
                self._bind(node.target, tags)
        elif isinstance(node, ast.Return):
            if node.value is not None:
                tags = self._eval(node.value)
                self.summary.returns |= _concrete(tags)
                self.summary.return_params |= frozenset(_param_indices(tags))
        elif isinstance(node, ast.Expr):
            self._mutator(node.value)
            self._eval(node.value)
        elif isinstance(node, (ast.If, ast.While)):
            self._branch(node)
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            self._bind(node.target, self._eval(node.iter))
            self._block(node.body)
            self._block(node.orelse)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                tags = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._bind(item.optional_vars, tags)
            self._block(node.body)
        elif isinstance(node, ast.Try):
            self._block(node.body)
            for handler in node.handlers:
                if handler.name:
                    self.env.setdefault(handler.name, BOTTOM)
                self._block(handler.body)
            self._block(node.orelse)
            self._block(node.finalbody)
        elif isinstance(node, ast.Raise):
            self._raise(node)
        elif isinstance(node, ast.Assert):
            self._eval(node.test)
        # Nested defs/classes and imports are intentionally skipped:
        # closures are out of scope (documented limitation).

    def _bind(self, target, tags: frozenset) -> None:
        if isinstance(target, ast.Name):
            # Weak update: joins are monotone across the double pass and
            # keep loop-carried taint; a lost strong update only ever
            # over-approximates.
            self.env[target.id] = self.env.get(target.id, BOTTOM) | tags
        elif isinstance(target, ast.Attribute):
            conc = self.client.storable_tags(_concrete(tags))
            if conc:
                self.engine._join_attr(target.attr, conc)
            for index in _param_indices(tags):
                self.summary.attr_stores |= {(target.attr, index)}
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, tags)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, tags)
        # Subscript targets deliberately untracked (see module docstring).

    def _mutator(self, node) -> None:
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
                and isinstance(node.func.value, ast.Name)):
            return
        tags = SetLattice.join(*[self._eval(a) for a in node.args], BOTTOM)
        tags |= SetLattice.join(
            *[self._eval(k.value) for k in node.keywords], BOTTOM)
        if tags:
            name = node.func.value.id
            self.env[name] = self.env.get(name, BOTTOM) | tags

    def _branch(self, node) -> None:
        test_tags = self._eval(node.test)
        secret = _concrete(test_tags) & self.client.secret_tags
        params = _param_indices(test_tags)
        if (secret or params) and self._has_branch_sink(node.body + node.orelse):
            site = f"{self.info.path}:{node.lineno}"
            if secret:
                self.engine._emit(
                    self.client.BRANCH_RULE, self.info.path,
                    node.lineno, node.col_offset, "branch",
                    "secret-tagged value decides a branch whose outcome "
                    "is telemetered (timing-shaped leak)",
                    (site,))
            for index in params:
                hits = self.summary.branch_params.setdefault(index, set())
                hits.add((site,))
        self._block(node.body)
        self._block(node.orelse)

    def _has_branch_sink(self, stmts) -> bool:
        for stmt in stmts:
            for node in ast.walk(stmt):
                if not isinstance(node, ast.Call):
                    continue
                ctx = self._call_context(node, evaluate=False)
                kind = self.client.sink_kind(ctx)
                if kind in self.client.branch_sink_kinds:
                    return True
        return False

    def _raise(self, node) -> None:
        if not isinstance(node.exc, ast.Call):
            return
        tags = SetLattice.join(
            *[self._eval(a) for a in node.exc.args], BOTTOM)
        tags |= SetLattice.join(
            *[self._eval(k.value) for k in node.exc.keywords], BOTTOM)
        secret = _concrete(tags) & self.client.secret_tags
        site = f"{self.info.path}:{node.lineno}"
        if secret:
            self.engine._emit(
                self.client.SINK_RULE, self.info.path, node.lineno,
                node.col_offset, "exception",
                "secret-tagged value flows into exception text",
                (site,))
        for index in _param_indices(tags):
            hits = self.summary.sink_params.setdefault(index, set())
            hits.add(("exception", (site,)))

    # -- expressions -------------------------------------------------------

    def _eval(self, node) -> frozenset:
        if node is None:
            return BOTTOM
        if isinstance(node, ast.Name):
            return self.env.get(node.id, BOTTOM)
        if isinstance(node, ast.Constant):
            return BOTTOM
        if isinstance(node, ast.Attribute):
            return (self.engine.attr_tags.get(node.attr, BOTTOM)
                    | self.client.attr_source(node.attr))
        if isinstance(node, ast.Subscript):
            return self._eval(node.value)
        if isinstance(node, ast.Call):
            return self._call(node)
        if isinstance(node, ast.BinOp):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.BoolOp):
            return SetLattice.join(*[self._eval(v) for v in node.values])
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            return SetLattice.join(
                self._eval(node.left),
                *[self._eval(c) for c in node.comparators])
        if isinstance(node, ast.IfExp):
            return (self._eval(node.test) | self._eval(node.body)
                    | self._eval(node.orelse))
        if isinstance(node, ast.JoinedStr):
            return SetLattice.join(*[self._eval(v) for v in node.values],
                                   BOTTOM)
        if isinstance(node, ast.FormattedValue):
            return self._eval(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return SetLattice.join(*[self._eval(e) for e in node.elts],
                                   BOTTOM)
        if isinstance(node, ast.Dict):
            return SetLattice.join(
                *[self._eval(k) for k in node.keys if k is not None],
                *[self._eval(v) for v in node.values], BOTTOM)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for gen in node.generators:
                self._bind(gen.target, self._eval(gen.iter))
            return self._eval(node.elt)
        if isinstance(node, ast.DictComp):
            for gen in node.generators:
                self._bind(gen.target, self._eval(gen.iter))
            return self._eval(node.key) | self._eval(node.value)
        if isinstance(node, ast.Await):
            return self._eval(node.value)
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, ast.NamedExpr):
            tags = self._eval(node.value)
            self._bind(node.target, tags)
            return tags
        if isinstance(node, ast.Lambda):
            return BOTTOM
        return BOTTOM

    # -- calls -------------------------------------------------------------

    def _call_context(self, node: ast.Call,
                      evaluate: bool = True) -> CallContext:
        dotted = _dotted(node.func)
        if dotted:
            name = dotted[-1]
        elif isinstance(node.func, ast.Attribute):
            # Method on a non-dotted receiver (e.g. a call result):
            # sanitizer/source matching still needs the method name.
            name = node.func.attr
        else:
            name = None
        if evaluate:
            arg_tags = tuple(self._eval(a) for a in node.args)
            kw_tags = tuple(self._eval(k.value) for k in node.keywords)
            receiver_tags = (self._eval(node.func.value)
                             if isinstance(node.func, ast.Attribute)
                             else BOTTOM)
        else:
            arg_tags = ()
            kw_tags = ()
            receiver_tags = BOTTOM
        targets = self.program.resolve_call(
            node.func, self.info.path, self.info.class_name)
        resolved = tuple(sorted(
            key for kind, key in targets if kind == "func"))
        return CallContext(
            path=self.info.path, line=node.lineno, col=node.col_offset,
            dotted=dotted, name=name, resolved=resolved,
            arg_tags=arg_tags,
            receiver_tags=receiver_tags,
            all_tags=SetLattice.join(*arg_tags, *kw_tags, receiver_tags),
            enclosing_class=self.info.class_name,
            enclosing_qual=self.info.qual)

    def _call(self, node: ast.Call) -> frozenset:
        ctx = self._call_context(node)
        # 1. Shape builtins never propagate content.
        if (isinstance(node.func, ast.Name)
                and node.func.id in self.client.untainting_builtins):
            return BOTTOM
        # 2. Client sources and sanitizers win outright.
        transformed = self.client.transform_call(ctx)
        if transformed is not None:
            return frozenset(transformed)
        # 3. Sink classification (the call still produces a value).
        kind = self.client.sink_kind(ctx)
        if kind is not None:
            self._apply_sink(node, ctx, kind)
        # 4. Resolved targets: apply summaries.
        targets = self.program.resolve_call(
            node.func, self.info.path, self.info.class_name)
        if targets:
            return self._apply_targets(node, ctx, targets)
        # 5. Unresolved: conservative join of everything flowing in.
        return ctx.all_tags

    def _apply_sink(self, node: ast.Call, ctx: CallContext,
                    kind: str) -> None:
        self.engine._site(kind, ctx.path, ctx.line, ctx.col)
        site = f"{ctx.path}:{ctx.line}"
        secret = _concrete(ctx.all_tags) & self.client.secret_tags
        if secret:
            self.engine._emit(
                self.client.SINK_RULE, ctx.path, ctx.line, ctx.col, kind,
                f"secret-tagged value reaches {kind} sink "
                f"{'.'.join(ctx.dotted) if ctx.dotted else '<call>'}()",
                (site,))
        for index in _param_indices(ctx.all_tags):
            hits = self.summary.sink_params.setdefault(index, set())
            hits.add((kind, (site,)))

    def _map_args(self, node: ast.Call, ctx: CallContext,
                  info: FunctionInfo, self_tags: frozenset | None):
        """Map call-site tags onto callee parameter indices."""
        param_tags: dict[int, frozenset] = {}
        params = list(info.params)
        if info.vararg:
            params.append(info.vararg)
        if info.kwarg:
            params.append(info.kwarg)
        offset = 0
        if info.is_method and info.params and info.params[0] == "self":
            offset = 1
            if self_tags:
                param_tags[0] = self_tags
        starred = BOTTOM
        pos = offset
        for arg, tags in zip(node.args, ctx.arg_tags):
            if isinstance(arg, ast.Starred):
                starred |= tags
                continue
            if pos < len(info.params):
                param_tags[pos] = param_tags.get(pos, BOTTOM) | tags
            elif info.vararg:
                index = params.index(info.vararg)
                param_tags[index] = param_tags.get(index, BOTTOM) | tags
            pos += 1
        name_to_index = {name: i for i, name in enumerate(params)}
        for kw in node.keywords:
            tags = self._eval(kw.value)
            if kw.arg is None:
                starred |= tags
                continue
            if kw.arg in name_to_index:
                index = name_to_index[kw.arg]
            elif info.kwarg:
                index = name_to_index[info.kwarg]
            else:
                continue
            param_tags[index] = param_tags.get(index, BOTTOM) | tags
        if starred:
            for index in range(len(params)):
                if index == 0 and offset:
                    continue
                param_tags[index] = param_tags.get(index, BOTTOM) | starred
        return param_tags

    def _apply_summary(self, node: ast.Call, ctx: CallContext,
                       qual: str, self_tags: frozenset | None) -> frozenset:
        info = self.program.functions[qual]
        summary = self.engine.summaries[qual]
        param_tags = self._map_args(node, ctx, info, self_tags)
        result = frozenset(summary.returns)
        for index in summary.return_params:
            result |= param_tags.get(index, BOTTOM)
        site = f"{ctx.path}:{ctx.line}"
        for index, hits in summary.sink_params.items():
            tags = param_tags.get(index, BOTTOM)
            if not tags:
                continue
            secret = _concrete(tags) & self.client.secret_tags
            for kind, chain in sorted(hits):
                extended = (site,) + tuple(chain)
                if len(extended) > MAX_CHAIN_DEPTH:
                    extended = extended[:MAX_CHAIN_DEPTH]
                if secret:
                    self.engine._emit(
                        self.client.SINK_RULE, ctx.path, ctx.line,
                        ctx.col, kind,
                        f"secret-tagged argument flows through "
                        f"{info.name}() into a {kind} sink",
                        extended)
                for caller_index in _param_indices(tags):
                    mine = self.summary.sink_params.setdefault(
                        caller_index, set())
                    mine.add((kind, extended))
        for index, hits in summary.branch_params.items():
            tags = param_tags.get(index, BOTTOM)
            if not tags:
                continue
            secret = _concrete(tags) & self.client.secret_tags
            for chain in sorted(hits):
                extended = ((site,) + tuple(chain))[:MAX_CHAIN_DEPTH]
                if secret:
                    self.engine._emit(
                        self.client.BRANCH_RULE, ctx.path, ctx.line,
                        ctx.col, "branch",
                        f"secret-tagged argument decides a telemetered "
                        f"branch inside {info.name}()",
                        extended)
                for caller_index in _param_indices(tags):
                    mine = self.summary.branch_params.setdefault(
                        caller_index, set())
                    mine.add(extended)
        for attr, index in summary.attr_stores:
            tags = param_tags.get(index, BOTTOM)
            conc = self.client.storable_tags(_concrete(tags))
            if conc:
                self.engine._join_attr(attr, conc)
            for caller_index in _param_indices(tags):
                self.summary.attr_stores |= {(attr, caller_index)}
        return result

    def _apply_targets(self, node: ast.Call, ctx: CallContext,
                       targets) -> frozenset:
        result = BOTTOM
        for kind, key in targets:
            if kind == "func":
                info = self.program.functions[key]
                self_tags = ctx.receiver_tags if info.is_method else None
                result |= self._apply_summary(node, ctx, key, self_tags)
            else:
                result |= self._construct(node, ctx, key)
        return result

    def _construct(self, node: ast.Call, ctx: CallContext,
                   class_key: str) -> frozenset:
        """Constructors apply field effects and return a clean object."""
        cls = self.program.classes[class_key]
        if cls.has_init:
            init_qual = cls.methods["__init__"]
            self._apply_summary(node, ctx, init_qual, BOTTOM)
            return BOTTOM
        if cls.dataclass_fields:
            fields = cls.dataclass_fields
            pos = 0
            for arg, tags in zip(node.args, ctx.arg_tags):
                if isinstance(arg, ast.Starred):
                    continue
                if pos < len(fields):
                    self._field_store(fields[pos], tags)
                pos += 1
            for kw in node.keywords:
                if kw.arg is not None and kw.arg in fields:
                    self._field_store(kw.arg, self._eval(kw.value))
        return BOTTOM

    def _field_store(self, attr: str, tags: frozenset) -> None:
        conc = self.client.storable_tags(_concrete(tags))
        if conc:
            self.engine._join_attr(attr, conc)
        for index in _param_indices(tags):
            self.summary.attr_stores |= {(attr, index)}


def analyze_program(program: Program,
                    client: DataflowClient) -> DataflowResult:
    """Run the interprocedural fixpoint and one reporting pass."""
    return DataflowEngine(program, client).run()
