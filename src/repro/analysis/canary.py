"""Dynamic key-confidentiality check: the canary leak-hunt.

The static analyzer (:mod:`repro.analysis.taint`) has documented blind
spots -- subscript stores, module-global caches, closures -- so the
confidentiality claim is cross-checked *dynamically*, in the spirit of
the invariant verifier's static-vs-dynamic gate: provision a fleet and
a service tier with a high-entropy canary master key, run real
attestation rounds, then scan every serialized artifact (registry
dumps, merged traces, snapshot documents minus blob payloads, session
summaries, service request records) for any encoding of the master or
per-device keys (hex in both cases, base64, ``repr`` of the bytes).

The snapshot *blob payloads* are the one declared policy sink (the
simulated memory legitimately contains ``K_Attest``), so they are
elided from the scan -- and then decoded and scanned for the raw key
bytes as a *control*: the hunt must find the key exactly where the
policy says it lives, proving the scanner is sharp enough for its
verdict on everything else to mean something.

``leak=True`` plants a deliberate telemetry-event leak (the key's hex
in a trace payload) so the smoke test can verify the hunt and the
static analyzer agree on seeded trees too.
"""

from __future__ import annotations

import base64
import json
from dataclasses import dataclass

__all__ = ["CANARY_MASTER_KEY", "CanaryHit", "CanaryReport",
           "needles_for_key", "scan_text", "run_canary_hunt"]

#: A fixed high-entropy 16-byte master key (not derivable from any
#: string the artifacts would naturally contain).
CANARY_MASTER_KEY = bytes.fromhex("9f3ac81d5e72640bd1c7a9558e02f4b6")


def needles_for_key(label: str, key: bytes) -> dict[str, str]:
    """Every textual encoding of ``key`` the scan looks for."""
    return {
        f"{label}/hex": key.hex(),
        f"{label}/HEX": key.hex().upper(),
        f"{label}/base64": base64.b64encode(key).decode("ascii"),
        f"{label}/repr": repr(key),
    }


def scan_text(artifact: str, text: str,
              needles: dict[str, str]) -> list["CanaryHit"]:
    hits = []
    for label, needle in sorted(needles.items()):
        if needle in text:
            hits.append(CanaryHit(artifact=artifact, needle=label))
    return hits


@dataclass(frozen=True)
class CanaryHit:
    artifact: str
    needle: str


@dataclass(frozen=True)
class CanaryReport:
    leak_planted: bool
    artifacts_scanned: tuple[str, ...]
    hits: tuple[CanaryHit, ...]
    control_hit: bool        # raw key found inside decoded blob payloads

    @property
    def clean(self) -> bool:
        return not self.hits

    def as_dict(self) -> dict:
        return {
            "leak_planted": self.leak_planted,
            "artifacts_scanned": list(self.artifacts_scanned),
            "hits": [{"artifact": h.artifact, "needle": h.needle}
                     for h in self.hits],
            "control_hit": self.control_hit,
            "clean": self.clean,
        }


def _scrub_blobs(document: dict) -> tuple[str, dict]:
    """Canonical JSON of a snapshot doc minus blob payloads + the blobs."""
    blobs = document.get("blobs", {})
    scrubbed = {key: value for key, value in document.items()
                if key != "blobs"}
    scrubbed["blobs"] = sorted(blobs)       # fingerprints stay visible
    return json.dumps(scrubbed, sort_keys=True, default=repr), blobs


def run_canary_hunt(*, size: int = 3, sweeps: int = 2, waves: int = 2,
                    leak: bool = False,
                    master_key: bytes = CANARY_MASTER_KEY) -> CanaryReport:
    """Provision, attest, serialize, scan.  Deterministic throughout."""
    from ..crypto.kdf import derive_device_key
    from ..services.attestd import AttestationService, build_schedule
    from ..services.swarm import Swarm

    needles: dict[str, str] = {}
    needles.update(needles_for_key("master", master_key))
    raw_keys = [master_key]
    for index in range(size):
        device_id = f"device-{index:03d}"
        device_key = derive_device_key(master_key, device_id)
        needles.update(needles_for_key(device_id, device_key))
        raw_keys.append(device_key)

    swarm = Swarm(size, master_key=master_key, observe=True,
                  seed="canary")
    for _ in range(sweeps):
        swarm.sweep()
    if leak:
        # The seeded failure mode: raw key hex in a trace payload, the
        # exact shape KEY001 flags statically on the leaky fixture.
        session = swarm.members[0].session
        session.telemetry.event("monitor-event", session.sim.now,
                                note=session.key.hex())

    service = AttestationService(size, tenants=1, backends=2,
                                 master_key=master_key, seed="canary-svc")
    records = service.serve_schedule(
        build_schedule(size, waves=waves, seed="canary-load"))

    artifacts: dict[str, str] = {}
    artifacts["swarm-registry"] = json.dumps(
        swarm.merged_registry().dump(), sort_keys=True, default=repr)
    artifacts["swarm-trace"] = "\n".join(
        json.dumps(record, sort_keys=True, default=repr)
        for record in swarm.merged_trace_records())
    artifacts["swarm-summaries"] = json.dumps(
        [member.session.summary() for member in swarm.members],
        sort_keys=True, default=repr)
    swarm_doc_text, swarm_blobs = _scrub_blobs(swarm.snapshot())
    artifacts["swarm-snapshot"] = swarm_doc_text
    artifacts["service-registry"] = json.dumps(
        service.merged_registry().dump(), sort_keys=True, default=repr)
    artifacts["service-records"] = "\n".join(repr(r) for r in records)
    artifacts["service-freshness"] = json.dumps(
        service.freshness_fingerprint(), sort_keys=True, default=repr)
    service_doc_text, service_blobs = _scrub_blobs(service.snapshot())
    artifacts["service-snapshot"] = service_doc_text

    hits: list[CanaryHit] = []
    for name in sorted(artifacts):
        hits.extend(scan_text(name, artifacts[name], needles))

    # Control: the decoded blob payloads MUST contain the raw device
    # keys (region images hold K_Attest by design); base64 is decoded
    # first so alignment can't hide the needle.
    control_hit = False
    for blobs in (swarm_blobs, service_blobs):
        for payload in blobs.values():
            raw = base64.b64decode(payload)
            if any(key in raw for key in raw_keys[1:]):
                control_hit = True
                break
        if control_hit:
            break

    return CanaryReport(
        leak_planted=leak,
        artifacts_scanned=tuple(sorted(artifacts)),
        hits=tuple(hits),
        control_hit=control_hit)
