"""The roaming adversary ``Adv_roam`` (Sections 3.2 and 5).

Three phases, implemented literally against a live session:

* **Phase I** -- eavesdrop: read genuine attestation requests off the
  channel transcript.
* **Phase II** -- compromise: run malware on the prover.  The malware
  *attempts* every preparation the paper describes -- extract
  ``K_Attest``, roll the stored counter back, reset the clock, stop the
  SW-clock by rewriting the IDT or masking the wrap interrupt -- and
  records which attempts the hardware allowed.  It then erases itself by
  restoring an exact snapshot of the memory it touched ("covers its
  tracks").
* **Phase III** -- replay: after waiting, inject the recorded request.

The outcome object reports whether the DoS succeeded (the prover
performed attestation for the replayed request) and whether the attack is
*detectable after the fact* -- the paper's subtle point that the counter
rollback restores the prover to its expected state while the clock reset
leaves the clock behind.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.messages import AttestationRequest
from ..core.protocol import Session
from ..errors import DeviceError, EntryPointViolation, MemoryAccessViolation
from ..mcu.device import Device
from .external import ReplayAttacker

__all__ = ["CompromiseReport", "RoamingOutcome", "RoamingAdversary"]


@dataclass
class CompromiseReport:
    """What Phase II malware managed to do before erasing itself."""

    key_extracted: bool = False
    stolen_key: bytes | None = None
    key_extracted_via_code_reuse: bool = False
    counter_rolled_back: bool = False
    clock_reset: bool = False
    idt_redirected: bool = False
    irq_masked: bool = False
    denied: list[str] = field(default_factory=list)

    @property
    def any_success(self) -> bool:
        return (self.key_extracted or self.key_extracted_via_code_reuse
                or self.counter_rolled_back or self.clock_reset
                or self.idt_redirected or self.irq_masked)


@dataclass
class RoamingOutcome:
    """End-to-end result of a three-phase roaming attack."""

    strategy: str                      # "counter-rollback" | "clock-reset"
    compromise: CompromiseReport = field(default_factory=CompromiseReport)
    replay_accepted: bool = False
    prover_wasted_cycles: int = 0
    clock_left_behind: bool = False
    state_digest_clean: bool = True

    @property
    def dos_succeeded(self) -> bool:
        return self.replay_accepted

    @property
    def detectable_after_fact(self) -> bool:
        """Evidence remains on the prover after Phase III.

        Section 5: the clock reset "leaves some evidence of the attack
        since the prover's clock remains behind", whereas the counter
        rollback is "undetectable after the fact".
        """
        return self.clock_left_behind or not self.state_digest_clean


class RoamingAdversary:
    """Drives the three phases against a :class:`Session`."""

    def __init__(self, session: Session, *, malware_size: int = 2048):
        self.session = session
        self.device: Device = session.device
        self.replayer = ReplayAttacker(session.channel, session.sim)
        self.malware_size = malware_size
        self._recorded: AttestationRequest | None = None

    # ------------------------------------------------------------------
    # Phase I
    # ------------------------------------------------------------------

    def phase1_eavesdrop(self) -> AttestationRequest:
        """Pick the latest genuine request from the channel transcript."""
        recorded = self.replayer.recorded_requests()
        if not recorded:
            raise LookupError("Phase I found no genuine attestation request")
        self._recorded = recorded[-1]
        return self._recorded

    # ------------------------------------------------------------------
    # Phase II
    # ------------------------------------------------------------------

    def phase2_compromise(self, strategy: str) -> CompromiseReport:
        """Infect the prover, prepare the replay, erase all traces.

        ``strategy`` selects the freshness-state manipulation:
        ``"counter-rollback"`` (Section 5's counter attack),
        ``"clock-reset"`` (the timestamp attack), or ``"key-extract"``
        (no freshness manipulation -- the key-forgery path).  Key
        extraction and, for SW-clock devices, interrupt sabotage are
        attempted opportunistically and recorded either way.
        """
        if self._recorded is None:
            raise LookupError("run phase1_eavesdrop first")
        device = self.device
        report = CompromiseReport()
        malware = device.make_malware_context(
            f"malware-{strategy}", size=self.malware_size)

        # Malware occupies RAM: snapshot it so Phase II can end with an
        # exact restore ("erases all traces of its presence").
        ram_snapshot = device.ram.snapshot()
        device.ram.load(malware.code_start - device.ram.start,
                        b"\xEB" * self.malware_size)  # the infection itself

        # -- attempt: extract K_Attest -----------------------------------
        try:
            report.stolen_key = device.read_key(malware)
            report.key_extracted = True
        except MemoryAccessViolation:
            report.denied.append("read-key")

        # -- attempt: code-reuse jump into Code_Attest --------------------
        # Enter the trusted code past its validation prologue and use its
        # EA-MPU privileges to read the key (the Section 6.2 runtime
        # attack; blocked by entry-point enforcement).
        if not report.key_extracted:
            attest_ctx = device.context("Code_Attest")
            gadget = attest_ctx.code_start + 0x40   # mid-body address
            try:
                with device.cpu.running(attest_ctx, entry=gadget):
                    report.stolen_key = device.bus.read(
                        attest_ctx, device.key_address, 16)
                report.key_extracted_via_code_reuse = True
            except EntryPointViolation:
                report.denied.append("jump-into-code-attest")

        # -- attempt: the freshness-state manipulation --------------------
        if strategy == "counter-rollback":
            target = self._recorded.counter
            if target is None:
                raise LookupError("recorded request carries no counter")
            try:
                device.write_counter(malware, max(0, target - 1))
                report.counter_rolled_back = True
            except MemoryAccessViolation:
                report.denied.append("write-counter")
        elif strategy == "clock-reset":
            report.clock_reset = self._try_clock_reset(malware, report)
            # Also roll the stored freshness word back below the recorded
            # timestamp: a no-op against the paper's stateless window
            # check, but necessary against the monotonic extension (which
            # reuses counter_R for the last accepted timestamp).
            target_ticks = self._recorded.timestamp_ticks
            if target_ticks is not None:
                try:
                    self.device.write_counter(malware,
                                              max(0, target_ticks - 1))
                    report.counter_rolled_back = True
                except MemoryAccessViolation:
                    report.denied.append("write-counter")
        elif strategy == "key-extract":
            pass   # the key attempts above are the whole payload
        else:
            raise ValueError(f"unknown strategy {strategy!r}")

        # -- erase all traces ---------------------------------------------
        # Restore RAM exactly, except the words the attack deliberately
        # changed (the manipulation *is* the payload).
        self._restore_ram_except_manipulations(ram_snapshot, strategy)
        return report

    def _try_clock_reset(self, malware, report: CompromiseReport) -> bool:
        """Set the prover clock behind the recorded timestamp.

        The paper's Phase II: "re-sets the prover's clock to time
        t_i - delta".  On a wide-hardware-clock device that is a write to
        the clock register; on a SW-clock device the easy target is the
        ``Clock_MSB`` word (with IDT rewrite / IRQ masking as fallback
        sabotage that merely *stops* the clock).
        """
        device = self.device
        target_ticks = self._recorded.timestamp_ticks
        if target_ticks is None:
            raise LookupError("recorded request carries no timestamp")
        if device.clock is None:
            raise LookupError("device has no clock to reset")
        delta_ticks = device.clock.ticks_for_seconds(self.replay_wait_seconds)
        rewind_to = max(0, target_ticks - delta_ticks)

        if device.clock.kind == "hardware":
            base = device.clock_register_span[0]
            size = device.clock.counter.size_bytes
            try:
                with device.cpu.running(malware):
                    device.bus.write(malware, base,
                                     rewind_to.to_bytes(size, "little"))
                return True
            except (MemoryAccessViolation, DeviceError):
                report.denied.append("write-clock-register")
                return False

        # SW-clock: rewrite Clock_MSB.
        lsb_bits = device.clock.lsb_width_bits
        try:
            with device.cpu.running(malware):
                device.bus.write_u64(malware, device.clock_msb_address,
                                     rewind_to >> lsb_bits)
            return True
        except MemoryAccessViolation:
            report.denied.append("write-clock-msb")
        # Fallback sabotage: stop the clock via the IDT ...
        try:
            with device.cpu.running(malware):
                device.bus.write_u32(malware, device.idt_base,
                                     malware.code_start)
            report.idt_redirected = True
        except MemoryAccessViolation:
            report.denied.append("write-idt")
        # ... or by masking the wrap interrupt.
        try:
            from ..mcu.device import MMIO_BASE
            with device.cpu.running(malware):
                device.bus.write(malware, MMIO_BASE + 0x1100, b"\x00")
            report.irq_masked = True
        except MemoryAccessViolation:
            report.denied.append("mask-irq")
        return False

    def _restore_ram_except_manipulations(self, snapshot: bytes,
                                          strategy: str) -> None:
        """Write the snapshot back, preserving the attack's payload words."""
        device = self.device
        preserved: list[tuple[int, bytes]] = []
        for address, length in ((device.counter_address, 8),
                                (device.clock_msb_address, 8)):
            offset = address - device.ram.start
            preserved.append((offset, device.ram.raw_read(offset, length)))
        idt_offset = device.idt_base - device.ram.start
        preserved.append((idt_offset,
                          device.ram.raw_read(idt_offset,
                                              device.interrupts.idt_size)))
        device.ram.load(0, snapshot)
        for offset, data in preserved:
            device.ram.load(offset, data)

    # ------------------------------------------------------------------
    # Phase III
    # ------------------------------------------------------------------

    #: How long Phase III waits after Phase II before replaying (the
    #: paper's delta for the clock attack).
    replay_wait_seconds: float = 30.0

    def phase3_replay(self) -> None:
        if self._recorded is None:
            raise LookupError("nothing recorded to replay")
        self.replayer.replay(self._recorded, delay=self.replay_wait_seconds)

    def phase3_forge(self, stolen_key: bytes) -> AttestationRequest:
        """Forge a *fresh* authentic request with the stolen key.

        Section 5: "Adv_roam could extract Prv's K_Attest which would
        allow it to generate authentic attreq-s."  With the key, freshness
        defences are irrelevant -- the adversary stamps whatever counter or
        timestamp the prover will accept.  Only symmetric schemes are
        forgeable this way (with ECDSA the prover stores just the public
        key, which is worthless for signing -- though the paper rules
        ECDSA out on cost grounds anyway).
        """
        from ..core.authenticator import make_symmetric_authenticator
        from ..crypto.rng import DeterministicRng

        if self._recorded is None:
            raise LookupError("run phase1_eavesdrop first")
        recorded = self._recorded
        rng = DeterministicRng(b"forger")
        fields = {}
        if recorded.counter is not None:
            fields["counter"] = recorded.counter + 1_000
        if recorded.timestamp_ticks is not None:
            clock = self.device.clock
            fields["timestamp_ticks"] = clock.ticks_for_seconds(
                self.session.sim.now + self.replay_wait_seconds)
        if recorded.nonce is not None:
            fields["nonce"] = rng.bytes(len(recorded.nonce))
        request = AttestationRequest(
            challenge=rng.bytes(len(recorded.challenge)),
            auth_scheme=recorded.auth_scheme, **fields)
        authenticator = make_symmetric_authenticator(recorded.auth_scheme,
                                                     stolen_key)
        request = request.with_tag(
            authenticator.tag(request.signed_payload()))
        self.session.channel.inject(
            "prover", request, spoofed_sender="verifier",
            delay=self.replay_wait_seconds)
        return request

    # ------------------------------------------------------------------
    # Full attack with outcome analysis
    # ------------------------------------------------------------------

    def execute(self, strategy: str, *,
                golden_digest: bytes | None = None) -> RoamingOutcome:
        """Run all three phases and assess the result.

        ``strategy`` is ``"counter-rollback"``, ``"clock-reset"`` (both
        end in a replay) or ``"key-forgery"`` (Phase II only extracts the
        key; Phase III sends a freshly forged request).  Requires at
        least one genuine attestation to have crossed the channel already
        (Phase I needs something to record).
        """
        outcome = RoamingOutcome(strategy=strategy)
        self.phase1_eavesdrop()
        if strategy == "key-forgery":
            outcome.compromise = self.phase2_compromise("key-extract")
            accepted_before = self.session.anchor.stats.accepted
            cycles_before = self.device.cpu.cycle_count
            stolen = outcome.compromise.stolen_key
            if stolen is not None:
                self.phase3_forge(stolen)
            self.session.sim.run(
                until=self.session.sim.now + self.replay_wait_seconds + 10.0)
            outcome.replay_accepted = (
                self.session.anchor.stats.accepted > accepted_before)
            if outcome.replay_accepted:
                outcome.prover_wasted_cycles = (
                    self.device.cpu.cycle_count - cycles_before)
            outcome.clock_left_behind = self._clock_is_behind()
            if golden_digest is not None:
                current = self.device.digest_writable_memory(
                    self.device.context("Code_Attest"))
                outcome.state_digest_clean = current == golden_digest
            return outcome

        outcome.compromise = self.phase2_compromise(strategy)

        accepted_before = self.session.anchor.stats.accepted
        cycles_before = self.device.cpu.cycle_count
        self.phase3_replay()
        self.session.sim.run(
            until=self.session.sim.now + self.replay_wait_seconds + 10.0)

        outcome.replay_accepted = (
            self.session.anchor.stats.accepted > accepted_before)
        if outcome.replay_accepted:
            outcome.prover_wasted_cycles = (
                self.device.cpu.cycle_count - cycles_before)

        # -- after-the-fact forensics ------------------------------------
        outcome.clock_left_behind = self._clock_is_behind()
        if golden_digest is not None:
            current = self.device.digest_writable_memory(
                self.device.context("Code_Attest"))
            outcome.state_digest_clean = current == golden_digest
        return outcome

    def _clock_is_behind(self) -> bool:
        device = self.device
        if device.clock is None:
            return False
        true_ticks = device.clock.ticks_for_seconds(
            device.cpu.elapsed_seconds)
        read = device.read_clock_ticks(device.context("Code_Attest"))
        # Tolerate rounding of a couple of ticks.
        return read < true_ticks - max(2, true_ticks // 1_000_000)
