"""External (Dolev-Yao) adversary: replay, reorder, delay, bogus floods.

Section 3.2's ``Adv_ext`` "can drop, insert and delay messages" but
cannot touch prover state.  Each class here is one of its tactics,
implemented either as a channel hook (for in-path manipulation of genuine
traffic) or as an active injector (for replays and forged floods).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.messages import AttestationRequest
from ..crypto.rng import DeterministicRng
from ..net.channel import DolevYaoChannel, Verdict
from ..net.simulator import Simulation

__all__ = ["DelayNthRequestAdversary", "ReplayAttacker",
           "BogusRequestFlooder", "request_entries"]


def request_entries(channel: DolevYaoChannel, receiver: str = "prover"):
    """Attestation requests an eavesdropper has seen go towards
    ``receiver`` (the raw material for replay)."""
    return [entry for entry in channel.transcript.to_receiver(receiver)
            if isinstance(entry.message, AttestationRequest)
            and entry.outcome != "injected"]


@dataclass
class DelayNthRequestAdversary:
    """In-path adversary that delays the ``target_index``-th request.

    Delaying request #0 while letting #1 pass produces the *reorder*
    attack (the delayed one arrives after its successor); a large delay
    on a lone request is the *delay* attack.  Responses and other
    requests pass untouched.
    """

    extra_delay: float
    target_index: int = 0
    _seen: int = field(default=0, init=False)
    delayed: list[AttestationRequest] = field(default_factory=list, init=False)

    def on_message(self, message, sender: str, receiver: str,
                   time: float) -> Verdict:
        if not isinstance(message, AttestationRequest):
            return Verdict("forward")
        index = self._seen
        self._seen += 1
        if index == self.target_index:
            self.delayed.append(message)
            return Verdict("forward", extra_delay=self.extra_delay)
        return Verdict("forward")


class ReplayAttacker:
    """Eavesdrop on genuine requests, replay byte-identical copies later.

    This is both ``Adv_ext``'s replay tactic (Section 4.2) and
    ``Adv_roam``'s Phase III (Section 5): the request is taken verbatim
    from the channel transcript, so its authentication tag is genuine and
    only freshness state can stop it.
    """

    def __init__(self, channel: DolevYaoChannel, sim: Simulation,
                 prover_name: str = "prover",
                 verifier_name: str = "verifier"):
        self.channel = channel
        self.sim = sim
        self.prover_name = prover_name
        self.verifier_name = verifier_name
        self.replays_sent = 0

    def recorded_requests(self) -> list[AttestationRequest]:
        """Genuine requests available for replay (Phase I loot)."""
        return [entry.message
                for entry in request_entries(self.channel, self.prover_name)]

    def replay(self, request: AttestationRequest, *,
               delay: float = 0.0) -> None:
        """Inject a verbatim copy of ``request`` towards the prover."""
        self.channel.inject(self.prover_name, request,
                            spoofed_sender=self.verifier_name, delay=delay)
        self.replays_sent += 1

    def replay_latest(self, *, delay: float = 0.0) -> AttestationRequest:
        recorded = self.recorded_requests()
        if not recorded:
            raise LookupError("no genuine request recorded yet")
        self.replay(recorded[-1], delay=delay)
        return recorded[-1]


class BogusRequestFlooder:
    """Verifier impersonation by brute volume (Section 3.1).

    Injects forged attestation requests at a fixed rate.  Against an
    unauthenticated prover every one triggers a full measurement; against
    an authenticated prover each dies at tag-validation cost -- which for
    ECDSA is itself the DoS (Section 4.1's paradox).
    """

    def __init__(self, channel: DolevYaoChannel, sim: Simulation, *,
                 prover_name: str = "prover",
                 verifier_name: str = "verifier",
                 auth_scheme: str = "none",
                 policy_fields: dict | None = None,
                 seed: str = "flooder-0"):
        self.channel = channel
        self.sim = sim
        self.prover_name = prover_name
        self.verifier_name = verifier_name
        self.auth_scheme = auth_scheme
        self.policy_fields = policy_fields if policy_fields is not None else {}
        self.rng = DeterministicRng(seed)
        self.sent = 0

    def forge_request(self) -> AttestationRequest:
        """A syntactically valid request with a garbage tag.

        The flooder does not know ``K_Attest``, so the best it can do is
        random tag bytes (or none, for the unauthenticated scheme).
        """
        tag = b"" if self.auth_scheme == "none" else self.rng.bytes(20)
        fields = dict(self.policy_fields)
        if "counter" in fields:
            fields["counter"] = fields["counter"] + self.sent
        return AttestationRequest(
            challenge=self.rng.bytes(16), auth_scheme=self.auth_scheme,
            auth_tag=tag, **fields)

    def flood(self, *, rate_per_second: float, duration_seconds: float,
              poisson: bool = False) -> int:
        """Schedule a flood of forged requests; returns the count sent."""
        count = 0
        t = 0.0
        index = 0
        while True:
            if poisson:
                t += self.rng.exponential(1.0 / rate_per_second)
            else:
                index += 1
                t = index / rate_per_second
            if t >= duration_seconds:
                break

            def send(request=None):
                self.channel.inject(
                    self.prover_name, self.forge_request(),
                    spoofed_sender=self.verifier_name)
                self.sent += 1

            self.sim.schedule(t, send)
            count += 1
        return count
