"""Post-incident forensics: what evidence does an attack leave?

Section 5's sharpest observation is about *evidence*: the counter
rollback "allows Adv_roam to bring the prover back to its expected state
... the DoS attack is undetectable after the fact", while the clock reset
"leaves some evidence of the attack since the prover's clock remains
behind".  :class:`ForensicExaminer` turns that observation into a
procedure: given a device (and optionally a golden state digest and a
ground-truth time source), it sweeps every observable the platform
offers and reports structured findings with severities.

Checks performed:

* **state digest** vs the deployment-time golden value;
* **clock skew** against ground truth (the verifier's clock, in
  practice);
* **EA-MPU violation log** -- a hardened device records every denied
  access, so even *failed* Phase II attempts leave traces (an
  observation the paper does not make but the hardware implies);
* **interrupt health** -- dropped/masked IRQs and bad vectors betray
  SW-clock sabotage;
* **freshness-state plausibility** -- a stored counter *ahead* of the
  verifier's issue counter proves manipulation (rollback, by contrast,
  is invisible here: exactly the paper's asymmetry).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..mcu.device import Device

__all__ = ["Finding", "ForensicReport", "ForensicExaminer", "MemorySnapshot",
           "diff_snapshots", "ChangedExtent"]

#: Severity ordering for report sorting.
_SEVERITIES = {"info": 0, "suspicious": 1, "compromise": 2}


@dataclass(frozen=True)
class Finding:
    """One piece of forensic evidence."""

    check: str
    severity: str            # info | suspicious | compromise
    detail: str

    def __post_init__(self):
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")


@dataclass
class ForensicReport:
    """All findings from one examination."""

    findings: list[Finding] = field(default_factory=list)

    def add(self, check: str, severity: str, detail: str) -> None:
        self.findings.append(Finding(check, severity, detail))

    @property
    def clean(self) -> bool:
        """No evidence beyond informational notes."""
        return all(f.severity == "info" for f in self.findings)

    @property
    def worst_severity(self) -> str:
        if not self.findings:
            return "info"
        return max(self.findings,
                   key=lambda f: _SEVERITIES[f.severity]).severity

    def of_check(self, check: str) -> list[Finding]:
        return [f for f in self.findings if f.check == check]

    def sorted(self) -> list[Finding]:
        return sorted(self.findings,
                      key=lambda f: -_SEVERITIES[f.severity])


@dataclass(frozen=True)
class ChangedExtent:
    """One contiguous run of modified bytes."""

    region: str
    start: int        # absolute address
    length: int

    @property
    def end(self) -> int:
        return self.start + self.length


class MemorySnapshot:
    """Byte-exact capture of a device's writable memory for later diffing.

    The state *digest* says whether memory changed; a snapshot says
    *where* -- which is what an investigator needs to attribute an
    implant or confirm an erase.
    """

    def __init__(self, device: Device):
        self.regions = {region.name: (region.start, region.snapshot())
                        for region in device.memory.writable_regions()}

    def __contains__(self, region_name: str) -> bool:
        return region_name in self.regions


def diff_snapshots(before: MemorySnapshot, after: MemorySnapshot,
                   *, min_gap: int = 8) -> list[ChangedExtent]:
    """Changed extents between two snapshots of the same device.

    Runs of changed bytes separated by fewer than ``min_gap`` unchanged
    bytes are merged into one extent (implants rarely change every byte
    they occupy).
    """
    extents: list[ChangedExtent] = []
    for name, (base, old) in before.regions.items():
        if name not in after.regions:
            continue
        _, new = after.regions[name]
        length = min(len(old), len(new))
        run_start = None
        last_change = None
        for index in range(length):
            if old[index] != new[index]:
                if run_start is None:
                    run_start = index
                elif index - last_change >= min_gap:
                    extents.append(ChangedExtent(
                        name, base + run_start,
                        last_change - run_start + 1))
                    run_start = index
                last_change = index
        if run_start is not None:
            extents.append(ChangedExtent(
                name, base + run_start, last_change - run_start + 1))
    return extents


class ForensicExaminer:
    """Sweeps a device's observables for attack evidence.

    Parameters
    ----------
    device:
        The prover under examination.
    golden_digest:
        Deployment-time state digest, if the examiner has one.
    clock_skew_tolerance_seconds:
        Legitimate drift allowance before clock skew is flagged.
    """

    def __init__(self, device: Device, *,
                 golden_digest: bytes | None = None,
                 clock_skew_tolerance_seconds: float = 0.05):
        self.device = device
        self.golden_digest = golden_digest
        self.tolerance = clock_skew_tolerance_seconds

    def examine(self, *, true_time_seconds: float | None = None,
                verifier_next_counter: int | None = None
                ) -> ForensicReport:
        """Run every check and return the structured report.

        The clock is examined first: the state-digest check performs a
        full measurement, which consumes device time and would otherwise
        make a healthy clock appear to lag the captured ground truth.
        """
        report = ForensicReport()
        self._check_clock(report, true_time_seconds)
        self._check_counter(report, verifier_next_counter)
        self._check_mpu_log(report)
        self._check_interrupts(report)
        self._check_state_digest(report)
        return report

    # ------------------------------------------------------------------

    def _check_state_digest(self, report: ForensicReport) -> None:
        if self.golden_digest is None:
            report.add("state-digest", "info", "no golden digest available")
            return
        current = self.device.digest_writable_memory(
            self.device.context("Code_Attest"))
        if current == self.golden_digest:
            report.add("state-digest", "info", "matches golden digest")
        else:
            report.add("state-digest", "compromise",
                       "attested memory differs from the golden state")

    def _check_clock(self, report: ForensicReport,
                     true_time_seconds: float | None) -> None:
        device = self.device
        if device.clock is None:
            report.add("clock", "info", "device has no real-time clock")
            return
        if true_time_seconds is None:
            true_time_seconds = device.cpu.elapsed_seconds
        expected = device.clock.ticks_for_seconds(true_time_seconds)
        read = device.read_clock_ticks(device.context("Code_Attest"))
        skew_ticks = expected - read
        skew_seconds = skew_ticks * device.clock.resolution_seconds
        if abs(skew_seconds) <= self.tolerance:
            report.add("clock", "info",
                       f"clock within tolerance ({skew_seconds * 1000:.2f} ms)")
        elif skew_ticks > 0:
            report.add("clock", "compromise",
                       f"clock behind ground truth by "
                       f"{skew_seconds:.3f} s -- the Section 5 clock-reset "
                       f"signature")
        else:
            report.add("clock", "suspicious",
                       f"clock ahead of ground truth by "
                       f"{-skew_seconds:.3f} s")

    def _check_mpu_log(self, report: ForensicReport) -> None:
        violations = self.device.mpu.violations
        if not violations:
            report.add("mpu-log", "info", "no access violations recorded")
            return
        contexts = sorted({v.context for v in violations if v.context})
        report.add("mpu-log", "suspicious",
                   f"{len(violations)} denied accesses recorded "
                   f"(contexts: {', '.join(contexts)}) -- failed tampering "
                   f"attempts leave traces on a hardened device")

    def _check_interrupts(self, report: ForensicReport) -> None:
        dropped = self.device.interrupts.dropped_log
        masked = [entry for entry in dropped if entry[2] == "masked"]
        bad_vector = [entry for entry in dropped if entry[2] == "bad-vector"]
        if bad_vector:
            report.add("interrupts", "compromise",
                       f"{len(bad_vector)} interrupts hit unmapped "
                       f"vectors -- IDT tampering signature")
        if masked:
            report.add("interrupts", "suspicious",
                       f"{len(masked)} interrupts dropped by mask")
        if not dropped:
            report.add("interrupts", "info", "interrupt delivery healthy")

    def _check_counter(self, report: ForensicReport,
                       verifier_next_counter: int | None) -> None:
        stored = self.device.read_counter(
            self.device.context("Code_Attest"))
        if verifier_next_counter is None:
            report.add("counter", "info",
                       f"stored counter {stored} (no verifier reference)")
            return
        if stored >= verifier_next_counter:
            report.add("counter", "compromise",
                       f"stored counter {stored} is at or beyond the "
                       f"verifier's next issue value "
                       f"{verifier_next_counter} -- forged or manipulated "
                       f"requests were accepted")
        else:
            # A rolled-back counter is indistinguishable from having
            # missed requests: the paper's undetectability result.
            report.add("counter", "info",
                       f"stored counter {stored} < verifier next "
                       f"{verifier_next_counter} (consistent; note a "
                       f"rollback would look identical)")
