"""Executable attack scenarios: the experiments behind Tables 2 and §5.

Every cell of the paper's security claims is *derived* here by running
the attack against a live simulated deployment and observing whether the
prover did unauthorised attestation work -- nothing is looked up from the
expected-answer tables (those are only used by the benchmarks to check
agreement).

Scenario families:

* :func:`run_table2_matrix` -- ``Adv_ext`` replay / reorder / delay
  against nonce / counter / timestamp freshness (Table 2);
* :func:`run_roaming_suite` -- three-phase ``Adv_roam`` counter-rollback
  and clock-reset against the protection-profile ladder (Section 5 /
  Section 6);
* :func:`run_dos_flood` -- verifier-impersonation floods quantifying the
  energy/time DoS for each request-authentication scheme (Section 3.1 /
  4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.analysis import AttackOutcome, MitigationMatrix
from ..core.protocol import Session, build_session
from ..mcu.device import DeviceConfig
from ..mcu.profiles import ProtectionProfile, ROAM_HARDENED
from .external import BogusRequestFlooder, DelayNthRequestAdversary, ReplayAttacker
from .roaming import RoamingAdversary, RoamingOutcome

__all__ = ["run_table2_matrix", "run_roaming_suite", "run_dos_flood",
           "RoamingRecord", "FloodResult", "TABLE2_ATTACKS",
           "TABLE2_FEATURES", "TABLE2_EXPECTED"]

TABLE2_ATTACKS = ("replay", "reorder", "delay")
TABLE2_FEATURES = ("nonce", "counter", "timestamp")

#: Table 2 as printed in the paper (used by benchmarks for agreement
#: checks, never by the scenarios themselves).
TABLE2_EXPECTED = {
    "nonce": {"replay"},
    "counter": {"replay", "reorder"},
    "timestamp": {"replay", "reorder", "delay"},
}

#: Window and spacing honouring Section 4.2's "sufficiently inter-spaced
#: genuine attestation requests" assumption (spacing > window).
_WINDOW_S = 1.0
_SPACING_S = 3.0


def _small_device() -> DeviceConfig:
    """A quick-to-simulate prover for protocol-level scenarios."""
    return DeviceConfig(ram_size=16 * 1024, flash_size=32 * 1024,
                        app_size=4 * 1024)


def _session(policy: str, adversary=None, *, seed: str,
             profile: ProtectionProfile = ROAM_HARDENED,
             auth_scheme: str = "hmac-sha1",
             clock_kind: str = "hw64",
             monotonic_timestamps: bool = False) -> Session:
    config = _small_device()
    config.clock_kind = clock_kind
    return build_session(profile=profile, auth_scheme=auth_scheme,
                         policy_name=policy, device_config=config,
                         adversary=adversary,
                         timestamp_window_seconds=_WINDOW_S,
                         monotonic_timestamps=monotonic_timestamps,
                         seed=seed)


# ---------------------------------------------------------------------------
# Table 2: Adv_ext vs freshness features
# ---------------------------------------------------------------------------

def _replay_cell(policy: str, auth_scheme: str, seed: str) -> AttackOutcome:
    """One genuine round, then a byte-identical replay after the window."""
    session = _session(policy, seed=seed, auth_scheme=auth_scheme)
    session.attest_once()
    accepted_before = session.anchor.stats.accepted
    cycles_before = session.device.cpu.cycle_count
    attacker = ReplayAttacker(session.channel, session.sim)
    attacker.replay_latest(delay=_SPACING_S)
    session.sim.run(until=session.sim.now + _SPACING_S + 5.0)
    succeeded = session.anchor.stats.accepted > accepted_before
    return AttackOutcome(
        attack="replay", defence=policy, succeeded=succeeded,
        prover_wasted_cycles=(session.device.cpu.cycle_count - cycles_before
                              if succeeded else 0),
        detail=f"replay after {_SPACING_S}s "
               f"{'accepted' if succeeded else 'rejected'}")


def _reorder_cell(policy: str, auth_scheme: str, seed: str) -> AttackOutcome:
    """Two inter-spaced genuine requests; the first is held back so it
    arrives after the second.  The attack succeeds when the out-of-order
    (first) request is still accepted."""
    adversary = DelayNthRequestAdversary(
        extra_delay=_SPACING_S + 1.0, target_index=0)
    session = _session(policy, adversary, seed=seed, auth_scheme=auth_scheme)
    session.sim.run(until=0.001)
    session.verifier_node.request_attestation()          # A (held back)
    session.sim.run(until=session.sim.now + _SPACING_S)
    session.verifier_node.request_attestation()          # B (passes A)
    session.sim.run(until=session.sim.now + _SPACING_S + 10.0)
    accepted = session.anchor.stats.accepted
    # B alone should be accepted; A's acceptance means reorder worked.
    succeeded = accepted >= 2
    slipped = ("out-of-order request slipped through" if succeeded
               else "late original rejected")
    return AttackOutcome(
        attack="reorder", defence=policy, succeeded=succeeded,
        detail=f"{accepted}/2 requests accepted ({slipped})")


def _delay_cell(policy: str, auth_scheme: str, seed: str) -> AttackOutcome:
    """A lone genuine request delayed beyond the freshness window."""
    delay = _SPACING_S + 2.0
    adversary = DelayNthRequestAdversary(extra_delay=delay, target_index=0)
    session = _session(policy, adversary, seed=seed, auth_scheme=auth_scheme)
    session.sim.run(until=0.001)
    session.verifier_node.request_attestation()
    session.sim.run(until=session.sim.now + delay + 10.0)
    succeeded = session.anchor.stats.accepted >= 1
    return AttackOutcome(
        attack="delay", defence=policy, succeeded=succeeded,
        detail=f"request delayed {delay}s "
               f"{'accepted' if succeeded else 'rejected'}")


_CELL_RUNNERS = {"replay": _replay_cell, "reorder": _reorder_cell,
                 "delay": _delay_cell}


def run_table2_matrix(*, auth_scheme: str = "hmac-sha1",
                      seed: str = "table2") -> MitigationMatrix:
    """Derive the full Table 2 attack-vs-feature matrix by simulation."""
    matrix = MitigationMatrix(attacks=list(TABLE2_ATTACKS),
                              features=list(TABLE2_FEATURES))
    for feature in TABLE2_FEATURES:
        for attack in TABLE2_ATTACKS:
            runner = _CELL_RUNNERS[attack]
            matrix.record(runner(feature, auth_scheme,
                                 seed=f"{seed}:{feature}:{attack}"))
    return matrix


# ---------------------------------------------------------------------------
# Section 5: the roaming adversary against the profile ladder
# ---------------------------------------------------------------------------

@dataclass
class RoamingRecord:
    """One roaming-attack run in the Section 5/6 grid."""

    strategy: str        # counter-rollback | clock-reset
    policy: str          # counter | timestamp
    profile: str         # baseline | ext-hardened | roam-hardened
    clock_kind: str
    outcome: RoamingOutcome

    @property
    def dos_succeeded(self) -> bool:
        return self.outcome.dos_succeeded

    @property
    def detectable(self) -> bool:
        return self.outcome.detectable_after_fact


def run_roaming_attack(*, strategy: str, policy: str,
                       profile: ProtectionProfile,
                       clock_kind: str = "hw64",
                       auth_scheme: str = "hmac-sha1",
                       monotonic_timestamps: bool = False,
                       seed: str = "roam") -> RoamingRecord:
    """One full three-phase roaming attack against one configuration."""
    session = _session(policy, seed=seed, profile=profile,
                       auth_scheme=auth_scheme, clock_kind=clock_kind,
                       monotonic_timestamps=monotonic_timestamps)
    golden = session.learn_reference_state()
    # Give the deployment enough history that t_i - delta stays positive.
    session.sim.run(until=60.0)
    session.attest_once()
    adversary = RoamingAdversary(session)
    # Phase II must act on the device's present: sync it to the sim clock.
    lag = session.sim.now - session.device.cpu.elapsed_seconds
    if lag > 0:
        session.device.idle_seconds(lag)
    outcome = adversary.execute(strategy, golden_digest=golden)
    return RoamingRecord(strategy=strategy, policy=policy,
                         profile=profile.name, clock_kind=clock_kind,
                         outcome=outcome)


def run_roaming_suite(*, profiles=None, clock_kinds=("hw64", "sw"),
                      seed: str = "roam-suite") -> list[RoamingRecord]:
    """The Section 5 grid: both strategies across the protection ladder.

    Counter rollback targets counter freshness (clock design irrelevant,
    run on hw64 only); clock reset targets timestamp freshness on every
    clock design in ``clock_kinds``.
    """
    from ..mcu.profiles import BASELINE, EXT_HARDENED, ROAM_HARDENED
    if profiles is None:
        profiles = (BASELINE, EXT_HARDENED, ROAM_HARDENED)
    records = []
    for profile in profiles:
        records.append(run_roaming_attack(
            strategy="counter-rollback", policy="counter", profile=profile,
            clock_kind="hw64", seed=f"{seed}:{profile.name}:counter"))
        for clock_kind in clock_kinds:
            records.append(run_roaming_attack(
                strategy="clock-reset", policy="timestamp", profile=profile,
                clock_kind=clock_kind,
                seed=f"{seed}:{profile.name}:clock:{clock_kind}"))
    return records


# ---------------------------------------------------------------------------
# Section 3.1 / 4.1: DoS floods and their energy cost
# ---------------------------------------------------------------------------

@dataclass
class FloodResult:
    """Impact of a bogus-request flood on the prover."""

    auth_scheme: str
    requests_sent: int
    accepted: int
    rejected: int
    active_cycles: int
    active_seconds: float
    energy_mj: float
    duration_seconds: float
    #: (start, end) seconds the trust anchor spent measuring, for
    #: real-time impact analysis.
    busy_intervals: list = field(default_factory=list)

    @property
    def duty_fraction(self) -> float:
        """Fraction of wall-clock time the flood kept the CPU busy."""
        return self.active_seconds / self.duration_seconds

    @property
    def energy_per_request_mj(self) -> float:
        return self.energy_mj / self.requests_sent if self.requests_sent else 0.0


def run_dos_flood(*, auth_scheme: str, rate_per_second: float = 1.0,
                  duration_seconds: float = 60.0,
                  device_config: DeviceConfig | None = None,
                  telemetry=None,
                  seed: str = "flood") -> FloodResult:
    """Flood one prover with forged requests and measure the damage.

    With ``auth_scheme="none"`` every request triggers a full memory
    measurement; with a MAC scheme each dies at validation cost; with
    ECDSA the validation *is* the DoS.  Pass a
    :class:`~repro.obs.telemetry.Telemetry` to observe the flood through
    the metrics registry (the DoS-energy benchmark reads its numbers
    from there).
    """
    config = device_config if device_config is not None else _small_device()
    session = build_session(
        profile=ROAM_HARDENED, auth_scheme=auth_scheme, policy_name="none",
        device_config=config, telemetry=telemetry, seed=seed)
    device = session.device

    flooder = BogusRequestFlooder(session.channel, session.sim,
                                  auth_scheme=auth_scheme,
                                  seed=seed + ":flooder")
    sent = flooder.flood(rate_per_second=rate_per_second,
                         duration_seconds=duration_seconds)
    session.sim.run(until=duration_seconds + 10.0)
    # Account trailing idle time so energy covers the whole window.
    lag = session.sim.now - device.cpu.elapsed_seconds
    if lag > 0:
        device.idle_seconds(lag)
    device.sync_energy()

    stats = session.anchor.stats
    active = device.battery.active_cycles
    result = FloodResult(
        auth_scheme=auth_scheme, requests_sent=sent,
        accepted=stats.accepted, rejected=stats.rejected_total,
        active_cycles=active,
        active_seconds=active / device.cpu.frequency_hz,
        energy_mj=device.battery.consumed_mj,
        duration_seconds=session.sim.now)
    result.busy_intervals = list(session.anchor.busy_intervals)
    return result


@dataclass
class LockoutResult:
    """Outcome of the rate-limit lock-out attack."""

    auth_scheme: str
    rate_limit_seconds: float
    genuine_sent: int
    genuine_accepted: int
    forged_measured: int
    rejected_rate_limited: int

    @property
    def genuine_service_ratio(self) -> float:
        return (self.genuine_accepted / self.genuine_sent
                if self.genuine_sent else 0.0)


def run_rate_limit_lockout(*, auth_scheme: str,
                           rate_limit_seconds: float = 10.0,
                           genuine_rounds: int = 5,
                           seed: str = "lockout") -> LockoutResult:
    """The naive alternative defence, attacked.

    The prover rate-limits attestation to once per ``rate_limit_seconds``.
    The adversary injects one forged request shortly *before* each genuine
    one.  Unauthenticated prover: the forgery claims the rate slot (and a
    full measurement), so every genuine request bounces off the limiter --
    the defence hands the adversary a cheap, precise lock-out.
    Authenticated prover: forgeries die before the limiter, genuine
    service is untouched.
    """
    session = build_session(
        profile=ROAM_HARDENED, auth_scheme=auth_scheme, policy_name="none",
        device_config=_small_device(), rate_limit_seconds=rate_limit_seconds,
        seed=seed)
    flooder = BogusRequestFlooder(session.channel, session.sim,
                                  auth_scheme=auth_scheme,
                                  seed=seed + ":flooder")
    spacing = rate_limit_seconds * 1.5
    for round_index in range(genuine_rounds):
        genuine_at = (round_index + 1) * spacing
        # The forgery lands just inside the rate window before the
        # genuine request.
        session.sim.schedule_at(
            genuine_at - rate_limit_seconds / 4,
            lambda: session.channel.inject(
                "prover", flooder.forge_request(),
                spoofed_sender="verifier"))
        session.sim.schedule_at(
            genuine_at,
            session.verifier_node.request_attestation)
    session.sim.run(until=(genuine_rounds + 2) * spacing)

    stats = session.anchor.stats
    genuine_accepted = sum(
        1 for result in session.verifier_node.results if result.authentic)
    return LockoutResult(
        auth_scheme=auth_scheme, rate_limit_seconds=rate_limit_seconds,
        genuine_sent=genuine_rounds, genuine_accepted=genuine_accepted,
        forged_measured=stats.accepted - genuine_accepted,
        rejected_rate_limited=stats.rejected.get("rate-limited", 0))


@dataclass
class FloodTaskImpact:
    """Primary-task damage from a flood, measured by execution."""

    flood: FloodResult
    task_period_seconds: float
    released: int
    met: int
    skipped: int

    @property
    def miss_ratio(self) -> float:
        return self.skipped / self.released if self.released else 0.0


def run_flood_task_impact(*, auth_scheme: str,
                          rate_per_second: float = 1.0,
                          duration_seconds: float = 60.0,
                          task_period_seconds: float = 0.1,
                          task_job_seconds: float = 0.01,
                          device_config: DeviceConfig | None = None,
                          seed: str = "flood-task") -> FloodTaskImpact:
    """Flood a prover, then replay its actual attestation busy intervals
    against a periodic control task on the cooperative executive.

    Connects Section 3.1's two costs: the energy numbers of
    :func:`run_dos_flood` and the "takes Prv away from performing its
    primary tasks" claim, with deadline misses measured by execution
    rather than bound arithmetic.
    """
    from ..mcu.scheduler import CooperativeScheduler, PeriodicTask

    flood = run_dos_flood(auth_scheme=auth_scheme,
                          rate_per_second=rate_per_second,
                          duration_seconds=duration_seconds,
                          device_config=device_config, seed=seed)
    scheduler = CooperativeScheduler([
        PeriodicTask("control", task_period_seconds, task_job_seconds)])
    report = scheduler.run(duration_seconds,
                           busy_intervals=[
                               (start, end)
                               for start, end in flood.busy_intervals
                               if start < duration_seconds])
    return FloodTaskImpact(flood=flood,
                           task_period_seconds=task_period_seconds,
                           released=report.released, met=report.met,
                           skipped=report.skipped)
