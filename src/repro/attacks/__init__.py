"""Adversary implementations and executable attack scenarios."""

from .external import (BogusRequestFlooder, DelayNthRequestAdversary,
                       ReplayAttacker, request_entries)
from .forensics import Finding, ForensicExaminer, ForensicReport
from .roaming import CompromiseReport, RoamingAdversary, RoamingOutcome
from .scenarios import (FloodResult, FloodTaskImpact, LockoutResult,
                        RoamingRecord, TABLE2_ATTACKS, TABLE2_EXPECTED,
                        TABLE2_FEATURES, run_dos_flood,
                        run_flood_task_impact, run_rate_limit_lockout,
                        run_roaming_attack, run_roaming_suite,
                        run_table2_matrix)

__all__ = [
    "BogusRequestFlooder", "CompromiseReport", "DelayNthRequestAdversary",
    "Finding", "FloodResult", "FloodTaskImpact", "ForensicExaminer",
    "ForensicReport", "LockoutResult", "ReplayAttacker", "RoamingAdversary",
    "RoamingOutcome", "RoamingRecord", "TABLE2_ATTACKS", "TABLE2_EXPECTED",
    "TABLE2_FEATURES", "request_entries", "run_dos_flood",
    "run_flood_task_impact", "run_rate_limit_lockout", "run_roaming_attack",
    "run_roaming_suite", "run_table2_matrix",
]
