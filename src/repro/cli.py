"""Command-line interface: reproduce the paper's experiments directly.

Usage::

    python -m repro table1                 # Table 1 crypto costs
    python -m repro table2 [--strict]      # Table 2 mitigation matrix
    python -m repro table3                 # Table 3 component costs
    python -m repro overhead               # Section 6.3 overheads + clocks
    python -m repro roam [--clock sw]      # Section 5 roaming grid
    python -m repro flood [--rate R] [--duration S]
    python -m repro attest [--ram-kb N] [--scheme S] [--policy P]
    python -m repro metrics [--rounds N] [--trace-out F] [--registry-out F]
    python -m repro verify-profile [--profile P] [--clock C] [--json]
    python -m repro lint [paths ...] [--json] [--waivers F] [--allow-stale]
    python -m repro taint [--json] [--policy F] [--allow-stale] [--canary]
    python -m repro analyze [--out F] [--allow-stale]
    python -m repro fleet-bench [--size N] [--workers W] [--json]
    python -m repro incremental-bench [--size N] [--dirty F ...] [--json]
    python -m repro serve [--devices N] [--waves K] [--snapshot F]
    python -m repro service-bench [--size N] [--json]
    python -m repro snapshot save --out F [--size N] [--sweeps K]
                                  [--parent P] [--verify] [--incremental]
    python -m repro snapshot restore F [--sweeps K] [--json]
    python -m repro snapshot replay F --seq N
    python -m repro snapshot compact F --out OUT
    python -m repro snapshot bisect F [F ...] --match KEY=VALUE ...
    python -m repro snapshot-bench [--size N] [--workers W] [--json]

Each subcommand prints the same tables the benchmark harness writes to
``benchmarks/results/``; the CLI exists so a downstream user can poke at
parameters without driving pytest.
"""

from __future__ import annotations

import argparse
import sys

from .core.analysis import render_table
from .crypto.costmodel import CryptoCostModel

__all__ = ["main"]


def _cmd_table1(args) -> int:
    model = CryptoCostModel(frequency_hz=args.mhz * 1_000_000)
    hmac_fixed = model.hmac_cycles(0, "table")
    hmac_block = model.hmac_cycles(128, "table") - model.hmac_cycles(64, "table")
    rows = [["primitive op", "ms"],
            ["hmac fixed", f"{model.cycles_to_ms(hmac_fixed):.3f}"],
            ["hmac / 64 B block",
             f"{model.cycles_to_ms(hmac_block):.3f}"],
            ["aes key expansion",
             f"{model.cycles_to_ms(model.aes_key_expansion_cycles()):.3f}"],
            ["aes encrypt / block",
             f"{model.cycles_to_ms(model.aes_encrypt_cycles(1)):.3f}"],
            ["aes decrypt / block",
             f"{model.cycles_to_ms(model.aes_decrypt_cycles(1)):.3f}"],
            ["speck key expansion",
             f"{model.cycles_to_ms(model.speck_key_expansion_cycles()):.3f}"],
            ["speck encrypt / block",
             f"{model.cycles_to_ms(model.speck_encrypt_cycles(1)):.3f}"],
            ["speck decrypt / block",
             f"{model.cycles_to_ms(model.speck_decrypt_cycles(1)):.3f}"],
            ["ecdsa sign", f"{model.cycles_to_ms(model.ecdsa_sign_cycles()):.3f}"],
            ["ecdsa verify",
             f"{model.cycles_to_ms(model.ecdsa_verify_cycles()):.3f}"]]
    print(render_table(rows, title=f"Table 1 at {args.mhz} MHz"))
    print(f"\nattestation of {args.ram_kb} KB: "
          f"{model.attestation_ms(args.ram_kb * 1024):.3f} ms")
    return 0


def _cmd_table2(args) -> int:
    if args.model_check:
        from .core.modelcheck import table2_from_model_checking
        table = table2_from_model_checking(
            paper_assumptions=not args.strict)
        rows = [["feature", "mitigates"]]
        for feature in ("nonce", "counter", "timestamp"):
            rows.append([feature, ", ".join(sorted(table[feature])) or "-"])
        print(render_table(rows, title="Table 2 via exhaustive model "
                                       "checking"))
        if args.strict:
            print("\n(unrestricted adversary: immediate replays exposed; "
                  "rerun without --strict for the paper's assumptions)")
    else:
        from .attacks.scenarios import TABLE2_EXPECTED, run_table2_matrix
        matrix = run_table2_matrix(seed="cli")
        print(render_table(matrix.as_rows(),
                           title="Table 2, derived by attack simulation"))
        match = matrix.matches(TABLE2_EXPECTED)
        print(f"\nagreement with the printed Table 2: "
              f"{'EXACT' if match else 'MISMATCH'}")
    return 0


def _cmd_table3(args) -> int:
    from .hwcost import TABLE3_COMPONENTS
    rows = [["component", "rules", "registers", "LUTs"]]
    for component in TABLE3_COMPONENTS:
        if component.registers_per_rule:
            reg = f"{component.registers}+{component.registers_per_rule}*#r"
            lut = f"{component.luts}+{component.luts_per_rule}*#r"
        else:
            reg, lut = str(component.registers), str(component.luts)
        rows.append([component.name, str(component.mpu_rules), reg, lut])
    print(render_table(rows, title="Table 3: hardware cost per component"))
    return 0


def _cmd_overhead(args) -> int:
    from .hwcost import HardwareCostModel
    model = HardwareCostModel()
    base = model.baseline()
    print(f"baseline: {base.registers} registers / {base.luts} LUTs "
          f"({base.rules} EA-MPU rules)\n")
    rows = [["variant", "+reg", "reg %", "+LUT", "LUT %"]]
    for kind in ("hw64", "hw32div", "sw"):
        o = model.variant_overhead(kind)
        rows.append([kind, str(o.extra_registers),
                     f"{o.register_overhead_percent:.2f}",
                     str(o.extra_luts),
                     f"{o.lut_overhead_percent:.2f}"])
    print(render_table(rows, title="Section 6.3 overheads"))
    rows = [["width/divider", "resolution (ms)", "wrap-around (years)"]]
    for width, divider in ((64, 1), (32, 1), (32, 1 << 20)):
        t = model.clock_tradeoff(width, divider)
        rows.append([f"{width}b / {divider}",
                     f"{t['resolution_seconds'] * 1000:.4f}",
                     f"{t['wraparound_years']:.4f}"])
    print()
    print(render_table(rows, title="Clock trade-offs @ 24 MHz"))
    return 0


def _cmd_roam(args) -> int:
    from .attacks.scenarios import run_roaming_suite
    clock_kinds = tuple(args.clock) if args.clock else ("hw64", "sw")
    records = run_roaming_suite(clock_kinds=clock_kinds, seed="cli-roam")
    rows = [["strategy", "profile", "clock", "DoS", "detectable"]]
    for r in records:
        rows.append([r.strategy, r.profile, r.clock_kind,
                     "SUCCEEDS" if r.dos_succeeded else "blocked",
                     "yes" if r.detectable else "no"])
    print(render_table(rows, title="Section 5: roaming adversary results"))
    return 0


def _cmd_flood(args) -> int:
    from .attacks.scenarios import run_dos_flood
    from .mcu.device import DeviceConfig
    rows = [["auth scheme", "accepted", "rejected", "CPU busy (s)",
             "energy (mJ)"]]
    for scheme in ("none", "speck-64/128-cbc-mac", "hmac-sha1",
                   "ecdsa-secp160r1"):
        result = run_dos_flood(
            auth_scheme=scheme, rate_per_second=args.rate,
            duration_seconds=args.duration,
            device_config=DeviceConfig(ram_size=args.ram_kb * 1024,
                                       flash_size=32 * 1024,
                                       app_size=4 * 1024),
            seed="cli-flood")
        rows.append([scheme, str(result.accepted), str(result.rejected),
                     f"{result.active_seconds:.3f}",
                     f"{result.energy_mj:.4f}"])
    print(render_table(rows, title=f"Forged-request flood: {args.rate}/s "
                                   f"for {args.duration:.0f}s on a "
                                   f"{args.ram_kb} KB prover"))
    return 0


def _cmd_attest(args) -> int:
    import json

    from .core.protocol import build_session
    from .mcu.device import DeviceConfig
    session = build_session(
        auth_scheme=args.scheme, policy_name=args.policy,
        device_config=DeviceConfig(ram_size=args.ram_kb * 1024),
        seed="cli-attest")
    session.learn_reference_state()
    result = session.attest_once(settle_seconds=20.0)
    if args.json:
        summary = session.summary()
        summary["verdict"] = {"trusted": result.trusted,
                              "detail": result.detail}
        print(json.dumps(summary, indent=2, sort_keys=True))
        return 0 if result.trusted else 1
    stats = session.anchor.stats
    print(f"verdict: trusted={result.trusted} ({result.detail})")
    print(f"request validation: {stats.validation_cycles / 24_000:.3f} ms")
    print(f"memory measurement: {stats.attestation_cycles / 24_000:.1f} ms")
    session.device.sync_energy()
    print(f"prover energy: {session.device.battery.consumed_mj:.3f} mJ")
    return 0 if result.trusted else 1


def _cmd_metrics(args) -> int:
    """Observe the quickstart scenario through the telemetry subsystem.

    Runs the quickstart deployment (roam-hardened 24 MHz prover, Speck
    request MACs, counter freshness) with a metrics registry and event
    trace attached, exports both, and cross-checks the registry against
    the legacy :class:`ProverStats` counters -- the two accountings must
    agree cycle-for-cycle.
    """
    import json

    from .core.protocol import build_session
    from .mcu.device import DeviceConfig
    from .obs import (Telemetry, validate_jsonl_trace,
                      validate_registry_dump)

    telemetry = Telemetry()
    session = build_session(
        auth_scheme=args.scheme, policy_name=args.policy,
        device_config=DeviceConfig(ram_size=args.ram_kb * 1024),
        telemetry=telemetry, seed="quickstart")
    session.learn_reference_state()
    trusted_rounds = 0
    for _ in range(args.rounds):
        result = session.attest_once(settle_seconds=20.0)
        trusted_rounds += int(result.trusted)
    session.device.sync_energy()

    registry = telemetry.registry
    stats = session.anchor.stats
    checks = {
        "received": (registry.value("prover.requests.received"),
                     stats.received),
        "accepted": (registry.value("prover.requests.accepted"),
                     stats.accepted),
        "rejected": (registry.total("prover.requests.rejected"),
                     stats.rejected_total),
        "validation_cycles": (registry.value("prover.validation_cycles"),
                              stats.validation_cycles),
        "attestation_cycles": (registry.value("prover.attestation_cycles"),
                               stats.attestation_cycles),
    }
    consistent = all(reg == legacy for reg, legacy in checks.values())

    trace_text = telemetry.trace.to_jsonl()
    dump = registry.dump()
    schema_errors = validate_jsonl_trace(trace_text)
    schema_errors += validate_registry_dump(dump)

    registry_json = json.dumps(dump, indent=2, sort_keys=True)
    try:
        if args.trace_out:
            telemetry.trace.export_jsonl(args.trace_out)
        else:
            print(trace_text)
        if args.registry_out:
            with open(args.registry_out, "w") as handle:
                handle.write(registry_json + "\n")
        else:
            print(registry_json)
    except OSError as exc:
        print(f"error: cannot write export: {exc}", file=sys.stderr)
        return 1

    print(f"\n# rounds: {args.rounds} ({trusted_rounds} trusted), "
          f"trace events: {len(telemetry.trace)}, "
          f"metrics: {len(registry)}", file=sys.stderr)
    for name, (reg, legacy) in checks.items():
        marker = "==" if reg == legacy else "!="
        print(f"# registry vs ProverStats {name}: {reg} {marker} {legacy}",
              file=sys.stderr)
    for error in schema_errors:
        print(f"# schema error: {error}", file=sys.stderr)
    if not consistent:
        print("# FAIL: registry disagrees with ProverStats", file=sys.stderr)
        return 1
    if schema_errors:
        print("# FAIL: export violates the telemetry schema",
              file=sys.stderr)
        return 1
    print("# OK: registry matches ProverStats and exports validate",
          file=sys.stderr)
    return 0


def _cmd_modelcheck(args) -> int:
    from .core.modelcheck import PROPERTIES, check_policy
    rows = [["policy"] + list(PROPERTIES) + ["schedules"]]
    policies = [("none", {}), ("nonce", {}), ("counter", {}),
                ("timestamp", {}),
                ("timestamp+monotonic", {"monotonic_timestamps": True})]
    for label, kwargs in policies:
        name = label.split("+")[0]
        result = check_policy(name, requests=args.requests, **kwargs)
        rows.append([label]
                    + ["holds" if prop in result.holds else "FAILS"
                       for prop in PROPERTIES]
                    + [str(result.schedules_checked)])
    print(render_table(rows, title="Freshness policies, exhaustively "
                                   "checked (unrestricted adversary)"))
    print("\nProperty-to-Table-2 mapping: no-double-acceptance=replay, "
          "order-safety=reorder, no-stale-acceptance=delay.")
    return 0


def _cmd_swatt(args) -> int:
    from .baselines.swatt import evaluate_over_paths
    from .mcu.device import Device, DeviceConfig
    from .mcu.profiles import BASELINE
    from .net.path import DIRECT_LINK, campus_path, wan_path

    def factory():
        device = Device(DeviceConfig(ram_size=8 * 1024,
                                     flash_size=16 * 1024,
                                     app_size=4 * 1024))
        device.provision(b"K" * 16)
        device.boot(BASELINE)
        return device

    paths = {"direct": DIRECT_LINK, "campus": campus_path(),
             "wan": wan_path()}
    results = evaluate_over_paths(device_factory=factory, paths=paths,
                                  trials=args.trials,
                                  iterations=args.iterations,
                                  seed="cli-swatt")
    rows = [["topology", "jitter (ms)", "accuracy"]]
    for name, path in paths.items():
        rows.append([name, f"{path.jitter_span_seconds * 1000:.2f}",
                     f"{results[name].accuracy:.2f}"])
    print(render_table(rows, title="SWATT-style timing attestation by "
                                   "topology (Section 2)"))
    return 0


def _cmd_verify_profile(args) -> int:
    """Statically verify protection profiles against the EA-MPU model.

    Exit status reflects *agreement with ground truth*: an unprotected
    profile failing its invariants is the expected outcome, not an
    error.  Any divergence from :func:`repro.analysis.expected_failures`
    -- a hardened profile with a hole, or an unhardened one that
    spuriously verifies -- exits non-zero.
    """
    import json

    from .analysis import expected_failures, verify_profile
    from .mcu.profiles import ALL_PROFILES

    profiles = [p for p in ALL_PROFILES if args.profile in (None, p.name)]
    clock_kinds = tuple(args.clock) if args.clock else ("hw64", "sw")
    reports = []
    mismatches = []
    for profile in profiles:
        for clock_kind in clock_kinds:
            report = verify_profile(profile, clock_kind=clock_kind)
            reports.append(report)
            expected = expected_failures(profile.name, clock_kind)
            if report.failed() != expected:
                mismatches.append((report, expected))
    if args.json:
        print(json.dumps([r.as_dict() for r in reports], indent=2,
                         sort_keys=True))
        return 1 if mismatches else 0
    rows = [["profile", "clock", "verdict", "violated invariants",
             "enabled attacks"]]
    for report in reports:
        rows.append([report.profile, report.clock_kind,
                     "SECURE" if report.holds else "VULNERABLE",
                     ", ".join(sorted(report.failed())) or "-",
                     ", ".join(sorted(report.failed_attacks())) or "-"])
    print(render_table(rows, title="Static EA-MPU configuration verdicts"))
    shown = False
    for report in reports:
        for verdict in report.verdicts:
            if verdict.holds or verdict.counterexample is None:
                continue
            if not shown:
                print("\ncounterexamples:")
                shown = True
            print(f"  {report.profile}/{report.clock_kind} "
                  f"{verdict.invariant}: {verdict.counterexample.detail}")
    for report, expected in mismatches:
        print(f"\nMISMATCH {report.profile}/{report.clock_kind}: "
              f"violated {sorted(report.failed())}, ground truth expects "
              f"{sorted(expected)}", file=sys.stderr)
    if not mismatches:
        print("\nall verdicts agree with the dynamic ground truth")
    return 1 if mismatches else 0


def _cmd_lint(args) -> int:
    """Run the determinism/consistency linter over the tree."""
    import json
    import pathlib

    from .analysis import DEFAULT_LINT_DIRS, lint_tree, load_waivers

    root = pathlib.Path(args.root)
    waivers = load_waivers(root / args.waivers)
    dirs = tuple(args.paths) if args.paths else DEFAULT_LINT_DIRS
    report = lint_tree(root, dirs=dirs, waivers=waivers)
    stale_fails = bool(report.stale_waivers) and not args.allow_stale
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
        return 0 if report.clean and not stale_fails else 1
    for violation in report.violations:
        print(f"{violation.path}:{violation.line}:{violation.col}: "
              f"{violation.rule} {violation.message}")
    for waiver in report.stale_waivers:
        print(f"{waiver.path}: stale waiver for {waiver.rule}: matches "
              f"no current violation (drop the entry or pass "
              f"--allow-stale)", file=sys.stderr)
    print(f"{report.files_scanned} files scanned, "
          f"{len(report.violations)} violations, "
          f"{len(report.waived)} waived, "
          f"{len(report.stale_waivers)} stale waivers", file=sys.stderr)
    return 0 if report.clean and not stale_fails else 1


def _cmd_taint(args) -> int:
    """Key-confidentiality taint analysis (KEY001/KEY002/KEY003)."""
    import json
    import pathlib

    from .analysis import analyze_taint_tree, load_policy, run_canary_hunt

    root = pathlib.Path(args.root)
    policy = load_policy(root / args.policy)
    report = analyze_taint_tree(root, policy=policy)
    stale_fails = bool(report.stale_policy) and not args.allow_stale
    canary = None
    if args.canary:
        canary = run_canary_hunt()
    failed = (not report.clean or stale_fails
              or (canary is not None
                  and (not canary.clean or not canary.control_hit)))
    if args.json:
        document = report.as_dict()
        if canary is not None:
            document["canary"] = canary.as_dict()
        print(json.dumps(document, indent=2, sort_keys=True))
        return 1 if failed else 0
    for violation in report.violations:
        print(f"{violation.path}:{violation.line}:{violation.col}: "
              f"{violation.rule} [{violation.sink}] {violation.message}")
        if len(violation.chain) > 1:
            print("    via " + " -> ".join(violation.chain))
    for entry in report.stale_policy:
        print(f"{entry['path']}: stale policy entry ({entry['kind']}): "
              f"{entry['detail']} (drop the entry or pass --allow-stale)",
              file=sys.stderr)
    if canary is not None:
        verdict = "clean" if canary.clean else "LEAK"
        control = "ok" if canary.control_hit else "MISSED"
        print(f"canary hunt: {verdict} over "
              f"{len(canary.artifacts_scanned)} artifacts "
              f"(blob control {control})", file=sys.stderr)
        for hit in canary.hits:
            print(f"  canary hit: {hit.needle} in {hit.artifact}",
                  file=sys.stderr)
    print(f"{report.files_scanned} files analyzed "
          f"({report.rounds} fixpoint rounds), "
          f"{len(report.violations)} violations, "
          f"{len(report.waived)} policy-waived, "
          f"{len(report.stale_policy)} stale policy entries",
          file=sys.stderr)
    return 1 if failed else 0


def _cmd_analyze(args) -> int:
    """Run invariants + lint + taint; emit one merged analysis document."""
    import pathlib

    from .analysis import (analyze_taint_tree, build_report,
                           expected_failures, lint_tree, load_policy,
                           load_waivers, render_report_json,
                           verify_shipped_profiles)

    root = pathlib.Path(args.root)
    profile_reports = verify_shipped_profiles(clock_kinds=("hw64", "sw"))
    mismatches = [
        r for r in profile_reports
        if r.failed() != expected_failures(r.profile, r.clock_kind)]
    lint_report = lint_tree(root, waivers=load_waivers(root / args.waivers))
    taint_report = analyze_taint_tree(
        root, policy=load_policy(root / args.policy))
    document = render_report_json(
        build_report(profile_reports, lint_report, taint_report))
    if args.out:
        pathlib.Path(args.out).write_text(document)
        print(f"wrote {args.out} ({len(document)} bytes)", file=sys.stderr)
    else:
        print(document, end="")
    stale = ((lint_report.stale_waivers or taint_report.stale_policy)
             and not args.allow_stale)
    failed = (bool(mismatches) or not lint_report.clean
              or not taint_report.clean or bool(stale))
    for report in mismatches:
        print(f"analyze: invariant mismatch for {report.profile}/"
              f"{report.clock_kind}", file=sys.stderr)
    if not lint_report.clean:
        print(f"analyze: {len(lint_report.violations)} lint violations",
              file=sys.stderr)
    if not taint_report.clean:
        print(f"analyze: {len(taint_report.violations)} taint violations",
              file=sys.stderr)
    if stale:
        print(f"analyze: {len(lint_report.stale_waivers)} stale waivers, "
              f"{len(taint_report.stale_policy)} stale policy entries",
              file=sys.stderr)
    return 1 if failed else 0


def _cmd_fleet_bench(args) -> int:
    """Sharded parallel fleet sweep vs the sequential seed path."""
    import json

    from .obs.schema import validate_fleet_report
    from .perf import fleet

    report = fleet.build_report(fleet_size=args.size, ram_kb=args.ram_kb,
                                sweeps=args.sweeps, workers=args.workers)
    errors = validate_fleet_report(report)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    if args.out:
        fleet.write_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    equivalence = report["equivalence"]
    rows = [["quantity", "sequential", "parallel"],
            ["spin-up (s)",
             f"{report['spinup']['sequential_seconds']:.3f}",
             f"{report['spinup']['parallel_seconds']:.3f}"],
            ["sweep wall-clock (s)",
             f"{report['sequential']['sweep_seconds']:.3f}",
             f"{report['parallel']['sweep_seconds']:.3f}"],
            ["devices / second",
             f"{report['sequential']['devices_per_second']:.0f}",
             f"{report['parallel']['devices_per_second']:.0f}"]]
    print(render_table(
        rows, title=f"Fleet bench: {report['fleet_size']} members, "
                    f"{report['workers']} workers, "
                    f"{report['sweeps']} sweep(s)"))
    cache = report["cache"]
    print(f"\nsweep speedup: {report['speedup']:.2f}x   "
          f"digest cache: {cache['hits']} hits / {cache['misses']} misses")
    print(f"reports identical: {report['reports_identical']}   "
          f"equivalence clean: {equivalence['identical']}")
    return 0 if equivalence["identical"] else 1


def _cmd_incremental_bench(args) -> int:
    """Dirty-region incremental sweeps vs full walks on an OTA fleet."""
    import json

    from .obs.schema import validate_incremental_report
    from .perf import incremental

    kwargs = {}
    if args.dirty:
        kwargs["dirty_fractions"] = tuple(args.dirty)
    report = incremental.build_report(fleet_size=args.size,
                                      ram_kb=args.ram_kb,
                                      sweeps=args.sweeps,
                                      chunk_size=args.chunk_size,
                                      **kwargs)
    errors = validate_incremental_report(report)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    if args.out:
        incremental.write_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    rows = [["dirty", "dirty KB", "full (s)", "incremental (s)", "speedup"]]
    for point in report["points"]:
        rows.append([f"{point['dirty_fraction']:.0%}",
                     str(point["dirty_kb"]),
                     f"{point['full_seconds']:.3f}",
                     f"{point['incremental_seconds']:.3f}",
                     f"{point['speedup']:.2f}x"])
    print(render_table(
        rows, title=f"Incremental bench: {report['fleet_size']} members, "
                    f"{report['writable_kb']} KB writable, "
                    f"{report['sweeps']} timed sweep(s)"))
    gate = report["gate"]
    equivalence = report["equivalence"]
    print(f"\ngate: {gate['speedup']:.2f}x at "
          f"{gate['dirty_fraction']:.0%} dirty "
          f"(threshold {gate['threshold']:.1f}x) -> "
          f"{'pass' if gate['passed'] else 'FAIL'}")
    print(f"equivalence clean: {equivalence['identical']}")
    return 0 if gate["passed"] and equivalence["identical"] else 1


def _report_rows(report) -> list:
    return [["quantity", "value"],
            ["attempted", str(report.attempted)],
            ["trusted", str(report.trusted)],
            ["untrusted", str(len(report.untrusted))],
            ["no response", str(len(report.no_response))],
            ["refused", str(len(report.refused))],
            ["skipped (quarantined)", str(len(report.skipped_quarantined))],
            ["retries", str(report.retries)],
            ["fleet energy (mJ)", f"{report.fleet_energy_mj:.4f}"],
            ["sweep seconds (simulated)", f"{report.sweep_seconds:.3f}"]]


def _restore_from_chain(documents: list, spec: dict):
    """Rebuild the spec'd swarm and restore the chain's tip state."""
    from .snapshot import build_swarm_from_spec, materialize_chain

    document = (documents[0] if len(documents) == 1
                else materialize_chain(documents))
    swarm = build_swarm_from_spec(spec)
    swarm.restore(document)
    return swarm


def _verify_saved(path: str, swarm) -> list:
    """Reload ``path`` from disk into a fresh fleet and name any field
    that differs from the live ``swarm`` that was just checkpointed."""
    import json

    from .snapshot import load_chain

    documents = load_chain(path)
    spec = (documents[-1].get("meta") or {}).get("spec")
    checked = _restore_from_chain(documents, spec)
    mismatched = []
    if (json.dumps(checked.merged_registry().dump(), sort_keys=True)
            != json.dumps(swarm.merged_registry().dump(), sort_keys=True)):
        mismatched.append("registry")
    if checked.freshness_fingerprint() != swarm.freshness_fingerprint():
        mismatched.append("freshness_fingerprint")
    if checked.device_states() != swarm.device_states():
        mismatched.append("device_states")
    return mismatched


def _cmd_snapshot_save(args) -> int:
    """Run a fleet for a few sweeps, then checkpoint it to a file.

    With ``--parent`` the fleet resumes from that checkpoint (itself
    full or delta) and the new file is a ``repro.snapshot.delta/v1``
    document recording only the chunks dirtied since the parent, with
    ``meta.parent_path`` linking the chain for ``compact``/``bisect``.
    """
    from .errors import SnapshotError
    from .snapshot import (build_swarm_from_spec, load_chain,
                           save_document, swarm_spec)

    if args.delta and args.parent is None:
        print("error: --delta needs --parent (the checkpoint to diff "
              "against)", file=sys.stderr)
        return 1
    try:
        if args.parent is not None:
            chain = load_chain(args.parent)
            spec = (chain[-1].get("meta") or {}).get("spec")
            if spec is None:
                raise SnapshotError(
                    f"{args.parent} has no embedded rebuild spec; it was "
                    f"not written by 'repro snapshot save'")
            if not spec.get("incremental"):
                raise SnapshotError(
                    "delta capture needs digest trees: re-save the parent "
                    "with 'repro snapshot save --incremental'")
            swarm = _restore_from_chain(chain, spec)
            parent_doc = chain[-1]
        else:
            spec = swarm_spec(size=args.size, profile=args.profile,
                              auth_scheme=args.scheme, policy=args.policy,
                              ram_kb=args.ram_kb, retry=args.retry,
                              faults=args.faults,
                              incremental=args.incremental,
                              stagger_seconds=args.stagger, seed=args.seed)
            swarm = build_swarm_from_spec(spec)
            parent_doc = None
        report = None
        for _ in range(args.sweeps):
            report = swarm.sweep(stagger_seconds=spec["stagger_seconds"])
        if parent_doc is not None:
            document = swarm.snapshot(parent=parent_doc)
            document["meta"] = {"spec": spec, "parent_path": args.parent}
        else:
            document = swarm.snapshot()
            document["meta"] = {"spec": spec}
        save_document(document, args.out)
    except (SnapshotError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    blobs = document["blobs"]
    flavour = "delta blob(s)" if parent_doc is not None \
        else "unique memory image(s)"
    print(f"wrote {args.out}: {len(swarm)} member(s), "
          f"{swarm.sweeps_run} sweep(s), {len(blobs)} {flavour}",
          file=sys.stderr)
    if args.verify:
        mismatched = _verify_saved(args.out, swarm)
        if mismatched:
            print(f"verify FAILED: restored state differs in "
                  f"{', '.join(mismatched)}", file=sys.stderr)
            return 1
        print("verify: restored fleet matches the live one",
              file=sys.stderr)
    if report is not None:
        print(render_table(_report_rows(report),
                           title=f"Sweep {swarm.sweeps_run} at checkpoint"))
    return 0


def _load_snapshot_swarm(path: str):
    """Rebuild the checkpointed fleet from the spec embedded in a file.

    Delta checkpoints are folded into a full document first (following
    ``meta.parent_path`` links), so every downstream flow sees exactly
    the state a full snapshot of the same instant would carry.
    """
    from .errors import SnapshotError
    from .snapshot import (build_swarm_from_spec, load_chain,
                           materialize_chain)

    documents = load_chain(path)
    document = (documents[0] if len(documents) == 1
                else materialize_chain(documents))
    meta = document.get("meta") or {}
    if "spec" not in meta:
        raise SnapshotError(
            f"{path} has no embedded rebuild spec; it was not written by "
            f"'repro snapshot save'")
    return document, meta["spec"], build_swarm_from_spec(meta["spec"])


def _cmd_snapshot_restore(args) -> int:
    """Resume a checkpointed fleet and run more sweeps."""
    import json

    from .errors import SnapshotError

    try:
        document, spec, swarm = _load_snapshot_swarm(args.file)
        swarm.restore(document)
    except (SnapshotError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    resumed_at = swarm.sweeps_run
    report = None
    for _ in range(args.sweeps):
        report = swarm.sweep(stagger_seconds=spec["stagger_seconds"])
    if args.json:
        payload = {"resumed_at_sweep": resumed_at,
                   "sweeps_run": swarm.sweeps_run,
                   "device_states": swarm.device_states(),
                   "total_attestations": swarm.total_attestations(),
                   "registry": swarm.merged_registry().dump()}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print(f"restored {args.file}: {len(swarm)} member(s) at sweep "
          f"{resumed_at}, ran {args.sweeps} more", file=sys.stderr)
    if report is not None:
        print(render_table(_report_rows(report),
                           title=f"Sweep {swarm.sweeps_run} after restore"))
    states = swarm.device_states()
    healthy = sum(1 for state in states.values() if state == "healthy")
    print(f"\ndevices: {healthy}/{len(states)} healthy, "
          f"{swarm.total_attestations()} total attestations")
    return 0


def _cmd_snapshot_replay(args) -> int:
    """Restore a checkpoint and re-drive it to an exact trace event."""
    import json

    from .errors import SnapshotError

    try:
        document, spec, swarm = _load_snapshot_swarm(args.file)
        records = swarm.replay_to_seq(
            document, args.seq, stagger_seconds=spec["stagger_seconds"],
            max_sweeps=args.max_sweeps)
    except (SnapshotError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    tail = records if args.tail is None else records[-args.tail:]
    for record in tail:
        print(json.dumps(record, sort_keys=True))
    print(f"# replayed to seq {args.seq}: {len(records)} event(s), "
          f"showing {len(tail)}", file=sys.stderr)
    return 0


def _cmd_snapshot_compact(args) -> int:
    """Squash a delta chain into one standalone full checkpoint."""
    from .errors import SnapshotError
    from .snapshot import compact_chain, load_chain, save_document

    try:
        documents = load_chain(args.file)
        if len(documents) == 1:
            print(f"error: {args.file} is already a full snapshot",
                  file=sys.stderr)
            return 1
        compacted = compact_chain(documents)
        save_document(compacted, args.out)
    except (SnapshotError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"wrote {args.out}: {len(documents)} chain document(s) folded, "
          f"{len(compacted['blobs'])} unique memory image(s)",
          file=sys.stderr)
    return 0


def _match_predicate(pairs: list):
    """Build a trace-record predicate from ``KEY=VALUE`` args (every
    pair must match; values compare against ``str(record[key])``)."""
    matches = []
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--match needs KEY=VALUE, got {pair!r}")
        matches.append((key, value))
    return lambda record: all(str(record.get(key)) == value
                              for key, value in matches)


def _cmd_snapshot_bisect(args) -> int:
    """Binary-search a run's event trace for the first matching record."""
    import json

    from .errors import SnapshotError
    from .snapshot import bisect_replay, load_document

    try:
        predicate = _match_predicate(args.match)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        documents = [load_document(path) for path in args.files]
        meta = documents[0].get("meta") or {}
        if "spec" not in meta:
            raise SnapshotError(
                f"{args.files[0]} has no embedded rebuild spec; it was "
                f"not written by 'repro snapshot save'")
        from .snapshot import build_swarm_from_spec
        spec = meta["spec"]
        swarm = build_swarm_from_spec(spec)
        result = bisect_replay(swarm, documents, predicate,
                               stagger_seconds=spec["stagger_seconds"],
                               hi=args.hi, max_sweeps=args.max_sweeps)
    except (SnapshotError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(result, indent=2, sort_keys=True))
    print(f"# first match at seq {result['seq']} after "
          f"{result['probes']} probe(s), {result['events_replayed']} "
          f"event(s) replayed", file=sys.stderr)
    return 0


def _cmd_snapshot_bench(args) -> int:
    """Chained delta checkpoints vs full snapshots on an OTA fleet."""
    import json

    from .obs.schema import validate_snapshot_report
    from .perf import snapshot as perf_snapshot

    report = perf_snapshot.build_report(fleet_size=args.size,
                                        ram_kb=args.ram_kb,
                                        rounds=args.rounds,
                                        workers=args.workers,
                                        chunk_size=args.chunk_size)
    errors = validate_snapshot_report(report)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    if args.out:
        perf_snapshot.write_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0
    rows = [["dirty", "content", "full (s)", "delta (s)", "speedup",
             "bytes saved"]]
    for point in report["points"]:
        rows.append([f"{point['dirty_fraction']:.0%}",
                     "shared" if point["shared_content"] else "unique",
                     f"{point['full_seconds']:.3f}",
                     f"{point['delta_seconds']:.3f}",
                     f"{point['speedup']:.2f}x",
                     f"{point['bytes_reduction']:.1f}x"])
    print(render_table(
        rows, title=f"Snapshot bench: {report['fleet_size']} members, "
                    f"{report['workers']} workers, "
                    f"{report['rounds']} timed round(s)"))
    gate = report["gate"]
    equivalence = report["equivalence"]
    print(f"\ngate: {gate['speedup']:.2f}x wall-clock / "
          f"{gate['bytes_reduction']:.1f}x bytes at "
          f"{gate['dirty_fraction']:.0%} dirty (thresholds "
          f"{gate['speedup_threshold']:.1f}x / "
          f"{gate['bytes_threshold']:.1f}x) -> "
          f"{'pass' if gate['passed'] else 'FAIL'}")
    print(f"equivalence clean: {equivalence['identical']}")
    return 0 if gate["passed"] and equivalence["identical"] else 1


def _cmd_serve(args) -> int:
    """Run the multi-tenant verifier service over a seeded schedule."""
    import json

    from .errors import SnapshotError
    from .services.attestd import (build_schedule, build_service_from_spec,
                                   service_spec)
    from .snapshot import load_document, save_document

    try:
        if args.restore:
            document = load_document(args.restore)
            meta = document.get("meta", {})
            if "spec" not in meta:
                raise SnapshotError(
                    f"{args.restore} has no embedded rebuild spec; it was "
                    f"not written by 'repro serve --snapshot'")
            spec = meta["spec"]
            service = build_service_from_spec(spec)
            service.restore(document)
        else:
            spec = service_spec(size=args.devices, tenants=args.tenants,
                                backends=args.backends,
                                duty_fraction=args.duty,
                                burst_seconds=args.burst, seed=args.seed)
            service = build_service_from_spec(spec)
    except (SnapshotError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    start = service.virtual_now + (args.spacing if args.restore else 0.0)
    schedule = build_schedule(spec["size"], waves=args.waves,
                              spacing_seconds=args.spacing,
                              start_seconds=start,
                              seed=f"{spec['seed']}:schedule")
    records = service.serve_schedule(schedule, workers=args.workers)
    verdicts: dict = {}
    for record in records:
        verdicts[record.verdict] = verdicts.get(record.verdict, 0) + 1
    if args.snapshot:
        document = service.snapshot()
        document["meta"] = {"spec": spec}
        save_document(document, args.snapshot)
        print(f"wrote {args.snapshot}: {len(service)} device(s) at "
              f"virtual t={service.virtual_now:.0f}s", file=sys.stderr)
    if args.json:
        payload = {"spec": spec, "offered": len(schedule),
                   "admitted": service.admitted,
                   "rejected": service.rejected,
                   "peak_in_flight": service.peak_in_flight,
                   "verdicts": verdicts,
                   "buckets": {tenant: bucket.tokens for tenant, bucket
                               in service.buckets.items()},
                   "registry": service.merged_registry().dump()}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    rows = [["quantity", "value"],
            ["devices / tenants / backends",
             f"{spec['size']} / {spec['tenants']} / {spec['backends']}"],
            ["offered", str(len(schedule))],
            ["admitted", str(service.admitted)],
            ["rejected (duty budget)", str(service.rejected)],
            ["peak sessions in flight", str(service.peak_in_flight)]]
    for verdict in sorted(verdicts):
        rows.append([f"verdict: {verdict}", str(verdicts[verdict])])
    print(render_table(rows, title=f"attestd: {args.waves} wave(s), "
                                   f"duty {spec['duty_fraction']:.2%} "
                                   f"per tenant device"))
    return 0


def _cmd_service_bench(args) -> int:
    """Service-tier load benchmark vs the sequential library path."""
    import json

    from .obs.schema import validate_service_report
    from .perf import service as perf_service

    report = perf_service.build_report(size=args.size, tenants=args.tenants,
                                       backends=args.backends,
                                       duty_fraction=args.duty)
    errors = validate_service_report(report)
    if errors:
        for error in errors:
            print(error, file=sys.stderr)
        return 1
    if args.out:
        perf_service.write_report(report, args.out)
        print(f"wrote {args.out}", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
        return 0 if report["gate"]["passed"] else 1
    rows = [["point", "offered", "admitted", "rejected", "in flight",
             "sessions/s", "p99 (ms)"]]
    for label, point in zip(("paced", "overload", "burst"),
                            report["points"]):
        rows.append([label, str(point["offered"]), str(point["admitted"]),
                     str(point["rejected"]), str(point["peak_in_flight"]),
                     f"{point['sessions_per_second']:.0f}",
                     f"{point['p99_latency_ms']:.1f}"])
    print(render_table(
        rows, title=f"Service bench: {report['size']} devices, "
                    f"{report['tenants']} tenants, "
                    f"{report['backends']} backends"))
    gate = report["gate"]
    equivalence = report["equivalence"]
    print(f"\ngate: {gate['max_peak_in_flight']} sessions in flight "
          f"(needs >= {gate['required_in_flight']}) -> "
          f"{'pass' if gate['passed'] else 'FAIL'}")
    print(f"equivalence clean: {equivalence['identical']}")
    return 0 if gate["passed"] and equivalence["identical"] else 1


def _cmd_report(args) -> int:
    """Aggregate benchmarks/results/*.txt into one markdown report."""
    import pathlib

    results = pathlib.Path(args.results_dir)
    if not results.is_dir():
        print(f"no results directory at {results}; run "
              f"'pytest benchmarks/ --benchmark-only' first",
              file=sys.stderr)
        return 1
    files = sorted(results.glob("*.txt"))
    if not files:
        print(f"no result files in {results}", file=sys.stderr)
        return 1
    sections = ["# Experiment report",
                "",
                f"Aggregated from {len(files)} result files in "
                f"`{results}`.  Regenerate with "
                f"`pytest benchmarks/ --benchmark-only`.",
                ""]
    for path in files:
        sections.append(f"## {path.stem.replace('_', ' ')}")
        sections.append("")
        sections.append("```")
        sections.append(path.read_text().rstrip())
        sections.append("```")
        sections.append("")
    output = "\n".join(sections)
    if args.output:
        pathlib.Path(args.output).write_text(output)
        print(f"wrote {args.output} ({len(files)} sections)")
    else:
        print(output)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce 'Remote Attestation for Low-End Embedded "
                    "Devices: the Prover's Perspective' (DAC 2016)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="crypto primitive costs")
    p.add_argument("--mhz", type=int, default=24)
    p.add_argument("--ram-kb", type=int, default=512)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("table2", help="attack-vs-feature matrix")
    p.add_argument("--model-check", action="store_true",
                   help="derive via exhaustive schedule enumeration")
    p.add_argument("--strict", action="store_true",
                   help="unrestricted adversary (with --model-check)")
    p.set_defaults(fn=_cmd_table2)

    p = sub.add_parser("table3", help="hardware component costs")
    p.set_defaults(fn=_cmd_table3)

    p = sub.add_parser("overhead", help="Section 6.3 overheads and clocks")
    p.set_defaults(fn=_cmd_overhead)

    p = sub.add_parser("roam", help="Section 5 roaming adversary grid")
    p.add_argument("--clock", action="append",
                   choices=["hw64", "hw32div", "sw"],
                   help="clock designs to attack (repeatable)")
    p.set_defaults(fn=_cmd_roam)

    p = sub.add_parser("flood", help="forged-request DoS flood")
    p.add_argument("--rate", type=float, default=0.5)
    p.add_argument("--duration", type=float, default=60.0)
    p.add_argument("--ram-kb", type=int, default=16)
    p.set_defaults(fn=_cmd_flood)

    p = sub.add_parser("attest", help="one end-to-end attestation round")
    p.add_argument("--ram-kb", type=int, default=64)
    p.add_argument("--scheme", default="speck-64/128-cbc-mac",
                   choices=["none", "speck-64/128-cbc-mac",
                            "aes-128-cbc-mac", "hmac-sha1",
                            "ecdsa-secp160r1"])
    p.add_argument("--policy", default="counter",
                   choices=["none", "nonce", "counter", "timestamp"])
    p.add_argument("--json", action="store_true",
                   help="emit a machine-readable session summary")
    p.set_defaults(fn=_cmd_attest)

    p = sub.add_parser("metrics",
                       help="telemetry export + registry/stats cross-check")
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--ram-kb", type=int, default=64)
    p.add_argument("--scheme", default="speck-64/128-cbc-mac",
                   choices=["none", "speck-64/128-cbc-mac",
                            "aes-128-cbc-mac", "hmac-sha1",
                            "ecdsa-secp160r1"])
    p.add_argument("--policy", default="counter",
                   choices=["none", "nonce", "counter", "timestamp"])
    p.add_argument("--trace-out", default=None,
                   help="write the JSON-lines trace to a file")
    p.add_argument("--registry-out", default=None,
                   help="write the registry dump JSON to a file")
    p.set_defaults(fn=_cmd_metrics)

    p = sub.add_parser("modelcheck",
                       help="exhaustive freshness-policy verification")
    p.add_argument("--requests", type=int, default=3)
    p.set_defaults(fn=_cmd_modelcheck)

    p = sub.add_parser("swatt",
                       help="software-attestation baseline vs topology")
    p.add_argument("--trials", type=int, default=8)
    p.add_argument("--iterations", type=int, default=8000)
    p.set_defaults(fn=_cmd_swatt)

    p = sub.add_parser("verify-profile",
                       help="static EA-MPU protection-invariant verifier")
    p.add_argument("--profile", default=None,
                   choices=["unprotected", "baseline", "ext-hardened",
                            "roam-hardened"],
                   help="verify one profile instead of all four")
    p.add_argument("--clock", action="append",
                   choices=["hw64", "hw32div", "sw", "none"],
                   help="clock designs to verify under (repeatable; "
                        "default hw64 and sw)")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable profile reports")
    p.set_defaults(fn=_cmd_verify_profile)

    p = sub.add_parser("lint",
                       help="determinism/consistency lint over the repo")
    p.add_argument("paths", nargs="*",
                   help="directories to scan, relative to --root "
                        "(default: src scripts benchmarks examples tests)")
    p.add_argument("--root", default=".",
                   help="repository root the scan is relative to")
    p.add_argument("--waivers", default="lint-waivers.json",
                   help="waiver list, relative to --root")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable lint report")
    p.add_argument("--allow-stale", action="store_true",
                   help="do not fail on waivers matching no violation")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser("taint",
                       help="key-confidentiality taint analysis over "
                            "src/repro (KEY001/KEY002/KEY003)")
    p.add_argument("--root", default=".",
                   help="repository root the scan is relative to")
    p.add_argument("--policy", default="taint-policy.json",
                   help="declared-sink policy file, relative to --root")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable taint report")
    p.add_argument("--allow-stale", action="store_true",
                   help="do not fail on policy entries matching no sink")
    p.add_argument("--canary", action="store_true",
                   help="also run the dynamic canary leak-hunt")
    p.set_defaults(fn=_cmd_taint)

    p = sub.add_parser("analyze",
                       help="invariants + lint + taint in one merged "
                            "deterministic analysis document")
    p.add_argument("--root", default=".",
                   help="repository root the scan is relative to")
    p.add_argument("--waivers", default="lint-waivers.json",
                   help="lint waiver list, relative to --root")
    p.add_argument("--policy", default="taint-policy.json",
                   help="taint policy file, relative to --root")
    p.add_argument("--out", default=None,
                   help="write the document here instead of stdout")
    p.add_argument("--allow-stale", action="store_true",
                   help="do not fail on stale waivers/policy entries")
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser("fleet-bench",
                       help="sharded parallel fleet sweep vs sequential")
    p.add_argument("--size", type=int, default=24,
                   help="fleet size (default 24; the CI gate runs 256)")
    p.add_argument("--ram-kb", type=int, default=256,
                   help="per-member RAM in KB")
    p.add_argument("--sweeps", type=int, default=2,
                   help="timed sweeps per path")
    p.add_argument("--workers", type=int, default=None,
                   help="shard workers (default: REPRO_FLEET_WORKERS "
                        "or the CPU count)")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable fleet report")
    p.add_argument("--out", default=None,
                   help="also write the JSON report to a file")
    p.set_defaults(fn=_cmd_fleet_bench)

    p = sub.add_parser("incremental-bench",
                       help="dirty-region incremental sweeps vs full walks")
    p.add_argument("--size", type=int, default=24,
                   help="fleet size (default 24; the CI gate runs 256)")
    p.add_argument("--ram-kb", type=int, default=256,
                   help="per-member RAM in KB (flash sized to match)")
    p.add_argument("--sweeps", type=int, default=2,
                   help="timed update+sweep rounds per path")
    p.add_argument("--dirty", type=float, action="append", default=None,
                   metavar="FRACTION",
                   help="dirty fraction to measure (repeatable; default "
                        "0.02 0.05 0.10 0.25 0.50)")
    p.add_argument("--chunk-size", type=int, default=4096,
                   help="digest-tree leaf chunk size in bytes")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable incremental report")
    p.add_argument("--out", default=None,
                   help="also write the JSON report to a file")
    p.set_defaults(fn=_cmd_incremental_bench)

    p = sub.add_parser("serve",
                       help="multi-tenant verifier service over a schedule")
    p.add_argument("--devices", type=int, default=12,
                   help="fleet size (ignored with --restore)")
    p.add_argument("--tenants", type=int, default=4)
    p.add_argument("--backends", type=int, default=4,
                   help="shard backends on the consistent-hash ring")
    p.add_argument("--duty", type=float, default=0.01,
                   help="per-tenant duty-cycle fraction (Section 3.1)")
    p.add_argument("--burst", type=float, default=600.0,
                   help="token-bucket burst window in prover-seconds")
    p.add_argument("--waves", type=int, default=3,
                   help="request waves; each wave arrives at one instant")
    p.add_argument("--spacing", type=float, default=60.0,
                   help="virtual seconds between waves")
    p.add_argument("--workers", type=int, default=1,
                   help="async workers per backend")
    p.add_argument("--seed", default="attestd")
    p.add_argument("--snapshot", default=None, metavar="FILE",
                   help="checkpoint the service after serving")
    p.add_argument("--restore", default=None, metavar="FILE",
                   help="resume a 'serve --snapshot' checkpoint")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable state instead of a table")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser("service-bench",
                       help="verifier-service load benchmark + gates")
    p.add_argument("--size", type=int, default=1024,
                   help="devices in the burst load point")
    p.add_argument("--tenants", type=int, default=4)
    p.add_argument("--backends", type=int, default=8)
    p.add_argument("--duty", type=float, default=0.01)
    p.add_argument("--out", default=None,
                   help="also write the JSON report to a file")
    p.add_argument("--json", action="store_true",
                   help="emit the machine-readable service report")
    p.set_defaults(fn=_cmd_service_bench)

    p = sub.add_parser("report",
                       help="aggregate benchmark results into markdown")
    p.add_argument("--results-dir", default="benchmarks/results")
    p.add_argument("--output", default=None,
                   help="write to a file instead of stdout")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("snapshot",
                       help="checkpoint, restore, and replay fleets")
    snap = p.add_subparsers(dest="action", required=True)

    p = snap.add_parser("save", help="run a fleet, checkpoint it to a file")
    p.add_argument("--out", required=True, help="checkpoint file to write")
    p.add_argument("--size", type=int, default=8)
    p.add_argument("--sweeps", type=int, default=2,
                   help="sweeps to run before checkpointing")
    p.add_argument("--profile", default="roam-hardened")
    p.add_argument("--scheme", default="speck-64/128-cbc-mac")
    p.add_argument("--policy", default="counter",
                   choices=["counter", "nonce", "timestamp"])
    p.add_argument("--ram-kb", type=int, default=16)
    p.add_argument("--retry", action="store_true",
                   help="enable the fleet-wide retry policy")
    p.add_argument("--faults", action="store_true",
                   help="attach the lossy-link fault pipeline")
    p.add_argument("--stagger", type=float, default=0.0)
    p.add_argument("--seed", default="cli-snapshot")
    p.add_argument("--incremental", action="store_true",
                   help="attach digest trees (required for later "
                        "--parent delta saves)")
    p.add_argument("--delta", action="store_true",
                   help="write a delta checkpoint (requires --parent)")
    p.add_argument("--parent", default=None, metavar="FILE",
                   help="resume this checkpoint and write a delta "
                        "against it instead of a full snapshot")
    p.add_argument("--verify", action="store_true",
                   help="restore the written file into a fresh fleet "
                        "and compare it against the live one")
    p.set_defaults(fn=_cmd_snapshot_save)

    p = snap.add_parser("restore",
                        help="resume a checkpoint, run more sweeps")
    p.add_argument("file", help="checkpoint file from 'snapshot save'")
    p.add_argument("--sweeps", type=int, default=1,
                   help="sweeps to run after restoring")
    p.add_argument("--json", action="store_true",
                   help="emit machine-readable state instead of tables")
    p.set_defaults(fn=_cmd_snapshot_restore)

    p = snap.add_parser("replay",
                        help="re-drive a checkpoint to an exact event")
    p.add_argument("file", help="checkpoint file from 'snapshot save'")
    p.add_argument("--seq", type=int, required=True,
                   help="trace sequence number to replay through")
    p.add_argument("--max-sweeps", type=int, default=64)
    p.add_argument("--tail", type=int, default=None,
                   help="print only the last N replayed events")
    p.set_defaults(fn=_cmd_snapshot_replay)

    p = snap.add_parser("compact",
                        help="squash a delta chain into one full file")
    p.add_argument("file", help="tip of a delta chain from "
                                "'snapshot save --parent'")
    p.add_argument("--out", required=True, help="full checkpoint to write")
    p.set_defaults(fn=_cmd_snapshot_compact)

    p = snap.add_parser("bisect",
                        help="binary-search a run for the first matching "
                             "trace event")
    p.add_argument("files", nargs="+",
                   help="checkpoint files along one run, oldest first "
                        "(deltas must chain to their predecessor)")
    p.add_argument("--match", action="append", required=True,
                   metavar="KEY=VALUE",
                   help="record field to match (repeatable; all must "
                        "match)")
    p.add_argument("--hi", type=int, default=None,
                   help="known upper-bound seq (skips the forward scan)")
    p.add_argument("--max-sweeps", type=int, default=64)
    p.set_defaults(fn=_cmd_snapshot_bisect)

    p = sub.add_parser("snapshot-bench",
                       help="delta checkpoints vs full snapshots under "
                            "an OTA campaign")
    p.add_argument("--size", type=int, default=256)
    p.add_argument("--ram-kb", type=int, default=64)
    p.add_argument("--rounds", type=int, default=2)
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--chunk-size", type=int, default=4096)
    p.add_argument("--out", default=None,
                   help="write the schema-validated JSON report here")
    p.add_argument("--json", action="store_true",
                   help="print the full report as JSON")
    p.set_defaults(fn=_cmd_snapshot_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
