#!/usr/bin/env python
"""Smoke-test the static-analysis layer end to end.

Four gates -- any failure exits 1 with diagnostics:

1. **Ground truth** -- statically verifying all four shipped profiles
   (under both a hardware and the software clock) must reproduce the
   expected failure sets: ``roam-hardened`` passes every invariant, the
   weaker profiles fail exactly the invariants whose roaming attacks
   succeed against them.
2. **Clean tree** -- ``repro lint`` (run through the real CLI) must exit
   0 on the repository with only the checked-in waivers.
3. **Determinism** -- building the combined ``repro.analysis/v1`` JSON
   report twice from the same inputs must produce byte-identical text,
   and the report must validate against the exported schema.
4. **Failure mode** -- linting the deliberately tainted fixture tree
   must flag every seeded rule (DET001, DET002, FLT001, TEL001); a
   linter that cannot see planted violations proves nothing.

Usage::

    PYTHONPATH=src python scripts/analysis_smoke.py
        [--lint-root tests/analysis/fixtures/seeded]
"""

import argparse
import pathlib
import subprocess
import sys

REPO = pathlib.Path(__file__).resolve().parents[1]

SEEDED_RULES = {"DET001", "DET002", "FLT001", "TEL001"}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--lint-root",
                        default="tests/analysis/fixtures/seeded",
                        help="tainted tree for the failure-mode gate, "
                             "relative to the repo root")
    args = parser.parse_args(argv)

    try:
        from repro.analysis import (build_report, expected_failures,
                                    lint_tree, load_waivers,
                                    render_report_json,
                                    verify_shipped_profiles)
    except ImportError as exc:
        print(f"analysis-smoke: cannot import repro ({exc}); "
              f"run with PYTHONPATH=src", file=sys.stderr)
        return 1

    failures = []

    # Gate 1: static verdicts reproduce the dynamic ground truth.
    reports = verify_shipped_profiles(clock_kinds=("hw64", "sw"))
    for report in reports:
        expected = expected_failures(report.profile, report.clock_kind)
        if report.failed() != expected:
            failures.append(
                f"ground truth: {report.profile}/{report.clock_kind} "
                f"violated {sorted(report.failed())}, expected "
                f"{sorted(expected)}")

    # Gate 2: the shipped tree lints clean through the real CLI.
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "lint"], cwd=REPO,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True)
    if proc.returncode != 0:
        failures.append(f"clean tree: 'repro lint' exited "
                        f"{proc.returncode}:\n{proc.stdout}{proc.stderr}")

    # Gate 3: the combined report is schema-valid and byte-deterministic.
    waivers = load_waivers(REPO / "lint-waivers.json")
    try:
        first = render_report_json(
            build_report(reports, lint_tree(REPO, waivers=waivers)))
        second = render_report_json(
            build_report(verify_shipped_profiles(clock_kinds=("hw64", "sw")),
                         lint_tree(REPO, waivers=waivers)))
    except ValueError as exc:
        failures.append(f"schema: combined report invalid: {exc}")
        first = second = ""
    if first != second:
        failures.append("determinism: two same-input report builds "
                        "differ byte-for-byte")

    # Gate 4: the tainted fixture tree is actually flagged.
    tainted = lint_tree(REPO / args.lint_root)
    flagged = {v.rule for v in tainted.violations}
    missing = SEEDED_RULES - flagged
    if missing:
        failures.append(f"failure mode: seeded rules {sorted(missing)} "
                        f"not detected in {args.lint_root}")
    if tainted.clean:
        failures.append("failure mode: tainted tree linted clean")

    if failures:
        for failure in failures:
            print(f"analysis-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    secure = sum(1 for r in reports if r.holds)
    print(f"analysis-smoke: OK ({len(reports)} profile reports, "
          f"{secure} secure configurations, lint clean, report "
          f"deterministic at {len(first)} bytes, "
          f"{len(tainted.violations)} seeded violations detected)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
