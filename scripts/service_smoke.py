#!/usr/bin/env python
"""Smoke-test the multi-tenant verifier service end to end.

Four independent gates, any of which fails CI:

1. **Admission determinism** -- the same service spec and request
   schedule, served twice from scratch, must produce byte-identical
   request records, including every duty-budget rejection.  Admission
   is a pure function of the schedule's virtual arrival times; no host
   clock may leak into an accept/reject decision.
2. **Shard equivalence** -- the consistent-hash ring decides only
   *where* a session runs, never *what* it answers.  Serving the same
   schedule on services built with different backend counts must yield
   identical placement-free records, per-device freshness state and
   merged telemetry.
3. **Restore-continue** -- kill the service mid-load (snapshot after
   the first waves, JSON round trip, restore into a fresh build),
   continue with the remaining waves: records for the continuation,
   freshness and merged telemetry must match an uninterrupted run.
4. **Checked-in benchmark** -- ``BENCH_service.json`` at the repo root
   must validate against SERVICE_SCHEMA, with the >= 1000-session
   concurrency gate passed and the serviced/sequential equivalence
   check recorded as identical.

Exit status: 0 on success, 1 with diagnostics on any failure.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py [--size N]
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def service_view(service) -> dict:
    return {
        "freshness": service.freshness_fingerprint(),
        "registry": json.dumps(service.merged_registry().dump(),
                               sort_keys=True),
        "admitted": service.admitted,
        "rejected": service.rejected,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=16,
                        help="fleet size for the equivalence gates")
    parser.add_argument("--waves", type=int, default=4,
                        help="request waves per schedule")
    args = parser.parse_args(argv)

    try:
        from repro.services.attestd import (AttestationService,
                                            build_schedule)
        from repro.obs.schema import validate_service_report
    except Exception as exc:  # pragma: no cover - import-time breakage
        print(f"service-smoke: FAIL: cannot import repro: {exc}",
              file=sys.stderr)
        return 1

    failures = []

    def build(backends=3, seed="service-smoke"):
        # Duty budget tuned so the later waves overdraw it: both
        # admission outcomes must occur or the gates prove nothing.
        return AttestationService(args.size, tenants=3, backends=backends,
                                  duty_fraction=0.001, burst_seconds=30.0,
                                  observe=True, seed=seed)

    schedule = build_schedule(args.size, waves=args.waves,
                              spacing_seconds=30.0,
                              seed="service-smoke:schedule")

    # Gate 1: admission determinism across fresh builds.
    first = build()
    second = build()
    records_one = [r.fingerprint() for r in first.serve_schedule(schedule)]
    records_two = [r.fingerprint() for r in second.serve_schedule(schedule)]
    if records_one != records_two:
        failures.append("admission: identical spec+schedule produced "
                        "different request records")
    if first.rejected == 0:
        failures.append("admission: no rejections occurred; the duty "
                        "budget never bound and the gate proves nothing")
    if service_view(first) != service_view(second):
        failures.append("admission: freshness/telemetry diverge between "
                        "identical runs")

    # Gate 2: backend count must not change any answer.
    sharded = build(backends=7)
    records_sharded = [r.fingerprint()
                       for r in sharded.serve_schedule(schedule)]
    if records_sharded != records_one:
        failures.append("sharding: records differ between 3 and 7 "
                        "backends; placement leaked into verdicts")
    if service_view(sharded) != service_view(first):
        failures.append("sharding: freshness/telemetry differ between "
                        "3 and 7 backends")

    # Gate 3: kill mid-load, restore, continue == uninterrupted.
    split = max(1, args.waves // 2)
    head = [r for r in schedule if r.arrival_seconds < split * 30.0]
    tail = [r for r in schedule if r.arrival_seconds >= split * 30.0]
    interrupted = build()
    interrupted.serve_schedule(head)
    document = json.loads(json.dumps(interrupted.snapshot()))
    resumed = build()
    resumed.restore(document)
    resumed_records = [r.fingerprint()
                       for r in resumed.serve_schedule(tail)]
    expected_tail = records_one[len(head):]
    if resumed_records != expected_tail:
        failures.append("restore: continuation records differ from the "
                        "uninterrupted run")
    if service_view(resumed) != service_view(first):
        failures.append("restore: freshness/telemetry diverge from the "
                        "uninterrupted run")

    # Gate 4: the checked-in benchmark artefact is schema-valid and
    # its own gates passed when it was generated.
    bench_path = REPO_ROOT / "BENCH_service.json"
    try:
        report = json.loads(bench_path.read_text())
    except OSError as exc:
        failures.append(f"bench: cannot read {bench_path}: {exc}")
    else:
        errors = validate_service_report(report)
        for error in errors:
            failures.append(f"bench: schema violation: {error}")
        if not errors:
            if not report["gate"]["passed"]:
                failures.append(
                    "bench: checked-in report failed its own "
                    f"concurrency gate ({report['gate']})")
            if not report["equivalence"]["identical"]:
                failures.append(
                    "bench: checked-in report records a serviced/"
                    "sequential divergence")

    if failures:
        for failure in failures:
            print(f"service-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"service-smoke: OK (deterministic admission with "
          f"{first.rejected} rejections at size {args.size}, shard "
          f"count invisible, restore-continue exact, BENCH_service.json "
          f"schema-valid)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
