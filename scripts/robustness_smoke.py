#!/usr/bin/env python
"""Smoke-test the robustness layer end to end.

A seeded end-to-end run over a faulty channel (Bernoulli loss composed
with latency jitter and duplication), attested under a
:class:`~repro.core.resilience.RetryPolicy`, with four gates -- any
failure exits 1 with diagnostics:

1. **Success rate** -- with a 20% loss model and a 5-attempt retry
   budget the run must still verify at least ``--min-ok`` of its rounds
   (retries are the whole point of the layer).
2. **Telemetry invariants** -- the drop/duplicate/timeout/retry/backoff
   counters must be present and mutually consistent with the channel's
   own accounting (`sent`, `delivered`, `dropped`, `duplicated`), and
   the exported trace must validate against the event schema.
3. **Determinism** -- a second run with the same seed must produce a
   byte-identical transcript, trace and registry dump.
4. **Pay-as-you-go** -- a run with *no* fault model must record zero
   robustness counters (no drops, duplicates, timeouts or retries).

Usage::

    PYTHONPATH=src python scripts/robustness_smoke.py [--loss 0.2]
        [--rounds 6] [--seed robustness] [--min-ok 4]
"""

import argparse
import sys


def run_campaign(*, loss: float, rounds: int, seed: str):
    """One seeded lossy campaign; returns everything the gates inspect."""
    from repro.core import build_session
    from repro.core.resilience import RetryPolicy
    from repro.crypto.rng import DeterministicRng
    from repro.mcu import DeviceConfig
    from repro.net.faults import (BernoulliLoss, Duplicator, FaultPipeline,
                                  LatencyJitter)
    from repro.obs.telemetry import Telemetry

    adversary = None
    if loss > 0:
        adversary = FaultPipeline(
            BernoulliLoss(loss, seed=f"{seed}-loss"),
            LatencyJitter(0.02, seed=f"{seed}-jitter"),
            Duplicator(0.25, duplicate_delay_seconds=0.1,
                       seed=f"{seed}-dup"))
    telemetry = Telemetry()
    session = build_session(
        device_config=DeviceConfig(ram_size=8 * 1024, flash_size=16 * 1024,
                                   app_size=2 * 1024),
        adversary=adversary, telemetry=telemetry, seed=seed)
    session.learn_reference_state()
    policy = RetryPolicy(attempt_timeout_seconds=2.0, max_retries=4,
                         base_backoff_seconds=0.25, backoff_factor=2.0,
                         jitter_fraction=0.1)
    backoff_rng = DeterministicRng(f"{seed}-backoff")
    ok = retries = timeouts = 0
    for _ in range(rounds):
        outcome = session.attest_resilient(policy, rng=backoff_rng)
        ok += 1 if outcome.trusted else 0
        retries += outcome.retries
        timeouts += outcome.timeouts
        session.sim.run(until=session.sim.now + 15.0)
    return {
        "ok": ok,
        "retries": retries,
        "timeouts": timeouts,
        "channel": session.channel,
        "transcript": [(e.time, e.sender, e.receiver, e.outcome,
                        type(e.message).__name__)
                       for e in session.channel.transcript],
        "trace_jsonl": telemetry.trace.to_jsonl(),
        "registry": telemetry.registry.dump(),
    }


def counter_value(registry: dict, name: str) -> float:
    total = 0
    for metric in registry["metrics"]:
        if metric["kind"] == "counter" and metric["name"] == name:
            total += metric["value"]
    return total


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--loss", type=float, default=0.2,
                        help="Bernoulli loss rate of the faulty run")
    parser.add_argument("--rounds", type=int, default=6,
                        help="attestation rounds per campaign")
    parser.add_argument("--seed", default="robustness-smoke")
    parser.add_argument("--min-ok", type=int, default=None,
                        help="minimum verified rounds (default: rounds - 1)")
    args = parser.parse_args(argv)
    min_ok = args.min_ok if args.min_ok is not None else args.rounds - 1

    try:
        from repro.obs.schema import validate_jsonl_trace, \
            validate_registry_dump
    except ImportError as exc:
        print(f"robustness-smoke: cannot import repro ({exc}); "
              f"run with PYTHONPATH=src", file=sys.stderr)
        return 1

    failures = []

    # Gate 1: a lossy campaign still verifies within its retry budget.
    lossy = run_campaign(loss=args.loss, rounds=args.rounds, seed=args.seed)
    if lossy["ok"] < min_ok:
        failures.append(f"success rate: {lossy['ok']}/{args.rounds} verified "
                        f"rounds, need >= {min_ok}")

    # Gate 2: telemetry counters exist and agree with channel accounting.
    channel = lossy["channel"]
    registry = lossy["registry"]
    schema_errors = (validate_registry_dump(registry)
                     + validate_jsonl_trace(lossy["trace_jsonl"]))
    for error in schema_errors:
        failures.append(f"schema: {error}")
    expectations = {
        "channel.dropped": channel.dropped,
        "channel.duplicated": channel.duplicated,
        "channel.delivered": channel.delivered,
        "session.timeouts": lossy["timeouts"],
        "session.retries": lossy["retries"],
        "verifier.timeouts": lossy["timeouts"],
    }
    for name, expected in expectations.items():
        actual = counter_value(registry, name)
        if actual != expected:
            failures.append(f"counter {name}: registry says {actual}, "
                            f"ground truth {expected}")
    if channel.dropped == 0:
        failures.append("lossy run recorded no drops -- fault model "
                        "not installed?")
    if channel.duplicated == 0:
        failures.append("lossy run recorded no duplicates")
    if lossy["timeouts"] == 0 or lossy["retries"] == 0:
        failures.append("lossy run recorded no timeouts/retries")
    sends = channel.transcript.filter(
        lambda e: e.outcome in ("forwarded", "delayed", "dropped"))
    if len(sends) != channel.delivered - channel.duplicated \
            + channel.dropped + channel.sim.pending:
        # Every send is forwarded (eventually delivered) or dropped;
        # duplicates add deliveries without sends.
        failures.append(
            f"conservation: {len(sends)} sends vs "
            f"{channel.delivered} delivered ({channel.duplicated} dup), "
            f"{channel.dropped} dropped, {channel.sim.pending} pending")

    # Gate 3: same seed => byte-identical replay.
    replay = run_campaign(loss=args.loss, rounds=args.rounds, seed=args.seed)
    for key in ("transcript", "trace_jsonl", "registry"):
        if lossy[key] != replay[key]:
            failures.append(f"determinism: {key} differs between two runs "
                            f"of seed {args.seed!r}")

    # Gate 4: no fault model => zero robustness counters.
    clean = run_campaign(loss=0.0, rounds=2, seed=args.seed + "-clean")
    for name in ("channel.dropped", "channel.duplicated",
                 "session.timeouts", "session.retries",
                 "session.backoff_seconds"):
        value = counter_value(clean["registry"], name)
        if value != 0:
            failures.append(f"pay-as-you-go: clean run has {name}={value}")
    if clean["ok"] != 2:
        failures.append(f"clean run verified {clean['ok']}/2 rounds")

    if failures:
        for failure in failures:
            print(f"robustness-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"robustness-smoke: OK ({lossy['ok']}/{args.rounds} verified at "
          f"{100 * args.loss:.0f}% loss, {lossy['retries']} retries, "
          f"{lossy['timeouts']} timeouts, {channel.dropped} drops, "
          f"{channel.duplicated} duplicates; deterministic replay clean)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
