#!/usr/bin/env python
"""Smoke-test the fleet-scale attestation engine end to end.

Three independent gates, any of which fails CI:

1. **Parallel == sequential** -- a fault-injected fleet (lossy jittery
   links, retries with backoff and jitter, telemetry on) swept by a
   sharded :class:`repro.perf.fleet.FleetEngine` must agree byte for
   byte with the sequential seed path: every ``SweepReport``, the final
   circuit-breaker states, total accepted attestations, the merged
   metrics registry dump and the merged event trace.
2. **Cache-hit spin-up** -- spinning a fleet up with one shared
   :class:`repro.mcu.statecache.StateDigestCache` must measure exactly
   one member and serve the rest from the cache (``misses == 1``,
   ``hits == size - 1`` -- the O(unique_configs * measure + N * cheap)
   claim, checked as exact arithmetic), and must not be slower than the
   uncached spin-up by more than the tolerance.
3. **Report validity** -- ``BENCH_fleet.json`` (regenerated at a small
   size into a scratch path by default) must match
   :data:`repro.obs.schema.FLEET_SCHEMA`, record a clean equivalence
   block, and record byte-identical sequential/parallel reports.

Exit status: 0 on success, 1 with diagnostics on any failure.

Usage::

    PYTHONPATH=src python scripts/fleet_smoke.py [--report PATH]
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", metavar="PATH", default=None,
                        help="existing BENCH_fleet.json to validate "
                             "(default: generate a small report in a "
                             "scratch directory)")
    parser.add_argument("--size", type=int, default=6,
                        help="fleet size for the equivalence gate")
    parser.add_argument("--workers", type=int, default=2,
                        help="shard workers for the equivalence gate")
    parser.add_argument("--spinup-size", type=int, default=8,
                        help="fleet size for the cached spin-up gate")
    args = parser.parse_args(argv)

    try:
        from repro.mcu.device import DeviceConfig
        from repro.mcu.statecache import StateDigestCache
        from repro.obs.schema import validate_fleet_report
        from repro.perf.fleet import (FleetSpec, build_report,
                                      default_equivalence_spec,
                                      equivalence_check, write_report)
    except ImportError as exc:
        print(f"fleet-smoke: cannot import repro ({exc}); "
              f"run with PYTHONPATH=src", file=sys.stderr)
        return 1

    failures = []

    # Gate 1: sharded parallel fleet == sequential seed path, under
    # faults, retries and telemetry.
    equivalence = equivalence_check(default_equivalence_spec(args.size),
                                    workers=args.workers, sweeps=2)
    if not equivalence["identical"]:
        failures.append(f"parallel/sequential divergence: "
                        f"{equivalence['mismatched_fields']}")

    # Gate 2: the shared digest cache turns spin-up into one measurement
    # plus N-1 cheap hits, and does not slow spin-up down.
    spinup_spec = FleetSpec(
        size=args.spinup_size,
        device_config=DeviceConfig(ram_size=512 * 1024,
                                   flash_size=512 * 1024,
                                   app_size=2 * 1024),
        seed="fleet-smoke-spinup")
    begin = time.perf_counter()
    spinup_spec.build()
    uncached_seconds = time.perf_counter() - begin
    cache = StateDigestCache()
    begin = time.perf_counter()
    spinup_spec.build(state_cache=cache)
    cached_seconds = time.perf_counter() - begin
    if cache.misses != 1 or cache.hits != args.spinup_size - 1:
        failures.append(
            f"cache spin-up arithmetic wrong: expected 1 miss / "
            f"{args.spinup_size - 1} hits, got {cache.misses} / "
            f"{cache.hits}")
    # Wall-clock is noisy on shared CI hosts; only catch a cache that
    # makes spin-up meaningfully *slower* than not having one.
    if cached_seconds > uncached_seconds * 1.2:
        failures.append(
            f"cached spin-up slower than uncached: {cached_seconds:.3f}s "
            f"vs {uncached_seconds:.3f}s")

    # Gate 3: the fleet report validates and records clean gates.
    report = None
    if args.report is not None:
        report_path = Path(args.report)
        if not report_path.is_file():
            failures.append(f"report missing: {report_path}")
        else:
            try:
                report = json.loads(report_path.read_text())
            except json.JSONDecodeError as exc:
                failures.append(f"report is not JSON: {exc}")
    else:
        print("fleet-smoke: generating a small report", file=sys.stderr)
        try:
            report = build_report(fleet_size=8, ram_kb=64, sweeps=1,
                                  workers=2, equivalence_size=4)
        except AssertionError as exc:
            failures.append(f"report generation refused: {exc}")
        else:
            with tempfile.TemporaryDirectory() as scratch:
                write_report(report, Path(scratch) / "BENCH_fleet.json")

    if report is not None:
        failures += [f"report: {e}" for e in validate_fleet_report(report)]
        if report.get("reports_identical") is not True:
            failures.append("report records non-identical "
                            "sequential/parallel sweep reports")
        recorded = report.get("equivalence")
        if isinstance(recorded, dict) and recorded.get(
                "identical") is not True:
            failures.append("report records a broken parallel/sequential "
                            "equivalence block")

    if failures:
        for failure in failures:
            print(f"fleet-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"fleet-smoke: OK (parallel == sequential at size {args.size} "
          f"x {args.workers} workers, cache spin-up 1 miss + "
          f"{args.spinup_size - 1} hits, report valid)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
