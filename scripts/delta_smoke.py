#!/usr/bin/env python
"""Smoke-test delta checkpoints, chain compaction and replay bisection.

Five independent gates, any of which fails CI:

1. **Chain identity** -- across every protection profile and every
   clock kind, capture a root snapshot plus a chain of delta
   checkpoints (with real memory writes between links), fold the chain
   with ``materialize_chain``, and require the result byte-identical
   (canonical JSON) to a direct full snapshot of the same instant.
2. **Restore-and-continue** -- restore the folded chain into a freshly
   built twin and drive both onward: sweep reports, device states and
   merged traces must match an uninterrupted run exactly.
3. **Sharded fleet** -- the same chain-identity + continue contract
   through a 256-member :class:`repro.perf.fleet.FleetEngine` with
   multiple shard workers, deltas captured shard-parallel.
4. **Compaction** -- ``compact_chain`` squashes a chain into one full
   document that byte-matches the folded chain and restores
   identically after a disk round trip.
5. **Bisection** -- on a fault-injected observed fleet checkpointed
   every sweep, ``bisect_replay`` must find (a) the exact first
   ``breaker-state`` trace event and (b) the exact first record at or
   past a simulated-time threshold deep in the run -- same seq and
   record as a scan of an uninterrupted twin -- and the deep search
   must re-generate strictly fewer events than ``linear_scan`` from
   the oldest checkpoint.

Exit status: 0 on success, 1 with diagnostics on any failure.

Usage::

    PYTHONPATH=src python scripts/delta_smoke.py [--fleet-size N]
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def canonical(document) -> str:
    return json.dumps(document, sort_keys=True)


def rewrite(swarm, round_index: int) -> None:
    """Dirty a few chunks of every member's RAM through the provisioning
    path (fingerprints and digest trees account for every byte)."""
    for member in swarm.members:
        ram = member.session.device.ram
        payload = bytes((round_index + member.index + offset) % 256
                        for offset in range(256))
        ram.load(64, payload)
        ram.load(ram.size // 2, payload)


def capture_chain(swarm, links: int):
    """Root full snapshot, then ``links`` deltas with writes+sweeps
    between; returns (chain, direct full snapshot of the tip state)."""
    chain = [swarm.snapshot()]
    for round_index in range(links):
        rewrite(swarm, round_index)
        swarm.sweep()
        chain.append(swarm.snapshot(parent=chain[-1]))
    return chain, swarm.snapshot()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=3,
                        help="swarm size for the profile/clock gates")
    parser.add_argument("--links", type=int, default=2,
                        help="delta links per captured chain")
    parser.add_argument("--fleet-size", type=int, default=256,
                        help="fleet size for the sharded engine gate")
    parser.add_argument("--workers", type=int, default=2,
                        help="shard workers for the engine gate")
    args = parser.parse_args(argv)

    try:
        from repro.core.resilience import RetryPolicy
        from repro.mcu.device import DeviceConfig
        from repro.mcu.profiles import ALL_PROFILES
        from repro.perf.fleet import FleetEngine, FleetSpec, lossy_link
        from repro.perf.snapshot import _update_engine
        from repro.services.swarm import Swarm
        from repro.snapshot import (bisect_replay, compact_chain,
                                    linear_scan, load_document,
                                    materialize_chain, save_document)
    except Exception as exc:  # pragma: no cover - import-time breakage
        print(f"delta-smoke: FAIL: cannot import repro: {exc}",
              file=sys.stderr)
        return 1

    failures = []
    variants = 0

    # Gates 1 + 2: chain identity and restore-and-continue, across
    # every protection profile and every clock kind.
    builds = [(f"profile={profile.name}", {"profile": profile})
              for profile in ALL_PROFILES]
    builds += [(f"clock={kind}",
                {"device_config": DeviceConfig(clock_kind=kind)})
               for kind in ("hw64", "hw32div", "sw", "none")]
    for label, kwargs in builds:
        variants += 1

        def build():
            return Swarm(args.size, observe=True, incremental=True,
                         seed=f"delta-smoke:{label}", **kwargs)

        live = build()
        live.sweep()
        chain, full = capture_chain(live, args.links)
        folded = materialize_chain(chain)
        if canonical(folded) != canonical(full):
            failures.append(f"{label}: folded chain differs from the "
                            f"direct full snapshot")
            continue
        resumed = build()
        resumed.restore(folded)
        if live.sweep() != resumed.sweep():
            failures.append(f"{label}: sweep reports diverge after "
                            f"chain restore")
        if live.merged_trace_records() != resumed.merged_trace_records():
            failures.append(f"{label}: merged traces diverge after "
                            f"chain restore")
        if live.freshness_fingerprint() != resumed.freshness_fingerprint():
            failures.append(f"{label}: freshness fingerprints diverge "
                            f"after chain restore")

    # Gate 4: compaction (reuses the last chain) -- one standalone full
    # document, byte-identical through a disk round trip, restorable.
    compacted = compact_chain(chain)
    if canonical(compacted) != canonical(full):
        failures.append("compact: squashed chain differs from the "
                        "direct full snapshot")
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "compacted.json"
        save_document(compacted, path)
        if load_document(path) != compacted:
            failures.append("compact: document does not survive a disk "
                            "round trip unchanged")
    resumed = build()
    resumed.restore(compacted)
    if live.sweep() != resumed.sweep():
        failures.append("compact: sweep reports diverge after restoring "
                        "the compacted document")

    # Gate 3: sharded fleet engine -- shard-parallel delta capture.
    spec = FleetSpec(size=args.fleet_size,
                     device_config=DeviceConfig(ram_size=8 * 1024,
                                                flash_size=16 * 1024,
                                                app_size=2 * 1024),
                     incremental=True, seed="delta-smoke-fleet")
    with FleetEngine(spec, workers=args.workers) as engine:
        engine.sweep()
        fleet_chain = [engine.snapshot()]
        for round_index in range(args.links):
            _update_engine(engine, round_index, 0.10, 4096, True)
            engine.sweep()
            fleet_chain.append(engine.snapshot(parent=fleet_chain[-1]))
        fleet_full = engine.snapshot()
        continued = engine.sweep()
        continued_states = engine.device_states()
    fleet_folded = materialize_chain(fleet_chain)
    if canonical(fleet_folded) != canonical(fleet_full):
        failures.append(f"fleet engine: folded chain differs from the "
                        f"direct full snapshot at size {args.fleet_size}")
    with FleetEngine(spec, workers=args.workers) as engine:
        engine.restore(fleet_folded)
        if engine.sweep() != continued:
            failures.append("fleet engine: sweep reports diverge after "
                            "sharded chain restore")
        if engine.device_states() != continued_states:
            failures.append("fleet engine: device states diverge after "
                            "sharded chain restore")
    delta_bytes = len(canonical(fleet_chain[-1]))
    full_bytes = len(canonical(fleet_full))
    if delta_bytes * 2 >= full_bytes:
        failures.append(
            f"fleet engine: delta checkpoint ({delta_bytes} B) is not "
            f"meaningfully smaller than the full one ({full_bytes} B)")

    # Gate 5: bisection on a fault-injected fleet, checkpointed every
    # sweep, against ground truth from an uninterrupted twin.  Two
    # searches: the first breaker transition (an early, non-monotone
    # anomaly query -- correctness only) and the first record at or
    # past a simulated-time threshold deep in the run (the canonical
    # monotone first-flip, where bisection must also beat the linear
    # scan on events re-generated).
    def build_faulted():
        return Swarm(5, retry=RetryPolicy(attempt_timeout_seconds=5.0,
                                          max_retries=2,
                                          base_backoff_seconds=1.0,
                                          jitter_fraction=0.5),
                     adversary_factory=lossy_link, observe=True,
                     incremental=True, seed="delta-smoke-bisect")

    sweeps = 24
    recorded = build_faulted()
    documents = [recorded.snapshot()]
    for _ in range(sweeps):
        recorded.sweep()
        documents.append(recorded.snapshot(parent=documents[-1]))

    truth = build_faulted()
    for _ in range(sweeps):
        truth.sweep()
    truth_records = truth.merged_trace_records()
    deep_time = truth_records[-1]["time"] * 0.8
    queries = [
        ("breaker", lambda r: r["kind"] == "breaker-state", False),
        ("deep-time", lambda r: r["time"] >= deep_time, True),
    ]
    found = baseline = expected = None
    for name, predicate, costed in queries:
        expected = next((record for record in truth_records
                         if predicate(record)), None)
        if expected is None:
            failures.append(f"bisect[{name}]: scenario produced no "
                            f"matching event to search for")
            continue
        try:
            found = bisect_replay(build_faulted(), documents, predicate)
        except Exception as exc:
            failures.append(f"bisect[{name}]: raised {exc}")
            continue
        if found["seq"] != expected["seq"]:
            failures.append(
                f"bisect[{name}]: converged on seq {found['seq']}, "
                f"ground truth is seq {expected['seq']}")
        if found["record"] != expected:
            failures.append(f"bisect[{name}]: matched record differs "
                            f"from the ground-truth record")
        if not costed:
            continue
        try:
            baseline = linear_scan(build_faulted(), documents[0],
                                   predicate)
        except Exception as exc:
            failures.append(f"bisect[{name}]: linear scan raised {exc}")
            continue
        if baseline["seq"] != expected["seq"]:
            failures.append(
                f"bisect[{name}]: linear baseline found seq "
                f"{baseline['seq']}, ground truth {expected['seq']}")
        if found["events_replayed"] >= baseline["events_replayed"]:
            failures.append(
                f"bisect[{name}]: replayed {found['events_replayed']} "
                f"event(s), not fewer than the linear scan's "
                f"{baseline['events_replayed']}")

    if failures:
        for failure in failures:
            print(f"delta-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"delta-smoke: OK (chain == full across {variants} "
          f"profile/clock variants, sharded x {args.workers} workers at "
          f"size {args.fleet_size}, compaction exact, bisect found seq "
          f"{expected['seq']} replaying {found['events_replayed']} vs "
          f"linear {baseline['events_replayed']} event(s))",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
