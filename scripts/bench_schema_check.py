#!/usr/bin/env python
"""Validate every checked-in ``BENCH_*.json`` artefact in one pass.

Each benchmark writes a machine-readable report at the repository root
(``benchmarks/_report.write_json_artifact``); each report family has a
schema and validator in :mod:`repro.obs.schema`.  This script maps
every ``BENCH_<name>.json`` file to its validator and fails on:

* a file whose payload is not valid JSON,
* a file whose payload fails its schema validator,
* a ``BENCH_*.json`` file with *no* registered validator (a new
  benchmark must land its schema in ``repro.obs.schema`` and a mapping
  here, or its artefact silently escapes CI).

Exit status: 0 on success, 1 with per-file diagnostics.

Usage::

    PYTHONPATH=src python scripts/bench_schema_check.py [files ...]
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def validators():
    from repro.obs import schema

    return {
        "BENCH_wallclock.json": schema.validate_wallclock_report,
        "BENCH_fleet.json": schema.validate_fleet_report,
        "BENCH_incremental.json": schema.validate_incremental_report,
        "BENCH_service.json": schema.validate_service_report,
        "BENCH_snapshot.json": schema.validate_snapshot_report,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*",
                        help="artefacts to check (default: every "
                             "BENCH_*.json at the repository root)")
    args = parser.parse_args(argv)

    try:
        known = validators()
    except Exception as exc:  # pragma: no cover - import-time breakage
        print(f"bench-schema-check: FAIL: cannot import repro: {exc}",
              file=sys.stderr)
        return 1

    paths = ([Path(name) for name in args.files] if args.files
             else sorted(REPO_ROOT.glob("BENCH_*.json")))
    if not paths:
        print("bench-schema-check: FAIL: no BENCH_*.json artefacts "
              "found", file=sys.stderr)
        return 1

    failures = []
    for path in paths:
        validate = known.get(path.name)
        if validate is None:
            failures.append(f"{path.name}: no validator registered in "
                            f"scripts/bench_schema_check.py")
            continue
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            failures.append(f"{path.name}: unreadable: {exc}")
            continue
        errors = validate(payload)
        for error in errors:
            failures.append(f"{path.name}: {error}")

    if failures:
        for failure in failures:
            print(f"bench-schema-check: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"bench-schema-check: OK ({len(paths)} artefact(s) validated: "
          f"{', '.join(path.name for path in paths)})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
