#!/usr/bin/env python
"""Smoke-test checkpoint/restore and deterministic replay end to end.

Four independent gates, any of which fails CI:

1. **Round trip** -- run a fault-injected, retrying, observed fleet for
   a few sweeps, checkpoint it, restore the document into a fresh
   build, then drive both the original and the restored fleet onward:
   every sweep report, circuit-breaker state, battery reading, merged
   metrics dump and merged event trace must be byte-identical.  An
   interrupted run must be indistinguishable from one that never
   stopped.
2. **Sharded engine** -- the same contract through
   :class:`repro.perf.fleet.FleetEngine` with multiple worker
   processes, including the per-shard state-digest cache counters, plus
   the fleet document restoring into a sequential swarm.
3. **Replay** -- ``replay_to_seq`` must reproduce the uninterrupted
   run's merged trace prefix exactly, record for record, ending on the
   requested sequence number.
4. **Dedup** -- a size-N honest fleet snapshot must contain exactly
   N + 2 memory images (per-member ROM keys; one shared flash, one
   shared RAM), and the document must survive a JSON round trip
   unchanged.

Exit status: 0 on success, 1 with diagnostics on any failure.

Usage::

    PYTHONPATH=src python scripts/snapshot_smoke.py [--size N]
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def fleet_view(swarm) -> dict:
    swarm_view = {
        "states": swarm.device_states(),
        "total": swarm.total_attestations(),
        "battery": {m.device_id: m.battery_fraction
                    for m in swarm.members},
        "registry": json.dumps(swarm.merged_registry().dump(),
                               sort_keys=True),
        "trace": swarm.merged_trace_records(),
    }
    return swarm_view


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=5,
                        help="fleet size for the round-trip gates")
    parser.add_argument("--workers", type=int, default=2,
                        help="shard workers for the engine gate")
    parser.add_argument("--sweeps", type=int, default=2,
                        help="sweeps before the checkpoint")
    args = parser.parse_args(argv)

    try:
        from repro.perf.fleet import FleetEngine, FleetSpec, lossy_link
        from repro.core.resilience import RetryPolicy
        from repro.services.swarm import Swarm
        from repro.snapshot import load_document, save_document
    except Exception as exc:  # pragma: no cover - import-time breakage
        print(f"snapshot-smoke: FAIL: cannot import repro: {exc}",
              file=sys.stderr)
        return 1

    failures = []

    def build():
        return Swarm(args.size, retry=RetryPolicy(
                         attempt_timeout_seconds=5.0, max_retries=2,
                         base_backoff_seconds=1.0, jitter_fraction=0.5),
                     adversary_factory=lossy_link, observe=True,
                     seed="snapshot-smoke")

    # Gate 1: restore + continue == never interrupted.
    uninterrupted = build()
    for _ in range(args.sweeps):
        uninterrupted.sweep()
    document = uninterrupted.snapshot()
    restored = build()
    restored.restore(document)
    reports_match = all(uninterrupted.sweep() == restored.sweep()
                        for _ in range(2))
    if not reports_match:
        failures.append("round trip: sweep reports diverge after restore")
    before, after = fleet_view(uninterrupted), fleet_view(restored)
    for key in before:
        if before[key] != after[key]:
            failures.append(f"round trip: {key} diverges after restore")

    # Gate 4 (uses gate 1's document): dedup arithmetic + JSON purity.
    expected_blobs = args.size + 2
    if len(document["blobs"]) != expected_blobs:
        failures.append(
            f"dedup: size-{args.size} fleet snapshot holds "
            f"{len(document['blobs'])} memory images, expected "
            f"{expected_blobs} (N member ROMs + shared flash + ram)")
    if document != json.loads(json.dumps(document)):
        failures.append("dedup: document does not survive a JSON round "
                        "trip unchanged")
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "checkpoint.json"
        save_document(document, path)
        if load_document(path) != document:
            failures.append("dedup: document does not survive a disk "
                            "round trip unchanged")

    # Gate 2: the sharded engine honours the same contract.
    spec = FleetSpec(size=args.size, observe=True, seed="snapshot-smoke")
    with FleetEngine(spec, workers=args.workers) as live:
        live.sweep()
        fleet_document = live.snapshot()
        live.sweep()
        expected = {"states": live.device_states(),
                    "registry": live.merged_registry().dump(),
                    "trace": live.merged_trace_records(),
                    "cache": live.cache_stats()}
    with FleetEngine(spec, workers=args.workers) as resumed:
        resumed.restore(fleet_document)
        resumed.sweep()
        got = {"states": resumed.device_states(),
               "registry": resumed.merged_registry().dump(),
               "trace": resumed.merged_trace_records(),
               "cache": resumed.cache_stats()}
    for key in expected:
        if expected[key] != got[key]:
            failures.append(f"fleet engine: {key} diverges after "
                            f"sharded restore")
    flat = spec.build()
    flat.restore(fleet_document)
    flat.sweep()
    if flat.device_states() != expected["states"]:
        failures.append("fleet engine: fleet document does not restore "
                        "into a sequential swarm")

    # Gate 3: replay reproduces an exact trace prefix.
    full = before["trace"]
    target = max(0, len(full) - len(full) // 4 - 1)
    replayer = build()
    try:
        records = replayer.replay_to_seq(document, target)
    except Exception as exc:
        failures.append(f"replay: raised {exc}")
    else:
        if records != full[:target + 1]:
            failures.append("replay: records differ from the "
                            "uninterrupted trace prefix")
        elif records and records[-1]["seq"] != target:
            failures.append(
                f"replay: last record has seq {records[-1]['seq']}, "
                f"expected {target}")

    if failures:
        for failure in failures:
            print(f"snapshot-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"snapshot-smoke: OK (restore == uninterrupted at size "
          f"{args.size}, sharded x {args.workers} workers incl. caches, "
          f"replay exact to seq {target}, {expected_blobs} deduped "
          f"images)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
