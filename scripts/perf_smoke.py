#!/usr/bin/env python
"""Smoke-test the fast measurement engine end to end.

Three independent gates, any of which fails CI:

1. **Equivalence** -- a seeded protocol scenario run under the naive
   reference and every fast engine must agree byte for byte on response
   MACs, measurement digests, consumed cycles, prover stats and the
   telemetry registry dump.  A fast path that changes any of these is a
   correctness regression, however fast it is.
2. **Report validity** -- ``BENCH_wallclock.json`` (at the repo root;
   regenerated at a small size if absent, unless ``--no-generate``)
   must match :data:`repro.obs.schema.WALLCLOCK_SCHEMA`.
3. **Report cleanliness** -- the report's own recorded equivalence
   block must be clean, and its naive/fast digests must agree.

Exit status: 0 on success, 1 with diagnostics on any failure.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py [--report PATH]
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", metavar="PATH",
                        default=str(REPO_ROOT / "BENCH_wallclock.json"),
                        help="wall-clock report to validate (default: "
                             "BENCH_wallclock.json at the repo root)")
    parser.add_argument("--ram-kb", type=int, default=16,
                        help="scenario size for the live equivalence check")
    parser.add_argument("--no-generate", action="store_true",
                        help="fail if the report is missing instead of "
                             "generating a small one")
    args = parser.parse_args(argv)

    try:
        from repro.obs.schema import validate_wallclock_report
        from repro.perf.wallclock import build_report, equivalence_check, \
            write_report
    except ImportError as exc:
        print(f"perf-smoke: cannot import repro ({exc}); "
              f"run with PYTHONPATH=src", file=sys.stderr)
        return 1

    failures = []

    # Gate 1: live equivalence on a small scenario.
    equivalence = equivalence_check(ram_kb=args.ram_kb)
    if not equivalence["identical"]:
        broken = {engine: result["mismatched_fields"]
                  for engine, result in equivalence["engines"].items()
                  if not result["identical"]}
        failures.append(f"fast/naive equivalence broken: {broken}")

    # Gate 2: the report exists (or is regenerated small) and validates.
    report_path = Path(args.report)
    report = None
    if not report_path.is_file():
        if args.no_generate:
            failures.append(f"report missing: {report_path}")
        else:
            print(f"perf-smoke: {report_path} missing, generating a "
                  f"small report", file=sys.stderr)
            try:
                report = build_report(sweep_kb=(16, 64), naive_kb=64,
                                      equivalence_ram_kb=args.ram_kb)
            except AssertionError as exc:
                failures.append(f"report generation refused: {exc}")
            else:
                write_report(report, report_path)
    else:
        try:
            report = json.loads(report_path.read_text())
        except json.JSONDecodeError as exc:
            failures.append(f"report is not JSON: {exc}")

    if report is not None:
        failures += [f"report: {e}" for e in
                     validate_wallclock_report(report)]

    # Gate 3: the report's recorded equivalence must itself be clean.
    if report is not None and isinstance(report.get("equivalence"), dict):
        if report["equivalence"].get("identical") is not True:
            failures.append("report records a broken fast/naive "
                            "equivalence block")
    if report is not None and not any(f.startswith("report") for f in
                                      failures):
        naive = report["naive_baseline"]
        fast = next((entry for entry in report["sweep"]
                     if entry["ram_kb"] == naive["ram_kb"]), None)
        if fast is not None and fast["digest"] != naive["digest"]:
            failures.append(
                f"report digests diverge at {naive['ram_kb']} KB: "
                f"naive {naive['digest'][:16]}.. vs "
                f"fast {fast['digest'][:16]}..")

    if failures:
        for failure in failures:
            print(f"perf-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"perf-smoke: OK (equivalence clean at {args.ram_kb} KB, "
          f"report valid)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
