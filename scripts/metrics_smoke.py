#!/usr/bin/env python
"""Smoke-test the telemetry pipeline end to end.

Runs ``repro metrics`` on the quickstart scenario (tiny prover so CI
stays fast), re-reads the two exported artefacts, and validates them
against the telemetry schemas -- independently of the validation the
command itself performs, so a bug that breaks the exporter *and* its
in-process check still fails here.

Exit status: 0 on success, 1 with diagnostics on any failure.

Usage::

    PYTHONPATH=src python scripts/metrics_smoke.py [--keep DIR]
"""

import argparse
import json
import sys
import tempfile
from pathlib import Path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="write the exports into DIR instead of a "
                             "temporary directory")
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--ram-kb", type=int, default=16)
    args = parser.parse_args(argv)

    try:
        from repro.cli import main as repro_main
        from repro.obs import validate_jsonl_trace, validate_registry_dump
    except ImportError as exc:
        print(f"metrics-smoke: cannot import repro ({exc}); "
              f"run with PYTHONPATH=src", file=sys.stderr)
        return 1

    if args.keep:
        out_dir = Path(args.keep)
        out_dir.mkdir(parents=True, exist_ok=True)
        cleanup = None
    else:
        cleanup = tempfile.TemporaryDirectory(prefix="metrics-smoke-")
        out_dir = Path(cleanup.name)

    trace_path = out_dir / "trace.jsonl"
    registry_path = out_dir / "registry.json"
    failures = []
    try:
        status = repro_main(["metrics", "--rounds", str(args.rounds),
                             "--ram-kb", str(args.ram_kb),
                             "--trace-out", str(trace_path),
                             "--registry-out", str(registry_path)])
        if status != 0:
            failures.append(f"repro metrics exited {status}")

        if not trace_path.is_file():
            failures.append("trace export missing")
        else:
            trace_text = trace_path.read_text()
            events = [line for line in trace_text.splitlines()
                      if line.strip()]
            if not events:
                failures.append("trace export is empty")
            failures += [f"trace: {e}"
                         for e in validate_jsonl_trace(trace_text)]
            kinds = {json.loads(line)["kind"] for line in events}
            for expected in ("request-received", "request-accepted",
                             "measurement-start", "measurement-end",
                             "channel-send"):
                if expected not in kinds:
                    failures.append(f"trace never records {expected!r}")

        if not registry_path.is_file():
            failures.append("registry export missing")
        else:
            try:
                dump = json.loads(registry_path.read_text())
            except json.JSONDecodeError as exc:
                failures.append(f"registry export is not JSON: {exc}")
            else:
                failures += [f"registry: {e}"
                             for e in validate_registry_dump(dump)]
                names = {metric["name"] for metric in dump.get("metrics", [])
                         if isinstance(metric, dict)}
                for expected in ("prover.requests.received",
                                 "prover.requests.accepted",
                                 "prover.attestation_cycles",
                                 "cpu.cycles", "channel.sent"):
                    if expected not in names:
                        failures.append(
                            f"registry never exported {expected!r}")
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    if failures:
        for failure in failures:
            print(f"metrics-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"metrics-smoke: OK ({args.rounds} rounds, exports valid)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
