#!/usr/bin/env python
"""Smoke-test the key-confidentiality analysis end to end.

Four gates -- any failure exits 1 with diagnostics:

1. **Clean tree** -- ``repro taint`` (run through the real CLI, with the
   checked-in ``taint-policy.json``) must exit 0 on the repository with
   zero KEY001/KEY002/KEY003 and zero stale policy entries, and the
   ``--allow-stale`` escape hatch must flip a deliberately staled policy
   from exit 1 to exit 0.
2. **Failure mode** -- the seeded fixture tree must trip every rule
   (KEY001 direct and helper-mediated, KEY002, KEY003) through the same
   CLI; an analyzer that cannot see planted leaks proves nothing.
3. **Canary agreement** -- the dynamic leak-hunt must agree with the
   static verdict in both directions: a clean build scans clean *with a
   live raw-bytes control*, and a build with a planted leak is caught.
4. **Determinism** -- building the combined ``repro.analysis/v1``
   document (profiles + lint + taint) twice must be byte-identical and
   schema-valid.

Usage::

    PYTHONPATH=src python scripts/taint_smoke.py
        [--fixture-root tests/analysis/fixtures/taint_seeded]
"""

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parents[1]
ENV = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}

SEEDED_RULES = {"KEY001", "KEY002", "KEY003"}


def _cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", "taint", *args], cwd=REPO,
        env=ENV, capture_output=True, text=True)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fixture-root",
                        default="tests/analysis/fixtures/taint_seeded",
                        help="seeded tree for the failure-mode gate, "
                             "relative to the repo root")
    args = parser.parse_args(argv)

    try:
        from repro.analysis import (build_report, lint_tree, load_policy,
                                    load_waivers, render_report_json,
                                    run_canary_hunt,
                                    verify_shipped_profiles)
        from repro.analysis.taint import analyze_taint_tree
    except ImportError as exc:
        print(f"taint-smoke: cannot import repro ({exc}); "
              f"run with PYTHONPATH=src", file=sys.stderr)
        return 1

    failures = []

    # Gate 1: the shipped tree is key-tight through the real CLI.
    proc = _cli()
    if proc.returncode != 0:
        failures.append(f"clean tree: 'repro taint' exited "
                        f"{proc.returncode}:\n{proc.stdout}{proc.stderr}")
    if "0 violations" not in proc.stderr:
        failures.append(f"clean tree: expected zero violations, got:\n"
                        f"{proc.stdout}{proc.stderr}")
    # ... and staleness actually gates, with --allow-stale as the only
    # escape: a policy entry matching nothing must flip the exit code.
    policy = json.loads((REPO / "taint-policy.json").read_text())
    policy.setdefault("policy_sinks", []).append(
        {"kind": "blob-store", "path": "src/repro/does/not/exist.py",
         "reason": "deliberately stale (smoke gate)"})
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as handle:
        json.dump(policy, handle)
        stale_policy = handle.name
    try:
        strict = _cli("--policy", stale_policy)
        if strict.returncode == 0:
            failures.append("stale policy: CLI exited 0 despite a "
                            "policy entry matching nothing")
        if "stale" not in strict.stdout + strict.stderr:
            failures.append("stale policy: no stale diagnostic printed")
        waved = _cli("--policy", stale_policy, "--allow-stale")
        if waved.returncode != 0:
            failures.append(f"stale policy: --allow-stale still exited "
                            f"{waved.returncode}:\n{waved.stdout}"
                            f"{waved.stderr}")
    finally:
        pathlib.Path(stale_policy).unlink()

    # Gate 2: the seeded fixture is actually flagged, rule by rule.
    seeded = _cli("--root", args.fixture_root)
    if seeded.returncode == 0:
        failures.append(f"failure mode: seeded tree {args.fixture_root} "
                        f"passed the taint gate")
    missing = {rule for rule in SEEDED_RULES if rule not in seeded.stdout}
    if missing:
        failures.append(f"failure mode: seeded rules {sorted(missing)} "
                        f"not detected in {args.fixture_root}")
    if "via " not in seeded.stdout:
        failures.append("failure mode: helper-mediated leak carries no "
                        "interprocedural witness chain")

    # Gate 3: static and dynamic verdicts agree in both directions.
    hunt = run_canary_hunt(size=2, sweeps=1, waves=1)
    if not hunt.clean:
        failures.append("canary: clean build leaked: "
                        + ", ".join(f"{h.needle} in {h.artifact}"
                                    for h in hunt.hits))
    if not hunt.control_hit:
        failures.append("canary: raw-bytes control missing from decoded "
                        "blobs -- the scanner is blind")
    leaky = run_canary_hunt(size=2, sweeps=1, waves=1, leak=True)
    if leaky.clean:
        failures.append("canary: planted telemetry leak was not caught")

    # Gate 4: the combined document is schema-valid + byte-deterministic.
    taint_policy = load_policy(REPO / "taint-policy.json")
    waivers = load_waivers(REPO / "lint-waivers.json")

    def build() -> str:
        return render_report_json(build_report(
            verify_shipped_profiles(clock_kinds=("hw64", "sw")),
            lint_tree(REPO, waivers=waivers),
            analyze_taint_tree(REPO, policy=taint_policy)))

    try:
        first, second = build(), build()
    except ValueError as exc:
        failures.append(f"schema: combined report invalid: {exc}")
        first = second = ""
    if first != second:
        failures.append("determinism: two same-input report builds "
                        "differ byte-for-byte")

    if failures:
        for failure in failures:
            print(f"taint-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"taint-smoke: OK (clean tree key-tight, stale policy gated, "
          f"{len(SEEDED_RULES)} seeded rules detected, canary agrees "
          f"both ways over {len(hunt.artifacts_scanned)} artifacts, "
          f"report deterministic at {len(first)} bytes)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
