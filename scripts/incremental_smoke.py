#!/usr/bin/env python
"""Smoke-test the incremental attestation engine end to end.

Four independent gates, any of which fails CI:

1. **Incremental == full walk** -- the three-scenario
   :func:`repro.perf.incremental.equivalence_check` (honest OTA rounds,
   lossy faulted links with retries and telemetry, planted compromise)
   must report byte-identical sweep reports, circuit-breaker states,
   attestation counts, simulated cycles, energy and registry dumps
   between the incremental and full-walk fleets.
2. **Content-cache arithmetic** -- one OTA round across an N-member
   incremental fleet must cost exactly one full measurement: the shared
   digest cache must record exactly ``N + 3`` misses and ``4N - 2``
   hits over spin-up, a settle sweep, the update sweep and a steady
   sweep (checked as exact arithmetic, not wall-clock).
3. **Dirty-region work ratio** -- the hashed-byte arithmetic of the
   update sweep (one full member image for the content miss plus the
   per-member dirty-leaf refreshes, counted from the digest-tree
   counters) must be at least 3x smaller than the full-walk fleet's
   ``N * image`` at a 10% dirty fraction.  Deterministic; the real
   wall-clock >= 3x gate lives in ``BENCH_incremental.json``.
4. **Report validity** -- the checked-in ``BENCH_incremental.json``
   must match :data:`repro.obs.schema.INCREMENTAL_SCHEMA` and record a
   passing speedup gate and a clean equivalence block.

Exit status: 0 on success, 1 with diagnostics on any failure.

Usage::

    PYTHONPATH=src python scripts/incremental_smoke.py [--report PATH]
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--report", metavar="PATH",
                        default=str(REPO_ROOT / "BENCH_incremental.json"),
                        help="BENCH_incremental.json to validate "
                             "(default: the checked-in artefact)")
    parser.add_argument("--size", type=int, default=8,
                        help="fleet size for the equivalence and "
                             "arithmetic gates")
    parser.add_argument("--dirty", type=float, default=0.10,
                        help="dirty fraction for the work-ratio gate")
    args = parser.parse_args(argv)

    try:
        from repro.obs.schema import validate_incremental_report
        from repro.perf.incremental import (apply_update, build_swarm,
                                            equivalence_check, learn_update)
    except ImportError as exc:
        print(f"incremental-smoke: cannot import repro ({exc}); "
              f"run with PYTHONPATH=src", file=sys.stderr)
        return 1

    failures = []
    size = args.size

    # Gate 1: incremental == full walk across honest, faulted and
    # planted-compromise fleets (the compromise must be detected through
    # a hot content cache in both).
    equivalence = equivalence_check(size=size)
    if not equivalence["identical"]:
        failures.append(f"incremental/full divergence: {equivalence}")
    if not equivalence["scenarios"]["compromised"].get("detected"):
        failures.append("planted compromise not detected identically "
                        "through the hot content cache")

    # Gates 2+3 share one fleet: spin-up, settle sweep, one OTA round,
    # one steady sweep.
    swarm = build_swarm(size, 64, incremental=True, seed="incr-smoke")
    swarm.sweep()  # settle: every member hits its history key
    trees = [(region, region.digest_tree)
             for member in swarm.members
             for region in member.session.device.memory.writable_regions()
             if region.digest_tree is not None]
    # Force-build every tree so the refresh counters below measure the
    # update round alone (member 0's trees were built at spin-up; the
    # others' first content probe would otherwise be a full build).
    for region, tree in trees:
        tree.root(region._data)
    leaf_hashes_before = sum(tree.leaf_hashes for _, tree in trees)
    apply_update(swarm, 0, args.dirty)
    learn_update(swarm)
    swarm.sweep()  # the OTA round: 1 content miss, N-1 content hits
    leaf_delta = sum(tree.leaf_hashes for _, tree in trees) \
        - leaf_hashes_before
    swarm.sweep()  # steady state: back to history-key hits
    stats = swarm.state_cache.stats()

    # Gate 2: exact cache arithmetic.  Spin-up: member 0 misses both
    # keys (2), members 1..N-1 hit the history key (N-1 hits -- their
    # write histories are identical).  Settle sweep: N history hits.
    # OTA sweep: every history key misses (N), member 0's content key
    # misses (1) and pays the only full walk, N-1 content hits.  Steady
    # sweep: N history hits (content hits re-store the history key).
    expected_misses = size + 3
    expected_hits = 4 * size - 2
    if (stats["misses"], stats["hits"]) != (expected_misses,
                                            expected_hits):
        failures.append(
            f"content-cache arithmetic wrong: expected "
            f"{expected_misses} misses / {expected_hits} hits, got "
            f"{stats['misses']} / {stats['hits']}")

    # Gate 3: hashed-byte work ratio of the OTA sweep.  The full-walk
    # fleet re-hashes N member images; the incremental fleet hashes one
    # image (the content miss) plus the dirty-leaf refreshes actually
    # counted by the trees (chunk_size per leaf is an upper bound --
    # tail leaves are shorter, so the ratio below is conservative).
    device = swarm.members[0].session.device
    image_bytes = sum(end - start for start, end in device.attested_spans())
    chunk_size = trees[0][1].chunk_size
    full_bytes = size * image_bytes
    incremental_bytes = image_bytes + leaf_delta * chunk_size
    ratio = full_bytes / incremental_bytes
    if ratio < 3.0:
        failures.append(
            f"dirty-region work ratio {ratio:.2f}x below 3x at "
            f"{args.dirty:.0%} dirty: {full_bytes} vs "
            f"{incremental_bytes} hashed bytes")

    # Gate 4: the checked-in report validates and records passing gates.
    report_path = Path(args.report)
    if not report_path.is_file():
        failures.append(f"report missing: {report_path}")
    else:
        try:
            report = json.loads(report_path.read_text())
        except json.JSONDecodeError as exc:
            failures.append(f"report is not JSON: {exc}")
        else:
            failures += [f"report: {e}"
                         for e in validate_incremental_report(report)]
            gate = report.get("gate")
            if isinstance(gate, dict) and gate.get("passed") is not True:
                failures.append("report records a failed speedup gate")
            recorded = report.get("equivalence")
            if isinstance(recorded, dict) and recorded.get(
                    "identical") is not True:
                failures.append("report records a broken incremental/full "
                                "equivalence block")

    if failures:
        for failure in failures:
            print(f"incremental-smoke: FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"incremental-smoke: OK (incremental == full at size {size}, "
          f"compromise detected, OTA round = 1 content miss + "
          f"{size - 1} hits, work ratio {ratio:.1f}x, report valid)",
          file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
